//! Debugging Decision Trees (paper §4.2, introduced in Lourenço et al.,
//! DEEM 2019).
//!
//! The Shortcut family finds one cause quickly but only speaks
//! parameter-*equality*-value. DDT "can characterize inequalities as well as
//! equalities" and disjunctions, at worst-case exponential cost:
//!
//! 1. Build a **complete decision tree** (no pruning) over the executed
//!    instances — features are the parameters, the target is the evaluation.
//! 2. Every path to a pure-`fail` leaf becomes a **suspect** conjunction of
//!    (Parameter, Comparator, Value) triples.
//! 3. Each suspect "is used as a filter in a Cartesian product of the
//!    parameter values from which new experiments will be sampled": satisfying
//!    instances are executed (in parallel); if every one fails, the suspect is
//!    asserted a definitive root cause; if any succeeds, the tree is rebuilt
//!    over the enlarged history and a new suspect is tried.
//!
//! The tree is "used in an unusual way": not to predict, but to surface
//! short paths to failure; accordingly suspects are tried shortest-first and,
//! optionally, greedily minimized (Def. 5) by dropping predicates that
//! survive re-verification. FindAll mode collects every confirmed cause and
//! simplifies the disjunction with Quine–McCluskey (§4).

use crate::error::AlgoError;
use bugdoc_core::{CanonicalCause, Conjunction, Dnf, Instance, Outcome, ParamSpace};
use bugdoc_dtree::{DecisionTree, TreeConfig};
use bugdoc_engine::{ExecError, Executor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Whether to stop at the first confirmed cause or collect all of them
/// (the paper's FindOne / FindAll goals, §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DdtMode {
    /// Stop at the first confirmed minimal definitive root cause.
    #[default]
    FindOne,
    /// Keep going until no new suspects survive; return the simplified
    /// disjunction of all confirmed causes.
    FindAll,
}

/// How verification instantiates the parameters a suspect constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrototypeStrategy {
    /// Sample a fresh satisfying value per instance — reads the suspect as a
    /// filter over the Cartesian product (paper §4.2, step 3).
    #[default]
    RandomSatisfying,
    /// Fix one satisfying value (the first in domain order) for the whole
    /// batch — the paper's "chooses a satisfying value ... as a prototype".
    FixedPrototype,
}

/// DDT configuration.
#[derive(Debug, Clone)]
pub struct DdtConfig {
    /// FindOne or FindAll.
    pub mode: DdtMode,
    /// Instances sampled to verify each suspect.
    pub verification_samples: usize,
    /// Maximum tree rebuilds after refutations.
    pub max_rebuilds: usize,
    /// Greedily drop predicates from confirmed suspects while they keep
    /// verifying (searching for the *minimal* definitive root cause).
    pub minimize: bool,
    /// Widen confirmed causes value-by-value while the widened-only region
    /// keeps failing. Tree thresholds stop at *observed* values, so a
    /// confirmed suspect can be narrower than the true cause (`p ≤ 2` when
    /// the truth is `p ≤ 3`); generalization recovers the full extent — the
    /// role tree rebuilds play over many rounds in the original formulation,
    /// done directly.
    pub generalize: bool,
    /// Run the final DNF through Quine–McCluskey (FindAll).
    pub simplify: bool,
    /// How constrained parameters are instantiated during verification.
    pub prototype: PrototypeStrategy,
    /// Random instances executed up-front when the history lacks failing or
    /// succeeding examples.
    pub enrich_initial: usize,
    /// FindAll only: after the tree stabilizes, run up to this many rounds of
    /// random exploration (each `verification_samples` instances); a round
    /// that surfaces a new failing instance rebuilds the tree — this is how
    /// DDT discovers disjuncts that never appeared in the given history.
    pub exploration_rounds: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DdtConfig {
    fn default() -> Self {
        DdtConfig {
            mode: DdtMode::FindOne,
            verification_samples: 8,
            max_rebuilds: 25,
            minimize: true,
            generalize: true,
            simplify: true,
            prototype: PrototypeStrategy::default(),
            enrich_initial: 8,
            exploration_rounds: 2,
            seed: 0,
        }
    }
}

/// The result of a DDT run.
#[derive(Debug, Clone, PartialEq)]
pub struct DdtReport {
    /// Confirmed definitive root causes (one conjunct in FindOne mode; the
    /// QM-simplified disjunction in FindAll mode).
    pub causes: Dnf,
    /// New pipeline executions consumed.
    pub new_executions: usize,
    /// Tree rebuilds triggered by refuted suspects.
    pub rebuilds: usize,
    /// False if the run stopped on budget exhaustion.
    pub complete: bool,
}

enum Verify {
    /// Every sampled satisfying instance failed.
    Confirmed,
    /// A satisfying instance succeeded: the suspect is not definitive.
    Refuted,
    /// Could not gather evidence (unsatisfiable suspect or replay gaps).
    NoEvidence,
    /// The execution budget ran out mid-verification.
    Budget,
}

/// Runs Debugging Decision Trees against the executor's history.
pub fn debugging_decision_trees(
    exec: &Executor,
    config: &DdtConfig,
) -> Result<DdtReport, AlgoError> {
    let space = exec.space();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let start_execs = exec.stats().new_executions;
    let mut complete = true;

    // The tree needs both outcomes; enrich a thin history with random probes.
    ensure_both_outcomes(exec, &space, config.enrich_initial, &mut rng);
    let (has_fail, has_succeed) = exec.with_provenance_ref(|prov| {
        (
            prov.first_failing().is_some(),
            prov.succeeding().next().is_some(),
        )
    });
    if !has_fail {
        return Err(AlgoError::NoFailingInstance);
    }
    if !has_succeed {
        // Every probe failed too: the whole explored space fails.
        return Ok(DdtReport {
            causes: Dnf::new(vec![Conjunction::top()]),
            new_executions: exec.stats().new_executions.saturating_sub(start_execs),
            rebuilds: 0,
            complete,
        });
    }

    let mut confirmed: Vec<Conjunction> = Vec::new();
    let mut confirmed_canon: Vec<CanonicalCause> = Vec::new();
    let mut rebuilds = 0;
    let mut exploration_left = config.exploration_rounds;

    'outer: loop {
        let rows: Vec<(Instance, f64)> = exec.with_provenance_ref(|prov| {
            prov.runs()
                .iter()
                .map(|r| {
                    (
                        r.instance.clone(),
                        if r.outcome().is_fail() { 1.0 } else { 0.0 },
                    )
                })
                .collect()
        });
        let tree = DecisionTree::fit(&space, &rows, &TreeConfig::default());

        for path in tree.fail_paths() {
            // Simplify the raw tree path to its shortest equivalent form.
            let canon = path.conjunction.canonicalize(&space);
            if canon.is_unsatisfiable() || canon.is_top() {
                continue;
            }
            if confirmed_canon.contains(&canon) {
                continue;
            }
            let suspect = canon.to_conjunction(&space);

            match verify_suspect(exec, &space, &suspect, config, &mut rng) {
                Verify::Refuted => {
                    // New counterexample is in the provenance; rebuild.
                    rebuilds += 1;
                    if rebuilds > config.max_rebuilds {
                        break 'outer;
                    }
                    continue 'outer;
                }
                Verify::NoEvidence => continue,
                Verify::Budget => {
                    complete = false;
                    break 'outer;
                }
                Verify::Confirmed => {
                    let mut cause = suspect.clone();
                    if config.minimize {
                        match minimize_cause(exec, &space, cause.clone(), config, &mut rng) {
                            Ok(c) => cause = c,
                            Err(()) => complete = false,
                        }
                    }
                    if config.generalize && complete {
                        match generalize_cause(exec, &space, cause.clone(), config, &mut rng) {
                            Ok(c) => cause = c,
                            Err(()) => complete = false,
                        }
                    }
                    let cause_canon = cause.canonicalize(&space);
                    if !confirmed_canon.contains(&cause_canon) {
                        confirmed.push(cause);
                        confirmed_canon.push(cause_canon);
                    }
                    if config.mode == DdtMode::FindOne {
                        break 'outer;
                    }
                }
            }
        }
        // A full suspect pass without a refutation (which would have
        // continued 'outer) means the tree is stable. In FindAll mode,
        // explore: planted disjuncts with no failing example in the history
        // produce no fail leaf, so probe randomly and rebuild if a new
        // failure turns up.
        if config.mode == DdtMode::FindAll && exploration_left > 0 {
            exploration_left -= 1;
            let probes: Vec<Instance> = (0..config.verification_samples.max(1))
                .map(|_| random_instance(&space, &mut rng))
                .collect();
            let before_fails =
                exec.with_provenance_ref(|prov| prov.num_failing());
            let results = exec.evaluate_batch(&probes);
            if results
                .iter()
                .any(|r| matches!(r, Err(ExecError::BudgetExhausted)))
            {
                complete = false;
                break;
            }
            let after_fails = exec.with_provenance_ref(|prov| prov.num_failing());
            if after_fails > before_fails {
                continue 'outer; // new failure: rebuild the tree
            }
        }
        break;
    }

    let mut causes = Dnf::new(confirmed);
    if config.simplify && causes.len() > 1 {
        causes = bugdoc_qm::minimize_dnf(&space, &causes);
    }
    Ok(DdtReport {
        causes,
        new_executions: exec.stats().new_executions.saturating_sub(start_execs),
        rebuilds,
        complete,
    })
}

/// Executes random instances until the history contains at least one failing
/// and one succeeding run (or the probe allowance runs out).
fn ensure_both_outcomes(exec: &Executor, space: &ParamSpace, probes: usize, rng: &mut StdRng) {
    for _ in 0..probes {
        let (has_fail, has_succeed) = exec.with_provenance_ref(|prov| {
            (
                prov.first_failing().is_some(),
                prov.succeeding().next().is_some(),
            )
        });
        if has_fail && has_succeed {
            return;
        }
        let inst = random_instance(space, rng);
        let _ = exec.evaluate(&inst);
    }
}

fn random_instance(space: &ParamSpace, rng: &mut StdRng) -> Instance {
    let indices: Vec<u32> = space
        .ids()
        .map(|p| rng.gen_range(0..space.domain(p).len()) as u32)
        .collect();
    space.instance_from_indices(&indices)
}

/// Samples `n` instances from the Cartesian product filtered by `suspect`.
///
/// Works entirely in dense domain indices: per-parameter pools of satisfying
/// indices are drawn from, deduplicated by index key, and materialized once
/// via [`ParamSpace::instance_from_indices`] — no `Value` vectors are built
/// and re-validated per draw. When the filtered product is small (or
/// rejection sampling stalls on a small remainder), the product is
/// **enumerated deterministically** instead, so a suspect whose region holds
/// fewer than `n` distinct instances always yields all of them.
fn sample_satisfying(
    space: &ParamSpace,
    suspect: &Conjunction,
    n: usize,
    strategy: PrototypeStrategy,
    rng: &mut StdRng,
) -> Vec<Instance> {
    let canon = suspect.canonicalize(space);
    if canon.is_unsatisfiable() {
        return Vec::new();
    }
    // Per-parameter pools of satisfying domain indices. Under FixedPrototype,
    // constrained parameters are pinned to their first satisfying value.
    let pools: Vec<Vec<u32>> = space
        .ids()
        .map(|p| match canon.mask(p) {
            Some(mask) => {
                let satisfying = (0..mask.len()).filter(|&i| mask[i]).map(|i| i as u32);
                match strategy {
                    PrototypeStrategy::FixedPrototype => satisfying.take(1).collect(),
                    PrototypeStrategy::RandomSatisfying => satisfying.collect(),
                }
            }
            None => (0..space.domain(p).len() as u32).collect(),
        })
        .collect();
    let product: u128 = pools
        .iter()
        .map(|pool| pool.len() as u128)
        .try_fold(1u128, u128::checked_mul)
        .unwrap_or(u128::MAX);

    // Small region: enumerate it exactly (shuffled for unbiased truncation).
    if product <= n as u128 {
        use rand::seq::SliceRandom as _;
        let mut all: Vec<Instance> = PoolCombos::new(&pools)
            .map(|indices| space.instance_from_indices(&indices))
            .collect();
        all.shuffle(rng);
        all.truncate(n);
        return all;
    }

    let mut out = Vec::with_capacity(n);
    let mut seen: std::collections::HashSet<Vec<u32>, bugdoc_core::FxBuildHasher> =
        std::collections::HashSet::default();
    // Rejection sampling with an attempt cap; duplicates are detected on the
    // index key, so no instance is materialized twice.
    for _ in 0..(n * 4) {
        if out.len() == n {
            break;
        }
        let indices: Vec<u32> = pools
            .iter()
            .map(|pool| pool[rng.gen_range(0..pool.len())])
            .collect();
        if !seen.contains(&indices) {
            out.push(space.instance_from_indices(&indices));
            seen.insert(indices);
        }
    }
    // The cap can starve on moderately small products (most draws collide);
    // top up by deterministic enumeration rather than giving up short. The
    // enumeration is lazy: it stops as soon as `n` is reached, materializing
    // an `Instance` only for combinations not already drawn.
    const ENUMERABLE: u128 = 4096;
    if out.len() < n && product <= ENUMERABLE {
        for indices in PoolCombos::new(&pools) {
            if out.len() == n {
                break;
            }
            if !seen.contains(&indices) {
                out.push(space.instance_from_indices(&indices));
            }
        }
    }
    out
}

/// Lazily yields every combination of the per-parameter index pools as a
/// dense index vector, in lexicographic pool order.
struct PoolCombos<'a> {
    pools: &'a [Vec<u32>],
    cursor: Vec<usize>,
    done: bool,
}

impl<'a> PoolCombos<'a> {
    fn new(pools: &'a [Vec<u32>]) -> Self {
        PoolCombos {
            pools,
            cursor: vec![0; pools.len()],
            done: pools.iter().any(Vec::is_empty),
        }
    }
}

impl Iterator for PoolCombos<'_> {
    type Item = Vec<u32>;

    fn next(&mut self) -> Option<Vec<u32>> {
        if self.done {
            return None;
        }
        let indices: Vec<u32> = self
            .cursor
            .iter()
            .zip(self.pools)
            .map(|(&c, pool)| pool[c])
            .collect();
        // Advance the mixed-radix counter over pool positions.
        let mut carry = true;
        for (c, pool) in self.cursor.iter_mut().zip(self.pools).rev() {
            if !carry {
                break;
            }
            *c += 1;
            if *c == pool.len() {
                *c = 0;
            } else {
                carry = false;
            }
        }
        if carry {
            self.done = true;
        }
        Some(indices)
    }
}

fn verify_suspect(
    exec: &Executor,
    space: &ParamSpace,
    suspect: &Conjunction,
    config: &DdtConfig,
    rng: &mut StdRng,
) -> Verify {
    // A known succeeding superset refutes without any execution.
    if exec.with_provenance_ref(|prov| prov.succeeding_superset_exists(suspect)) {
        return Verify::Refuted;
    }
    // Replay pipelines expose the finite executable set: direct the probes
    // at satisfying instances that can actually be answered (the paper's
    // "testing the algorithms on unread data", §5.3). Ordinary pipelines
    // sample the suspect-filtered Cartesian product.
    let batch: Vec<Instance> = match exec.available_instances() {
        Some(available) => {
            let mut pool: Vec<Instance> = available
                .into_iter()
                .filter(|inst| suspect.satisfied_by(inst))
                .collect();
            // Unbiased pick of up to `verification_samples` probes.
            for i in (1..pool.len()).rev() {
                pool.swap(i, rng.gen_range(0..=i));
            }
            pool.truncate(config.verification_samples);
            pool
        }
        None => sample_satisfying(
            space,
            suspect,
            config.verification_samples,
            config.prototype,
            rng,
        ),
    };
    if batch.is_empty() {
        return Verify::NoEvidence;
    }
    let results = exec.evaluate_batch(&batch);
    let mut failures = 0;
    let mut budget_hit = false;
    for r in &results {
        match r {
            Ok(Outcome::Succeed) => return Verify::Refuted,
            Ok(Outcome::Fail) => failures += 1,
            Err(ExecError::BudgetExhausted) => budget_hit = true,
            Err(ExecError::Unavailable) => {}
        }
    }
    if failures > 0 {
        return Verify::Confirmed;
    }
    if budget_hit {
        return Verify::Budget;
    }
    // Every probe was unavailable — the historical-replay setting (paper
    // §5.3), where no new instances can be created. The best attainable
    // evidence is the history itself: a suspect with failing support and no
    // succeeding superset (checked above) is asserted from provenance alone.
    let (hist_fail, hist_succeed) =
        exec.with_provenance_ref(|prov| prov.support_via_bounds(suspect));
    if hist_fail > 0 && hist_succeed == 0 {
        Verify::Confirmed
    } else {
        Verify::NoEvidence
    }
}

/// Flags candidates the admissible bounds already refute: `succeed_lo > 0`
/// proves a succeeding satisfying run exists, so `verify_suspect` would
/// return [`Verify::Refuted`] at its first check without executing anything.
/// One epoch-major batched store round-trip covers all candidates; pruned
/// subtrees are counted into `ExecStats::bounds_pruned_subtrees`. Only
/// definite verdicts prune, so skipping is exact-preserving.
fn bounds_refuted(exec: &Executor, candidates: &[Conjunction]) -> Vec<bool> {
    if candidates.is_empty() {
        return Vec::new();
    }
    let flags: Vec<bool> = exec.with_provenance_ref(|prov| {
        if !prov.bounds_enabled() {
            return vec![false; candidates.len()];
        }
        prov.support_bounds_many(candidates)
            .iter()
            .map(|b| b.succeed_lo > 0)
            .collect()
    });
    exec.note_bounds_pruned(flags.iter().filter(|&&f| f).count() as u64);
    flags
}

/// Greedy generalization: widen the cause's per-parameter extents one domain
/// value at a time, keeping an expansion whenever the *widened-only* region
/// (the cause with that parameter pinned to the new value) verifies as
/// all-fail. Recovers e.g. `p ≤ 3` from a confirmed-but-narrow `p ≤ 2`, or
/// `p ≠ 5` from `p = 2`. `Err(())` signals budget exhaustion.
fn generalize_cause(
    exec: &Executor,
    space: &ParamSpace,
    cause: Conjunction,
    config: &DdtConfig,
    rng: &mut StdRng,
) -> Result<Conjunction, ()> {
    // Fewer samples per probe: each delta region is one pinned value.
    let delta_config = DdtConfig {
        verification_samples: (config.verification_samples / 2).max(2),
        ..config.clone()
    };
    let mut canon = cause.canonicalize(space);
    loop {
        let mut changed = false;
        let params: Vec<_> = canon.masks().keys().copied().collect();
        for p in params {
            let n_values = space.domain(p).len();
            for w in 0..n_values {
                // Re-read each iteration: accepted widenings update the mask,
                // and a fully widened parameter drops out of the cause.
                let Some(cur_mask) = canon.mask(p).map(|m| m.to_vec()) else {
                    break;
                };
                if cur_mask[w] {
                    continue;
                }
                // Delta region: the cause with parameter p pinned to value w.
                let mut delta_masks = canon.masks().clone();
                let mut pin = vec![false; n_values];
                pin[w] = true;
                delta_masks.insert(p, pin);
                let delta = CanonicalCause::from_masks(space, delta_masks);
                if delta.is_unsatisfiable() {
                    continue;
                }
                let delta_conj = delta.to_conjunction(space);
                // Bound pre-filter: a delta region with a proven succeeding
                // run can never verify as all-fail.
                if bounds_refuted(exec, std::slice::from_ref(&delta_conj))[0] {
                    continue;
                }
                match verify_suspect(exec, space, &delta_conj, &delta_config, rng) {
                    Verify::Confirmed => {
                        let mut widened = canon.masks().clone();
                        widened
                            .get_mut(&p)
                            .expect("parameter still constrained")[w] = true;
                        canon = CanonicalCause::from_masks(space, widened);
                        changed = true;
                    }
                    Verify::Budget => return Err(()),
                    Verify::Refuted | Verify::NoEvidence => {}
                }
            }
        }
        if !changed {
            break;
        }
    }
    Ok(canon.to_conjunction(space))
}

/// Greedy minimization (Def. 5): repeatedly drop a predicate whose removal
/// still verifies as definitive. `Err(())` signals budget exhaustion.
fn minimize_cause(
    exec: &Executor,
    space: &ParamSpace,
    mut cause: Conjunction,
    config: &DdtConfig,
    rng: &mut StdRng,
) -> Result<Conjunction, ()> {
    'restart: loop {
        // All drop-one candidates bound-checked in one batched round-trip;
        // provably-refuted ones never reach verification.
        let candidates: Vec<Conjunction> = (0..cause.len())
            .map(|i| cause.without(i))
            .filter(|c| !c.is_empty())
            .collect();
        let refuted = bounds_refuted(exec, &candidates);
        for (candidate, skip) in candidates.into_iter().zip(refuted) {
            if skip {
                continue;
            }
            match verify_suspect(exec, space, &candidate, config, rng) {
                Verify::Confirmed => {
                    cause = candidate;
                    continue 'restart;
                }
                Verify::Budget => return Err(()),
                Verify::Refuted | Verify::NoEvidence => {}
            }
        }
        return Ok(cause);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::{Comparator, EvalResult, ParamSpace, Predicate, Value};
    use bugdoc_engine::{Executor, ExecutorConfig, FnPipeline, Pipeline};
    use std::sync::Arc;

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .ordinal("n", [1, 2, 3, 4, 5])
            .categorical("color", ["red", "green", "blue"])
            .ordinal("m", [1, 2, 3, 4, 5])
            .build()
    }

    fn seeded_exec(
        s: &Arc<ParamSpace>,
        fail_if: impl Fn(&Instance) -> bool + Send + Sync + 'static,
        seeds: usize,
    ) -> Executor {
        let pipe: Arc<dyn Pipeline> = Arc::new(FnPipeline::new(s.clone(), move |i: &Instance| {
            EvalResult::of(Outcome::from_check(!fail_if(i)))
        }));
        let exec = Executor::new(pipe, ExecutorConfig::default());
        // Deterministic seed history: a spread of instances.
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..seeds {
            let inst = random_instance(s, &mut rng);
            let _ = exec.evaluate(&inst);
        }
        exec
    }

    #[test]
    fn finds_inequality_cause() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let exec = seeded_exec(
            &s,
            {
                let n = n;
                move |i: &Instance| i.get(n) > &Value::from(3)
            },
            12,
        );
        let report = debugging_decision_trees(&exec, &DdtConfig::default()).unwrap();
        assert_eq!(report.causes.len(), 1);
        let expected = Conjunction::new(vec![Predicate::new(n, Comparator::Gt, 3)]);
        assert_eq!(
            report.causes.conjuncts()[0].canonicalize(&s),
            expected.canonicalize(&s)
        );
        assert!(report.complete);
    }

    #[test]
    fn finds_conjunction_cause() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let color = s.by_name("color").unwrap();
        let exec = seeded_exec(
            &s,
            {
                move |i: &Instance| i.get(n) > &Value::from(3) && i.get(color) == &Value::from("red")
            },
            20,
        );
        let report = debugging_decision_trees(&exec, &DdtConfig::default()).unwrap();
        assert_eq!(report.causes.len(), 1);
        let expected = Conjunction::new(vec![
            Predicate::new(n, Comparator::Gt, 3),
            Predicate::eq(color, "red"),
        ]);
        assert_eq!(
            report.causes.conjuncts()[0].canonicalize(&s),
            expected.canonicalize(&s)
        );
    }

    #[test]
    fn find_all_discovers_disjunction() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let m = s.by_name("m").unwrap();
        let exec = seeded_exec(
            &s,
            {
                move |i: &Instance| i.get(n) == &Value::from(5) || i.get(m) == &Value::from(1)
            },
            30,
        );
        let report = debugging_decision_trees(
            &exec,
            &DdtConfig {
                mode: DdtMode::FindAll,
                verification_samples: 12,
                ..DdtConfig::default()
            },
        )
        .unwrap();
        let expected = [
            Conjunction::new(vec![Predicate::eq(n, 5)]).canonicalize(&s),
            Conjunction::new(vec![Predicate::eq(m, 1)]).canonicalize(&s),
        ];
        let got: Vec<CanonicalCause> = report
            .causes
            .conjuncts()
            .iter()
            .map(|c| c.canonicalize(&s))
            .collect();
        for e in &expected {
            assert!(
                got.contains(e),
                "missing cause; got {}",
                report.causes.display(&s)
            );
        }
        assert_eq!(got.len(), 2, "extra causes: {}", report.causes.display(&s));
    }

    #[test]
    fn refutation_triggers_rebuild() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let m = s.by_name("m").unwrap();
        // Failure needs BOTH n=5 and m≥3; with few seeds the first tree often
        // proposes a too-short suspect that verification refutes.
        let exec = seeded_exec(
            &s,
            {
                move |i: &Instance| i.get(n) == &Value::from(5) && i.get(m) >= &Value::from(3)
            },
            10,
        );
        // Guarantee the history holds a failing example of the conjunction.
        exec.evaluate(&Instance::from_pairs(
            &s,
            [("n", 5.into()), ("color", "red".into()), ("m", 4.into())],
        ))
        .unwrap();
        let report = debugging_decision_trees(
            &exec,
            &DdtConfig {
                verification_samples: 10,
                ..DdtConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.causes.len(), 1);
        let expected = Conjunction::new(vec![
            Predicate::eq(n, 5),
            Predicate::new(m, Comparator::Gt, 2),
        ]);
        assert_eq!(
            report.causes.conjuncts()[0].canonicalize(&s),
            expected.canonicalize(&s)
        );
    }

    #[test]
    fn budget_exhaustion_reports_incomplete() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let pipe: Arc<dyn Pipeline> = Arc::new(FnPipeline::new(s.clone(), {
            move |i: &Instance| {
                EvalResult::of(Outcome::from_check(!(i.get(n) > &Value::from(3))))
            }
        }));
        let exec = Executor::new(
            pipe,
            ExecutorConfig {
                workers: 2,
                budget: Some(6),
                ..Default::default()
            },
        );
        // Seed minimal history inside the budget.
        let mk = |nn: i64, c: &str, mm: i64| {
            Instance::from_pairs(
                &s,
                [("n", nn.into()), ("color", c.into()), ("m", mm.into())],
            )
        };
        exec.evaluate(&mk(5, "red", 1)).unwrap();
        exec.evaluate(&mk(1, "blue", 2)).unwrap();
        let report = debugging_decision_trees(&exec, &DdtConfig::default()).unwrap();
        // It may or may not confirm within 4 more executions, but it must not
        // loop forever and must flag completeness accurately.
        assert!(report.new_executions <= 4);
        if !report.complete {
            assert!(report.causes.len() <= 1);
        }
    }

    #[test]
    fn no_failing_history_is_an_error() {
        let s = space();
        let pipe: Arc<dyn Pipeline> = Arc::new(FnPipeline::new(s.clone(), |_: &Instance| {
            EvalResult::of(Outcome::Succeed)
        }));
        let exec = Executor::new(pipe, ExecutorConfig::default());
        assert!(matches!(
            debugging_decision_trees(&exec, &DdtConfig::default()),
            Err(AlgoError::NoFailingInstance)
        ));
    }

    #[test]
    fn all_fail_space_asserts_top() {
        let s = space();
        let pipe: Arc<dyn Pipeline> = Arc::new(FnPipeline::new(s.clone(), |_: &Instance| {
            EvalResult::of(Outcome::Fail)
        }));
        let exec = Executor::new(pipe, ExecutorConfig::default());
        let report = debugging_decision_trees(&exec, &DdtConfig::default()).unwrap();
        assert_eq!(report.causes.len(), 1);
        assert!(report.causes.conjuncts()[0].is_empty());
    }

    #[test]
    fn sample_satisfying_respects_filter() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let color = s.by_name("color").unwrap();
        let suspect = Conjunction::new(vec![
            Predicate::new(n, Comparator::Gt, 3),
            Predicate::new(color, Comparator::Neq, "blue"),
        ]);
        let mut rng = StdRng::seed_from_u64(3);
        let batch = sample_satisfying(&s, &suspect, 10, PrototypeStrategy::RandomSatisfying, &mut rng);
        assert!(!batch.is_empty());
        for inst in &batch {
            assert!(suspect.satisfied_by(inst));
        }
        // Distinct instances only.
        let set: std::collections::HashSet<_> = batch.iter().collect();
        assert_eq!(set.len(), batch.len());
    }

    #[test]
    fn fixed_prototype_pins_constrained_params() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let suspect = Conjunction::new(vec![Predicate::new(n, Comparator::Gt, 3)]);
        let mut rng = StdRng::seed_from_u64(4);
        let batch = sample_satisfying(&s, &suspect, 8, PrototypeStrategy::FixedPrototype, &mut rng);
        // The prototype is the first satisfying value: n = 4.
        for inst in &batch {
            assert_eq!(inst.get(n), &Value::from(4));
        }
    }

    #[test]
    fn sample_satisfying_unsat_is_empty() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let unsat = Conjunction::new(vec![
            Predicate::new(n, Comparator::Le, 1),
            Predicate::new(n, Comparator::Gt, 2),
        ]);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(sample_satisfying(&s, &unsat, 5, PrototypeStrategy::RandomSatisfying, &mut rng)
            .is_empty());
    }

    #[test]
    fn minimization_strips_spurious_predicates() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let color = s.by_name("color").unwrap();
        let exec = seeded_exec(
            &s,
            {
                move |i: &Instance| i.get(n) == &Value::from(5)
            },
            8,
        );
        let bloated = Conjunction::new(vec![
            Predicate::eq(n, 5),
            Predicate::eq(color, "red"), // spurious
        ]);
        let mut rng = StdRng::seed_from_u64(6);
        let minimal =
            minimize_cause(&exec, &s, bloated, &DdtConfig::default(), &mut rng).unwrap();
        assert_eq!(
            minimal.canonicalize(&s),
            Conjunction::new(vec![Predicate::eq(n, 5)]).canonicalize(&s)
        );
    }
}

#[cfg(test)]
mod generalize_tests {
    use super::*;
    use bugdoc_core::{Comparator, EvalResult, ParamSpace, Predicate, Value};
    use bugdoc_engine::{Executor, ExecutorConfig, FnPipeline, Pipeline};
    use std::sync::Arc;

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .ordinal("n", [1, 2, 3, 4, 5])
            .ordinal("m", [1, 2, 3, 4, 5])
            .build()
    }

    fn exec_for(
        s: &Arc<ParamSpace>,
        fail_if: impl Fn(&Instance) -> bool + Send + Sync + 'static,
    ) -> Executor {
        let pipe: Arc<dyn Pipeline> = Arc::new(FnPipeline::new(s.clone(), move |i: &Instance| {
            EvalResult::of(Outcome::from_check(!fail_if(i)))
        }));
        Executor::new(pipe, ExecutorConfig::default())
    }

    /// True cause n ≤ 3; a narrow confirmed suspect n ≤ 2 must widen to the
    /// full extent (and never past it).
    #[test]
    fn widens_range_to_true_extent() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let exec = exec_for(&s, move |i| i.get(n) <= &Value::from(3));
        let narrow = Conjunction::new(vec![Predicate::new(n, Comparator::Le, 2)]);
        let mut rng = StdRng::seed_from_u64(1);
        let wide =
            generalize_cause(&exec, &s, narrow, &DdtConfig::default(), &mut rng).unwrap();
        let expected = Conjunction::new(vec![Predicate::new(n, Comparator::Le, 3)]);
        assert_eq!(wide.canonicalize(&s), expected.canonicalize(&s));
    }

    /// True cause n ≠ 5; a pointwise suspect n = 2 must widen to the
    /// complement form.
    #[test]
    fn widens_point_to_negation() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let exec = exec_for(&s, move |i| i.get(n) != &Value::from(5));
        let point = Conjunction::new(vec![Predicate::eq(n, 2)]);
        let mut rng = StdRng::seed_from_u64(2);
        let wide = generalize_cause(&exec, &s, point, &DdtConfig::default(), &mut rng).unwrap();
        let expected = Conjunction::new(vec![Predicate::new(n, Comparator::Neq, 5)]);
        assert_eq!(wide.canonicalize(&s), expected.canonicalize(&s));
    }

    /// Generalization must not cross a boundary where instances succeed.
    #[test]
    fn does_not_overwiden() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let m = s.by_name("m").unwrap();
        let exec = exec_for(&s, move |i| {
            i.get(n) == &Value::from(5) && i.get(m) <= &Value::from(2)
        });
        let exact = Conjunction::new(vec![
            Predicate::eq(n, 5),
            Predicate::new(m, Comparator::Le, 2),
        ]);
        let mut rng = StdRng::seed_from_u64(3);
        let wide =
            generalize_cause(&exec, &s, exact.clone(), &DdtConfig::default(), &mut rng).unwrap();
        assert_eq!(wide.canonicalize(&s), exact.canonicalize(&s));
    }

    /// End-to-end: DDT with generalization recovers `n ≤ 3` even when the
    /// seeded history only exhibits failures at n ≤ 2.
    #[test]
    fn ddt_end_to_end_recovers_full_range() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let exec = exec_for(&s, move |i| i.get(n) <= &Value::from(3));
        // Seeds: failures only at n = 1, 2; successes at 4, 5.
        for (nn, mm) in [(1, 1), (2, 4), (4, 2), (5, 5), (4, 4)] {
            exec.evaluate(&Instance::from_pairs(
                &s,
                [("n", nn.into()), ("m", mm.into())],
            ))
            .unwrap();
        }
        let report = debugging_decision_trees(&exec, &DdtConfig::default()).unwrap();
        let expected = Conjunction::new(vec![Predicate::new(n, Comparator::Le, 3)]);
        assert_eq!(report.causes.len(), 1);
        assert_eq!(
            report.causes.conjuncts()[0].canonicalize(&s),
            expected.canonicalize(&s)
        );
    }
}
