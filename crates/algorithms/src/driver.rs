//! The combined BugDoc driver.
//!
//! The real-world evaluation runs "BugDoc (using Stacked Shortcut and
//! Debugging Decision Trees combined)" (paper §5.3, Figure 7): the cheap
//! linear-cost Stacked Shortcut first, then DDT for inequality and
//! disjunctive causes, with the final explanation set deduplicated
//! semantically and simplified with Quine–McCluskey.

use crate::ddt::{debugging_decision_trees, DdtConfig, DdtMode};
use crate::error::AlgoError;
use crate::stacked::{stacked_shortcut, StackedConfig};
use bugdoc_core::{CanonicalCause, Conjunction, Dnf};
use bugdoc_engine::Executor;

/// Which algorithms the driver runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Shortcut stacked over k disjoint goods only (cheap, equality causes).
    StackedShortcutOnly,
    /// Debugging Decision Trees only (inequalities, disjunctions).
    DdtOnly,
    /// Stacked Shortcut then DDT — the paper's combined configuration.
    Combined,
}

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct BugDocConfig {
    /// Algorithm selection.
    pub strategy: Strategy,
    /// FindOne or FindAll (forwarded to DDT; Stacked always yields one).
    pub mode: DdtMode,
    /// Stacked Shortcut settings.
    pub stacked: StackedConfig,
    /// DDT settings.
    pub ddt: DdtConfig,
}

impl Default for BugDocConfig {
    fn default() -> Self {
        BugDocConfig {
            strategy: Strategy::Combined,
            mode: DdtMode::FindAll,
            stacked: StackedConfig::default(),
            ddt: DdtConfig {
                mode: DdtMode::FindAll,
                ..DdtConfig::default()
            },
        }
    }
}

impl BugDocConfig {
    /// The configuration every BugDoc front end uses — the one-shot CLI and
    /// `bugdoc serve` sessions alike. Keeping the knobs in one constructor
    /// is what makes a served diagnosis bit-identical to a one-shot run over
    /// the same history: both drive `diagnose` with exactly these settings.
    pub fn front_end(strategy: Strategy, mode: DdtMode, seed: u64) -> Self {
        BugDocConfig {
            strategy,
            mode,
            stacked: StackedConfig {
                seed,
                ..StackedConfig::default()
            },
            ddt: DdtConfig {
                mode,
                seed,
                // A front end may start from an empty history: probe harder
                // so rare failure regions are still discovered.
                enrich_initial: 32,
                exploration_rounds: 3,
                ..DdtConfig::default()
            },
        }
    }
}

/// A combined diagnosis.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// The asserted root causes, semantically deduplicated and simplified.
    pub causes: Dnf,
    /// Cause asserted by Stacked Shortcut, if it ran and asserted one.
    pub stacked_cause: Option<Conjunction>,
    /// Causes asserted by DDT, if it ran.
    pub ddt_causes: Option<Dnf>,
    /// New pipeline executions consumed in total.
    pub new_executions: usize,
}

impl Diagnosis {
    /// Renders the cause section of a diagnosis report — the lines every
    /// BugDoc front end (one-shot CLI, `bugdoc serve` sessions) prints, kept
    /// in one place so a served diagnosis is bit-identical to a one-shot
    /// one by construction.
    pub fn render_causes(&self, space: &bugdoc_core::ParamSpace) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.causes.is_empty() {
            let _ = writeln!(out, "no definitive root cause asserted");
        } else {
            let _ = writeln!(out, "minimal definitive root cause(s):");
            for cause in self.causes.conjuncts() {
                let _ = writeln!(out, "  {}", cause.display(space));
            }
        }
        out
    }
}

/// Runs the configured BugDoc strategy against the executor's history.
pub fn diagnose(exec: &Executor, config: &BugDocConfig) -> Result<Diagnosis, AlgoError> {
    let space = exec.space();
    let start = exec.stats().new_executions;
    // Saturating: under concurrent sessions another worker's transient
    // reclassify-as-hit can momentarily dip the shared counter below the
    // snapshot taken at `start`.
    let mut collected: Vec<Conjunction> = Vec::new();

    let mut stacked_cause = None;
    if matches!(
        config.strategy,
        Strategy::StackedShortcutOnly | Strategy::Combined
    ) {
        match stacked_shortcut(exec, &config.stacked) {
            Ok(report) => {
                if let Some(c) = &report.cause {
                    collected.push(c.clone());
                }
                stacked_cause = report.cause;
            }
            // A missing comparison instance — or an empty/failure-free
            // history — only disables this stage; DDT can still probe for
            // both outcomes. Genuine input errors propagate.
            Err(AlgoError::NoSucceedingInstance | AlgoError::NoFailingInstance)
                if config.strategy == Strategy::Combined => {}
            Err(e) => return Err(e),
        }
    }

    let mut ddt_causes = None;
    if matches!(config.strategy, Strategy::DdtOnly | Strategy::Combined) {
        let ddt_config = DdtConfig {
            mode: config.mode,
            ..config.ddt.clone()
        };
        let report = debugging_decision_trees(exec, &ddt_config)?;
        collected.extend(report.causes.conjuncts().iter().cloned());
        ddt_causes = Some(report.causes);
    }

    // Semantic dedup, then QM simplification of the union.
    let mut seen: Vec<CanonicalCause> = Vec::new();
    let mut unique: Vec<Conjunction> = Vec::new();
    for c in collected {
        let canon = c.canonicalize(&space);
        if canon.is_unsatisfiable() {
            continue;
        }
        if !seen.contains(&canon) {
            seen.push(canon);
            unique.push(c);
        }
    }
    let mut causes = Dnf::new(unique);
    if causes.len() > 1 {
        causes = bugdoc_qm::minimize_dnf(&space, &causes);
    }

    Ok(Diagnosis {
        causes,
        stacked_cause,
        ddt_causes,
        new_executions: exec.stats().new_executions.saturating_sub(start),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::{EvalResult, Instance, Outcome, ParamSpace, Predicate, Value};
    use bugdoc_engine::{Executor, ExecutorConfig, FnPipeline, Pipeline};
    use std::sync::Arc;

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .ordinal("a", [1, 2, 3, 4])
            .ordinal("b", [1, 2, 3, 4])
            .categorical("c", ["x", "y", "z"])
            .build()
    }

    fn exec_for(
        s: &Arc<ParamSpace>,
        fail_if: impl Fn(&Instance) -> bool + Send + Sync + 'static,
    ) -> Executor {
        let pipe: Arc<dyn Pipeline> = Arc::new(FnPipeline::new(s.clone(), move |i: &Instance| {
            EvalResult::of(Outcome::from_check(!fail_if(i)))
        }));
        let exec = Executor::new(pipe, ExecutorConfig::default());
        // Seed a small history with both outcomes.
        for (a, b, c) in [(1, 1, "x"), (4, 4, "z"), (2, 3, "y"), (4, 1, "x")] {
            let inst = Instance::from_pairs(
                s,
                [("a", a.into()), ("b", b.into()), ("c", c.into())],
            );
            let _ = exec.evaluate(&inst);
        }
        exec
    }

    #[test]
    fn combined_finds_equality_cause() {
        let s = space();
        let a = s.by_name("a").unwrap();
        let exec = exec_for(&s, move |i| i.get(a) == &Value::from(4));
        let diag = diagnose(&exec, &BugDocConfig::default()).unwrap();
        assert_eq!(diag.causes.len(), 1, "got {}", diag.causes.display(&s));
        assert_eq!(
            diag.causes.conjuncts()[0].canonicalize(&s),
            Conjunction::new(vec![Predicate::eq(a, 4)]).canonicalize(&s)
        );
        assert!(diag.stacked_cause.is_some());
        assert!(diag.ddt_causes.is_some());
    }

    #[test]
    fn stacked_only_strategy() {
        let s = space();
        let a = s.by_name("a").unwrap();
        let exec = exec_for(&s, move |i| i.get(a) == &Value::from(4));
        let diag = diagnose(
            &exec,
            &BugDocConfig {
                strategy: Strategy::StackedShortcutOnly,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(diag.ddt_causes.is_none());
        assert!(diag.stacked_cause.is_some());
        assert_eq!(diag.causes.len(), 1);
    }

    #[test]
    fn ddt_only_strategy_handles_inequality() {
        let s = space();
        let b = s.by_name("b").unwrap();
        let exec = exec_for(&s, move |i| i.get(b) > &Value::from(2));
        let diag = diagnose(
            &exec,
            &BugDocConfig {
                strategy: Strategy::DdtOnly,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(diag.stacked_cause.is_none());
        assert_eq!(diag.causes.len(), 1);
        assert_eq!(
            diag.causes.conjuncts()[0].canonicalize(&s),
            Conjunction::new(vec![Predicate::new(b, bugdoc_core::Comparator::Gt, 2)])
                .canonicalize(&s)
        );
    }

    #[test]
    fn duplicate_causes_are_merged() {
        // Stacked and DDT both find a = 4; the diagnosis lists it once.
        let s = space();
        let a = s.by_name("a").unwrap();
        let exec = exec_for(&s, move |i| i.get(a) == &Value::from(4));
        let diag = diagnose(&exec, &BugDocConfig::default()).unwrap();
        assert_eq!(diag.causes.len(), 1);
    }

    #[test]
    fn no_failure_propagates_error() {
        let s = space();
        let exec = exec_for(&s, |_| false);
        assert!(matches!(
            diagnose(&exec, &BugDocConfig::default()),
            Err(AlgoError::NoFailingInstance)
        ));
    }
}
