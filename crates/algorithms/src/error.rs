//! Error types shared by the debugging algorithms.

use bugdoc_engine::ExecError;
use std::fmt;

/// Why a debugging algorithm could not run (distinct from running and
/// asserting nothing, which the report types express).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgoError {
    /// The provided instances do not match the executor's parameter space.
    SpaceMismatch,
    /// The instance supplied as `CP_f` does not evaluate to `fail`.
    ExpectedFailing,
    /// The instance supplied as `CP_g` does not evaluate to `succeed`.
    ExpectedSucceeding,
    /// The history contains no failing instance to debug.
    NoFailingInstance,
    /// No succeeding instance could be found or generated to compare against.
    NoSucceedingInstance,
    /// The execution budget ran out before the algorithm could even evaluate
    /// its starting instances.
    BudgetExhausted,
    /// The starting instances cannot be executed (historical-replay gap).
    Unavailable,
}

impl AlgoError {
    pub(crate) fn from_exec(e: ExecError) -> Self {
        match e {
            ExecError::BudgetExhausted => AlgoError::BudgetExhausted,
            ExecError::Unavailable => AlgoError::Unavailable,
        }
    }
}

impl fmt::Display for AlgoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgoError::SpaceMismatch => write!(f, "instance does not match the parameter space"),
            AlgoError::ExpectedFailing => write!(f, "CP_f must evaluate to fail"),
            AlgoError::ExpectedSucceeding => write!(f, "CP_g must evaluate to succeed"),
            AlgoError::NoFailingInstance => write!(f, "no failing instance in the history"),
            AlgoError::NoSucceedingInstance => {
                write!(f, "no succeeding instance available for comparison")
            }
            AlgoError::BudgetExhausted => write!(f, "budget exhausted before the algorithm could start"),
            AlgoError::Unavailable => write!(f, "starting instance unavailable for execution"),
        }
    }
}

impl std::error::Error for AlgoError {}
