//! Group testing for problematic data elements (paper §6, future work).
//!
//! "Second, we would like to explore group testing [33, 38] to identify
//! problematic data elements when a dataset has been identified as a root
//! cause." Once BugDoc pins a *dataset* parameter as the root cause, the
//! next question is *which records inside that dataset* break the pipeline.
//! Re-running the pipeline once per record is linear in the dataset size;
//! adaptive group testing gets to the culprits in `O(d · log n)` runs for
//! `d` defective elements.
//!
//! The implementation is adaptive generalized binary splitting: test the
//! whole pool; while a failing subset exists, bisect it to isolate one
//! culprit, remove the culprit, and repeat on the remainder. It assumes the
//! failure is *monotone* (any superset of a failing set fails — true for
//! "a corrupt record crashes the parser" style bugs, checked optionally),
//! and verifies each isolated culprit individually.

use std::collections::BTreeSet;
use std::fmt;

/// Outcome of running the pipeline on a subset of data elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubsetOutcome {
    /// The pipeline succeeds on this subset.
    Clean,
    /// The pipeline fails on this subset (≥ 1 problematic element present).
    Defective,
}

/// A pipeline that can run on an arbitrary subset of a dataset's elements
/// (identified by index). This is the black-box interface group testing
/// needs; a real system would materialize the subset and execute the
/// original pipeline on it.
pub trait SubsetOracle {
    /// Runs the pipeline on the given subset of element indices.
    fn test(&mut self, subset: &[usize]) -> SubsetOutcome;
}

impl<F> SubsetOracle for F
where
    F: FnMut(&[usize]) -> SubsetOutcome,
{
    fn test(&mut self, subset: &[usize]) -> SubsetOutcome {
        self(subset)
    }
}

/// An admissible upper bound on how many defective elements a subset can
/// contain. Admissible means never under-counting: if the subset truly holds
/// `d` defectives, `max_defective` must return ≥ `d`. A return of `0` is
/// therefore a *proof* of cleanliness, and the oracle call it gates can be
/// skipped without changing which elements are identified — the same
/// bounds-before-exact contract as `ProvenanceStore::support_bounds`.
pub trait SubsetBound {
    /// Upper-bounds the number of defective elements in `subset`.
    fn max_defective(&self, subset: &[usize]) -> usize;
}

impl<F> SubsetBound for F
where
    F: Fn(&[usize]) -> usize,
{
    fn max_defective(&self, subset: &[usize]) -> usize {
        self(subset)
    }
}

/// A [`SubsetBound`] backed by a candidate superset: every element outside
/// `candidates` is known-clean (e.g. rows that already appeared in a
/// succeeding run), so a subset's defective count is at most its overlap
/// with the candidate set.
pub struct CandidateSetBound {
    candidates: BTreeSet<usize>,
}

impl CandidateSetBound {
    /// Creates a bound from a superset of the possibly-defective elements.
    pub fn new(candidates: impl IntoIterator<Item = usize>) -> Self {
        CandidateSetBound {
            candidates: candidates.into_iter().collect(),
        }
    }
}

impl SubsetBound for CandidateSetBound {
    fn max_defective(&self, subset: &[usize]) -> usize {
        subset.iter().filter(|i| self.candidates.contains(i)).count()
    }
}

/// Configuration for the search.
#[derive(Debug, Clone)]
pub struct GroupTestConfig {
    /// Safety cap on oracle calls (a stuck non-monotone oracle otherwise
    /// loops); generous relative to the `O(d log n)` expectation.
    pub max_tests: usize,
    /// Verify each isolated culprit by testing it alone.
    pub verify_singletons: bool,
}

impl Default for GroupTestConfig {
    fn default() -> Self {
        GroupTestConfig {
            max_tests: 10_000,
            verify_singletons: true,
        }
    }
}

/// The identified problematic elements plus the cost of finding them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupTestReport {
    /// Indices of the problematic elements, ascending.
    pub defective: Vec<usize>,
    /// Oracle calls consumed.
    pub tests_used: usize,
    /// True if the search ended because `max_tests` was hit (results may be
    /// incomplete).
    pub truncated: bool,
    /// Oracle calls skipped because an admissible [`SubsetBound`] proved the
    /// subset clean (always 0 for the unbounded entry point).
    pub pruned_tests: usize,
}

impl fmt::Display for GroupTestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} defective element(s) in {} tests{}",
            self.defective.len(),
            self.tests_used,
            if self.truncated { " (truncated)" } else { "" }
        )?;
        if self.pruned_tests > 0 {
            write!(f, ", {} pruned by bounds", self.pruned_tests)?;
        }
        Ok(())
    }
}

/// Finds every problematic element among `n_elements` by adaptive group
/// testing against the oracle.
///
/// Cost: one test of the full pool, plus `O(log n)` tests per defective
/// element isolated, plus one confirmation test per round of the shrinking
/// remainder; `O(d log n)` overall for `d` defectives — the economics the
/// paper's future-work pointer is after.
pub fn find_defective_elements(
    n_elements: usize,
    oracle: &mut dyn SubsetOracle,
    config: &GroupTestConfig,
) -> GroupTestReport {
    search(n_elements, oracle, None, config)
}

/// Bound-guided variant of [`find_defective_elements`]: skips every oracle
/// call whose subset an admissible [`SubsetBound`] proves clean
/// (`max_defective == 0` — the failure-support upper bound is below the
/// discrimination threshold of one defective). With an admissible bound the
/// identified defective set is identical to the unbounded search; only the
/// oracle-call count drops, with skips recorded in
/// [`GroupTestReport::pruned_tests`].
pub fn find_defective_elements_bounded(
    n_elements: usize,
    oracle: &mut dyn SubsetOracle,
    bound: &dyn SubsetBound,
    config: &GroupTestConfig,
) -> GroupTestReport {
    search(n_elements, oracle, Some(bound), config)
}

fn search(
    n_elements: usize,
    oracle: &mut dyn SubsetOracle,
    bound: Option<&dyn SubsetBound>,
    config: &GroupTestConfig,
) -> GroupTestReport {
    let mut tests_used = 0usize;
    let mut pruned_tests = 0usize;
    let mut truncated = false;
    let mut defective: BTreeSet<usize> = BTreeSet::new();
    let mut pool: Vec<usize> = (0..n_elements).collect();

    let budget = |used: &mut usize| {
        *used += 1;
        *used <= config.max_tests
    };
    // A subset the bound proves clean never reaches the oracle; the bound's
    // admissibility makes the skipped call's answer (Clean) certain.
    let provably_clean = |subset: &[usize], pruned: &mut usize| match bound {
        Some(b) if b.max_defective(subset) == 0 => {
            *pruned += 1;
            true
        }
        _ => false,
    };

    loop {
        if pool.is_empty() {
            break;
        }
        let pool_clean = if provably_clean(&pool, &mut pruned_tests) {
            true
        } else {
            if !budget(&mut tests_used) {
                truncated = true;
                break;
            }
            oracle.test(&pool) == SubsetOutcome::Clean
        };
        if pool_clean {
            break; // remainder is clean: all culprits found
        }
        // Bisect down to one culprit inside the failing pool.
        let mut lo = 0usize;
        let mut hi = pool.len();
        // Invariant: pool[lo..hi] contains ≥ 1 defective.
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            // Test the left half *together with everything already ruled
            // in-pool outside [lo..hi)*? No: classic binary splitting tests
            // the left half alone; monotonicity makes that sound.
            let left_defective = if provably_clean(&pool[lo..mid], &mut pruned_tests) {
                false
            } else {
                if !budget(&mut tests_used) {
                    truncated = true;
                    break;
                }
                oracle.test(&pool[lo..mid]) == SubsetOutcome::Defective
            };
            if left_defective {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        if truncated {
            break;
        }
        let culprit = pool[lo];
        let confirmed = if !config.verify_singletons {
            true
        } else if provably_clean(&pool[lo..lo + 1], &mut pruned_tests) {
            false
        } else {
            if !budget(&mut tests_used) {
                truncated = true;
                break;
            }
            oracle.test(&[culprit]) == SubsetOutcome::Defective
        };
        if confirmed {
            defective.insert(culprit);
        }
        // Remove the culprit (confirmed or not — an unconfirmed one means a
        // non-singleton interaction; removing it still makes progress) and
        // continue on the remainder.
        pool.remove(lo);
    }

    GroupTestReport {
        defective: defective.into_iter().collect(),
        tests_used,
        truncated,
        pruned_tests,
    }
}

/// Convenience oracle for "the pipeline fails iff the subset contains any of
/// these elements" — the monotone corrupt-record model. Counts tests.
pub struct CorruptRecordOracle {
    corrupt: BTreeSet<usize>,
    /// Number of oracle invocations so far.
    pub calls: usize,
}

impl CorruptRecordOracle {
    /// Creates an oracle with the given corrupt element indices.
    pub fn new(corrupt: impl IntoIterator<Item = usize>) -> Self {
        CorruptRecordOracle {
            corrupt: corrupt.into_iter().collect(),
            calls: 0,
        }
    }
}

impl SubsetOracle for CorruptRecordOracle {
    fn test(&mut self, subset: &[usize]) -> SubsetOutcome {
        self.calls += 1;
        if subset.iter().any(|i| self.corrupt.contains(i)) {
            SubsetOutcome::Defective
        } else {
            SubsetOutcome::Clean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_corrupt_record_binary_search_cost() {
        let mut oracle = CorruptRecordOracle::new([37]);
        let report = find_defective_elements(100, &mut oracle, &GroupTestConfig::default());
        assert_eq!(report.defective, vec![37]);
        assert!(!report.truncated);
        // ~log2(100) bisection steps + pool tests + verification ≈ ≤ 12.
        assert!(
            report.tests_used <= 12,
            "used {} tests for 1 defective in 100",
            report.tests_used
        );
    }

    #[test]
    fn multiple_corrupt_records() {
        let corrupt = [3usize, 41, 42, 97];
        let mut oracle = CorruptRecordOracle::new(corrupt);
        let report = find_defective_elements(128, &mut oracle, &GroupTestConfig::default());
        assert_eq!(report.defective, vec![3, 41, 42, 97]);
        // O(d log n): 4 · log2(128) = 28 bisection steps plus ~5 pool tests
        // and 4 verifications — comfortably under 50, far under 128.
        assert!(
            report.tests_used < 60,
            "used {} tests — worse than linear scanning economics",
            report.tests_used
        );
    }

    #[test]
    fn clean_dataset_costs_one_test() {
        let mut oracle = CorruptRecordOracle::new([]);
        let report = find_defective_elements(1000, &mut oracle, &GroupTestConfig::default());
        assert!(report.defective.is_empty());
        assert_eq!(report.tests_used, 1);
    }

    #[test]
    fn all_corrupt() {
        let mut oracle = CorruptRecordOracle::new(0..8);
        let report = find_defective_elements(8, &mut oracle, &GroupTestConfig::default());
        assert_eq!(report.defective, (0..8).collect::<Vec<_>>());
        assert!(!report.truncated);
    }

    #[test]
    fn empty_dataset() {
        let mut oracle = CorruptRecordOracle::new([0]);
        let report = find_defective_elements(0, &mut oracle, &GroupTestConfig::default());
        assert!(report.defective.is_empty());
        assert_eq!(report.tests_used, 0);
    }

    #[test]
    fn max_tests_truncates() {
        let mut oracle = CorruptRecordOracle::new([0, 5, 9]);
        let report = find_defective_elements(
            10,
            &mut oracle,
            &GroupTestConfig {
                max_tests: 3,
                verify_singletons: true,
            },
        );
        assert!(report.truncated);
        assert!(report.tests_used <= 4);
    }

    #[test]
    fn closure_oracle_works() {
        let mut calls = 0usize;
        let mut oracle = |subset: &[usize]| {
            calls += 1;
            if subset.contains(&2) {
                SubsetOutcome::Defective
            } else {
                SubsetOutcome::Clean
            }
        };
        let report = find_defective_elements(5, &mut oracle, &GroupTestConfig::default());
        assert_eq!(report.defective, vec![2]);
        assert_eq!(report.tests_used, calls);
    }

    /// Exhaustive sweep: every subset of corrupt elements in a small pool is
    /// recovered exactly.
    #[test]
    fn exhaustive_small_pools() {
        for n in 1usize..=6 {
            for mask in 0u32..(1 << n) {
                let corrupt: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
                let mut oracle = CorruptRecordOracle::new(corrupt.clone());
                let report =
                    find_defective_elements(n, &mut oracle, &GroupTestConfig::default());
                assert_eq!(report.defective, corrupt, "n={n} mask={mask:#b}");
            }
        }
    }

    #[test]
    fn report_display() {
        let r = GroupTestReport {
            defective: vec![1, 2],
            tests_used: 9,
            truncated: false,
            pruned_tests: 0,
        };
        assert_eq!(r.to_string(), "2 defective element(s) in 9 tests");
        let pruned = GroupTestReport {
            pruned_tests: 4,
            ..r
        };
        assert_eq!(
            pruned.to_string(),
            "2 defective element(s) in 9 tests, 4 pruned by bounds"
        );
    }

    /// An admissible candidate-superset bound never changes the identified
    /// defective set — only the number of oracle calls. Exhaustive over
    /// every corrupt subset and every candidate superset of it in a small
    /// pool.
    #[test]
    fn bounded_matches_unbounded_exhaustively() {
        for n in 1usize..=5 {
            for mask in 0u32..(1 << n) {
                let corrupt: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
                for extra in 0u32..(1 << n) {
                    let candidates: Vec<usize> = (0..n)
                        .filter(|&i| (mask | extra) >> i & 1 == 1)
                        .collect();
                    let mut plain_oracle = CorruptRecordOracle::new(corrupt.clone());
                    let plain = find_defective_elements(
                        n,
                        &mut plain_oracle,
                        &GroupTestConfig::default(),
                    );
                    let mut oracle = CorruptRecordOracle::new(corrupt.clone());
                    let bound = CandidateSetBound::new(candidates.clone());
                    let report = find_defective_elements_bounded(
                        n,
                        &mut oracle,
                        &bound,
                        &GroupTestConfig::default(),
                    );
                    assert_eq!(
                        report.defective, plain.defective,
                        "n={n} corrupt={corrupt:?} candidates={candidates:?}"
                    );
                    assert!(
                        report.tests_used <= plain.tests_used,
                        "bound made the search more expensive: n={n} mask={mask:#b}"
                    );
                }
            }
        }
    }

    /// A tight candidate set prunes aggressively: with the exact defective
    /// set as candidates, clean halves are never sent to the oracle.
    #[test]
    fn tight_bound_prunes_clean_halves() {
        let corrupt = [3usize, 41, 42, 97];
        let mut oracle = CorruptRecordOracle::new(corrupt);
        let bound = CandidateSetBound::new(corrupt);
        let report = find_defective_elements_bounded(
            128,
            &mut oracle,
            &bound,
            &GroupTestConfig::default(),
        );
        assert_eq!(report.defective, vec![3, 41, 42, 97]);
        assert!(report.pruned_tests > 0, "tight bound pruned nothing");
        let mut plain_oracle = CorruptRecordOracle::new(corrupt);
        let plain =
            find_defective_elements(128, &mut plain_oracle, &GroupTestConfig::default());
        assert!(
            report.tests_used < plain.tests_used,
            "bounded search used {} tests, unbounded {}",
            report.tests_used,
            plain.tests_used
        );
    }

    /// A closure works as a bound, mirroring the closure-oracle ergonomics.
    #[test]
    fn closure_bound_works() {
        let mut oracle = CorruptRecordOracle::new([2]);
        let bound = |subset: &[usize]| subset.iter().filter(|&&i| i >= 2).count();
        let report = find_defective_elements_bounded(
            5,
            &mut oracle,
            &bound,
            &GroupTestConfig::default(),
        );
        assert_eq!(report.defective, vec![2]);
    }

    /// An empty candidate set proves the whole pool clean in zero tests.
    #[test]
    fn empty_candidates_cost_zero_tests() {
        let mut oracle = CorruptRecordOracle::new([]);
        let bound = CandidateSetBound::new([]);
        let report = find_defective_elements_bounded(
            1000,
            &mut oracle,
            &bound,
            &GroupTestConfig::default(),
        );
        assert!(report.defective.is_empty());
        assert_eq!(report.tests_used, 0);
        assert_eq!(report.pruned_tests, 1);
    }
}
