//! # bugdoc-algorithms
//!
//! The paper's primary contribution: iterative debugging algorithms that find
//! *minimal definitive root causes* of pipeline failures by selectively
//! executing new instances (paper §4).
//!
//! * [`shortcut`] — Algorithm 1: a linear-cost parameter walk from a failing
//!   instance toward a disjoint succeeding one.
//! * [`stacked_shortcut`] — Algorithm 2: Shortcut against k mutually disjoint
//!   goods; unions the assertions to avoid truncation (Theorem 5).
//! * [`debugging_decision_trees`] — §4.2: complete unpruned trees surface
//!   suspect fail-paths with inequality comparators; suspects are verified by
//!   sampled executions and simplified with Quine–McCluskey.
//! * [`diagnose`] — the combined BugDoc driver used against the real-world
//!   pipelines (Figure 7).

#![warn(missing_docs)]

mod ddt;
mod driver;
mod error;
pub mod group_testing;
mod shortcut;
mod stacked;

pub use group_testing::{
    find_defective_elements, find_defective_elements_bounded, CandidateSetBound,
    CorruptRecordOracle, GroupTestConfig, GroupTestReport, SubsetBound, SubsetOracle,
    SubsetOutcome,
};

pub use ddt::{
    debugging_decision_trees, DdtConfig, DdtMode, DdtReport, PrototypeStrategy,
};
pub use driver::{diagnose, BugDocConfig, Diagnosis, Strategy};
pub use error::AlgoError;
pub use shortcut::{shortcut, shortcut_speculative, OnUnavailable, ShortcutConfig, ShortcutReport};
pub use stacked::{stacked_shortcut, stacked_shortcut_from, StackedConfig, StackedReport};
