//! The Shortcut algorithm (paper §4.1, Algorithm 1).
//!
//! Starting from a failing instance `CP_f` and a succeeding instance `CP_g`
//! disjoint from it, Shortcut walks over the parameters in order, replacing
//! each value in the current instance by `CP_g`'s value and *keeping* the
//! replacement whenever the modified instance still fails — the intuition
//! being that a parameter whose replacement preserves failure did not cause
//! it. The parameter-values of `CP_f` that survive form the asserted minimal
//! definitive root cause `D = CP_current ∩ CP_f`, subject to a final sanity
//! check against succeeding supersets in the history.
//!
//! Cost: exactly `|P|` instance executions — linear in the number of
//! parameters (Theorems 1–3 characterize exactness; Theorem 2 guarantees `D`
//! is never a *superset* of a minimal definitive root cause under the
//! Disjointness Condition).

use crate::error::AlgoError;
use bugdoc_core::{Conjunction, Instance, Outcome};
use bugdoc_engine::{ExecError, Executor};

/// What to do when the pipeline cannot execute a probe instance
/// (historical-replay gaps, paper §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnUnavailable {
    /// Stop the parameter walk and assert from the current state — the
    /// paper's "early stop when the pipeline instance to be tested was not
    /// present".
    #[default]
    Stop,
    /// Skip the parameter (keep `CP_f`'s value) and continue the walk.
    Skip,
}

/// Shortcut configuration.
#[derive(Debug, Clone, Default)]
pub struct ShortcutConfig {
    /// Probe-unavailability policy.
    pub on_unavailable: OnUnavailable,
    /// Optional explicit parameter order for the walk (defaults to id order —
    /// the paper only requires "some order among parameters").
    pub param_order: Option<Vec<bugdoc_core::ParamId>>,
}

/// The result of one Shortcut run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortcutReport {
    /// The asserted minimal definitive root cause, or `None` when the sanity
    /// check found a succeeding superset (the assertion would have been a
    /// proper subset of a real cause — a truncated assertion caught red-
    /// handed, Algorithm 1's `return ∅`).
    pub cause: Option<Conjunction>,
    /// New pipeline executions consumed by this run.
    pub new_executions: usize,
    /// True if the walk visited every parameter (false on budget exhaustion
    /// or an `OnUnavailable::Stop`).
    pub complete: bool,
}

/// Runs Shortcut from `cp_f` (must fail) toward `cp_g` (must succeed).
///
/// The caller chooses `cp_g`; the Disjointness Condition (`cp_g` disagrees
/// with `cp_f` everywhere) enables the theoretical guarantees, but the
/// algorithm is still useful as a heuristic with a merely *most-different*
/// `cp_g` (paper §4.1) — replacements that coincide with `cp_f`'s values are
/// then free cache hits.
pub fn shortcut(
    exec: &Executor,
    cp_f: &Instance,
    cp_g: &Instance,
    config: &ShortcutConfig,
) -> Result<ShortcutReport, AlgoError> {
    let space = exec.space();
    if cp_f.len() != space.len() || cp_g.len() != space.len() {
        return Err(AlgoError::SpaceMismatch);
    }
    let start_execs = exec.stats().new_executions;

    // Both endpoints must be evaluated (free if already in the history).
    match exec.evaluate(cp_f) {
        Ok(Outcome::Fail) => {}
        Ok(Outcome::Succeed) => return Err(AlgoError::ExpectedFailing),
        Err(e) => return Err(AlgoError::from_exec(e)),
    }
    match exec.evaluate(cp_g) {
        Ok(Outcome::Succeed) => {}
        Ok(Outcome::Fail) => return Err(AlgoError::ExpectedSucceeding),
        Err(e) => return Err(AlgoError::from_exec(e)),
    }

    let order: Vec<bugdoc_core::ParamId> = match &config.param_order {
        Some(o) => o.clone(),
        None => space.ids().collect(),
    };

    let mut current = cp_f.clone();
    let mut complete = true;
    for &p in &order {
        // `with_from` keeps the dense encoding alive across the walk, so
        // every probe below is a dense-key cache lookup in the executor.
        let replaced = current.with_from(p, cp_g);
        match exec.evaluate(&replaced) {
            Ok(Outcome::Fail) => current = replaced,
            Ok(Outcome::Succeed) => {} // p's value in CP_f matters: keep it.
            Err(ExecError::BudgetExhausted) => {
                complete = false;
                break;
            }
            Err(ExecError::Unavailable) => match config.on_unavailable {
                OnUnavailable::Stop => {
                    complete = false;
                    break;
                }
                OnUnavailable::Skip => {}
            },
        }
    }

    // D ← CP_current ∩ CP_f.
    let cause = Conjunction::of_equalities(current.shared_pairs(cp_f));
    let refuted = cause_refuted(exec, &cause);

    Ok(ShortcutReport {
        cause: if refuted { None } else { Some(cause) },
        new_executions: exec.stats().new_executions.saturating_sub(start_execs),
        complete,
    })
}

/// Shared dominance sanity check for both Shortcut variants: an empty cause
/// carries no information, and any succeeding execution containing the cause
/// refutes it. The superset query is bounds-gated in the store, so an
/// admissible epoch-summary bound answers most checks without a word-level
/// scan.
fn cause_refuted(exec: &Executor, cause: &Conjunction) -> bool {
    cause.is_empty()
        || exec.with_provenance_ref(|prov| prov.succeeding_superset_exists(cause))
}

/// Speculative parallel Shortcut (paper §4.3).
///
/// "The most time-consuming aspect of debugging is the execution of pipeline
/// instances. Fortunately, each pipeline instance is independent. Hence
/// different instances can be run in parallel. However, such an approach may
/// lead to the execution of pipelines that are ultimately unnecessary."
///
/// The sequential walk has a strict data dependency: step *i+1* needs to
/// know whether step *i* kept its replacement. The speculative variant bets
/// that replacements *keep failing* (the common case away from the cause):
/// it issues a window of `exec.workers()` chained substitutions as one
/// parallel batch, and on the first success inside the window discards the
/// mis-speculated suffix and re-speculates from the corrected state. The
/// asserted cause is **identical** to the sequential walk's; the cost is a
/// few wasted executions, traded for wall-clock — the virtual clock advances
/// once per *batch* rather than once per parameter.
pub fn shortcut_speculative(
    exec: &Executor,
    cp_f: &Instance,
    cp_g: &Instance,
    config: &ShortcutConfig,
) -> Result<ShortcutReport, AlgoError> {
    let space = exec.space();
    if cp_f.len() != space.len() || cp_g.len() != space.len() {
        return Err(AlgoError::SpaceMismatch);
    }
    let start_execs = exec.stats().new_executions;

    match exec.evaluate(cp_f) {
        Ok(Outcome::Fail) => {}
        Ok(Outcome::Succeed) => return Err(AlgoError::ExpectedFailing),
        Err(e) => return Err(AlgoError::from_exec(e)),
    }
    match exec.evaluate(cp_g) {
        Ok(Outcome::Succeed) => {}
        Ok(Outcome::Fail) => return Err(AlgoError::ExpectedSucceeding),
        Err(e) => return Err(AlgoError::from_exec(e)),
    }

    let order: Vec<bugdoc_core::ParamId> = match &config.param_order {
        Some(o) => o.clone(),
        None => space.ids().collect(),
    };
    let window = exec.workers().max(1);

    let mut current = cp_f.clone();
    let mut complete = true;
    let mut next = 0usize; // index into `order` of the next unresolved step
    'walk: while next < order.len() {
        // Speculate: a chain of substitutions assuming every step fails.
        let upper = (next + window).min(order.len());
        let mut chain: Vec<Instance> = Vec::with_capacity(upper - next);
        let mut state = current.clone();
        for &p in &order[next..upper] {
            state = state.with_from(p, cp_g);
            chain.push(state.clone());
        }
        let results = exec.evaluate_batch(&chain);
        for (k, result) in results.iter().enumerate() {
            match result {
                Ok(Outcome::Fail) => {
                    current = chain[k].clone();
                    next += 1;
                }
                Ok(Outcome::Succeed) => {
                    // Step keeps CP_f's value; everything after k in the
                    // chain was speculated on a wrong premise — discard.
                    next += 1;
                    continue 'walk;
                }
                Err(ExecError::BudgetExhausted) => {
                    complete = false;
                    break 'walk;
                }
                Err(ExecError::Unavailable) => match config.on_unavailable {
                    OnUnavailable::Stop => {
                        complete = false;
                        break 'walk;
                    }
                    OnUnavailable::Skip => {
                        next += 1;
                        continue 'walk;
                    }
                },
            }
        }
    }

    let cause = Conjunction::of_equalities(current.shared_pairs(cp_f));
    let refuted = cause_refuted(exec, &cause);

    Ok(ShortcutReport {
        cause: if refuted { None } else { Some(cause) },
        new_executions: exec.stats().new_executions.saturating_sub(start_execs),
        complete,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::{
        Comparator, EvalResult, Instance, ParamSpace, Predicate, ProvenanceStore, Value,
    };
    use bugdoc_engine::{Executor, ExecutorConfig, FnPipeline, Pipeline};
    use std::sync::Arc;

    /// The paper's Figure-1 space.
    fn ml_space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .categorical("Dataset", ["Iris", "Digits", "Images"])
            .categorical(
                "Estimator",
                ["Logistic Regression", "Decision Tree", "Gradient Boosting"],
            )
            .ordinal("Library Version", [1.0, 2.0])
            .build()
    }

    fn ml_inst(s: &ParamSpace, d: &str, e: &str, v: f64) -> Instance {
        Instance::from_pairs(
            s,
            [
                ("Dataset", d.into()),
                ("Estimator", e.into()),
                ("Library Version", v.into()),
            ],
        )
    }

    /// Example 1's pipeline: version 2.0 is buggy (score ≤ 0.3), everything
    /// else scores ≥ 0.6.
    fn version_bug_pipeline(s: &Arc<ParamSpace>) -> Arc<dyn Pipeline> {
        let v = s.by_name("Library Version").unwrap();
        let e = s.by_name("Estimator").unwrap();
        let space = s.clone();
        Arc::new(FnPipeline::new(s.clone(), move |i: &Instance| {
            let buggy = i.get(v) == &Value::float(2.0);
            let score = if buggy {
                if i.get(e) == &Value::from("Decision Tree") {
                    0.3
                } else {
                    0.2
                }
            } else {
                0.8
            };
            let _ = &space;
            EvalResult::from_score_at_least(score, 0.6)
        }))
    }

    fn executor(s: &Arc<ParamSpace>, pipe: Arc<dyn Pipeline>) -> Executor {
        // Seed the paper's Table 1.
        let mut prov = ProvenanceStore::new(s.clone());
        prov.record(
            ml_inst(s, "Iris", "Logistic Regression", 1.0),
            EvalResult::from_score_at_least(0.9, 0.6),
        );
        prov.record(
            ml_inst(s, "Digits", "Decision Tree", 1.0),
            EvalResult::from_score_at_least(0.8, 0.6),
        );
        prov.record(
            ml_inst(s, "Iris", "Gradient Boosting", 2.0),
            EvalResult::from_score_at_least(0.2, 0.6),
        );
        Executor::with_provenance(pipe, ExecutorConfig::default(), prov)
    }

    /// Paper §4.1, Example 1 end-to-end: Shortcut finds Library Version = 2.
    #[test]
    fn example_1_finds_library_version() {
        let s = ml_space();
        let exec = executor(&s, version_bug_pipeline(&s));
        let cp_f = ml_inst(&s, "Iris", "Gradient Boosting", 2.0);
        let cp_g = ml_inst(&s, "Digits", "Decision Tree", 1.0);
        assert!(cp_f.is_disjoint_from(&cp_g));

        let report = shortcut(&exec, &cp_f, &cp_g, &ShortcutConfig::default()).unwrap();
        let cause = report.cause.expect("a cause is asserted");
        let v = s.by_name("Library Version").unwrap();
        let expected = Conjunction::new(vec![Predicate::new(v, Comparator::Eq, 2.0)]);
        assert_eq!(cause.canonicalize(&s), expected.canonicalize(&s));
        assert!(report.complete);
        // Table 2: the walk created exactly the 3 new instances (one per
        // parameter); the last one (Digits, DT, 1.0) is a cache hit.
        assert_eq!(report.new_executions, 2);
        assert_eq!(exec.provenance().len(), 5);
    }

    /// Theorem 1: singleton causes + disjointness ⇒ exact assertion.
    #[test]
    fn theorem1_singleton_exact() {
        let s = ParamSpace::builder()
            .ordinal("a", [1, 2, 3])
            .ordinal("b", [1, 2, 3])
            .ordinal("c", [1, 2, 3])
            .build();
        let a = s.by_name("a").unwrap();
        let pipe = {
            let a = a;
            Arc::new(FnPipeline::new(s.clone(), move |i: &Instance| {
                EvalResult::of(Outcome::from_check(i.get(a) != &Value::from(2)))
            })) as Arc<dyn Pipeline>
        };
        let exec = Executor::new(pipe, ExecutorConfig::default());
        let cp_f = Instance::from_pairs(&s, [("a", 2.into()), ("b", 2.into()), ("c", 2.into())]);
        let cp_g = Instance::from_pairs(&s, [("a", 1.into()), ("b", 1.into()), ("c", 1.into())]);
        let report = shortcut(&exec, &cp_f, &cp_g, &ShortcutConfig::default()).unwrap();
        let cause = report.cause.unwrap();
        assert_eq!(
            cause.canonicalize(&s),
            Conjunction::new(vec![Predicate::eq(a, 2)]).canonicalize(&s)
        );
    }

    /// Example 2: two causes sharing the union property produce a truncated
    /// assertion `{(p3,v3)}` — a proper subset of D2, as the paper shows.
    #[test]
    fn example_2_truncated_assertion() {
        let s = ParamSpace::builder()
            .ordinal("p1", [1, 2])
            .ordinal("p2", [1, 2])
            .ordinal("p3", [1, 2])
            .build();
        let (p1, p2, p3) = (
            s.by_name("p1").unwrap(),
            s.by_name("p2").unwrap(),
            s.by_name("p3").unwrap(),
        );
        // D1 = {p1=1, p2=1}; D2 = {p1=2, p3=1}.
        let pipe = Arc::new(FnPipeline::new(s.clone(), move |i: &Instance| {
            let d1 = i.get(p1) == &Value::from(1) && i.get(p2) == &Value::from(1);
            let d2 = i.get(p1) == &Value::from(2) && i.get(p3) == &Value::from(1);
            EvalResult::of(Outcome::from_check(!(d1 || d2)))
        })) as Arc<dyn Pipeline>;
        let exec = Executor::new(pipe, ExecutorConfig::default());
        // CP_f = (1,1,1) contains D1; CP_g = (2,2,2) is disjoint and succeeds.
        let cp_f = Instance::from_pairs(&s, [("p1", 1.into()), ("p2", 1.into()), ("p3", 1.into())]);
        let cp_g = Instance::from_pairs(&s, [("p1", 2.into()), ("p2", 2.into()), ("p3", 2.into())]);
        let report = shortcut(&exec, &cp_f, &cp_g, &ShortcutConfig::default()).unwrap();
        let cause = report.cause.unwrap();
        // The truncated assertion: {p3 = 1}.
        assert_eq!(
            cause.canonicalize(&s),
            Conjunction::new(vec![Predicate::eq(p3, 1)]).canonicalize(&s)
        );
    }

    /// Example 3: sufficiently different causes ⇒ no truncation (Theorem 3).
    #[test]
    fn example_3_sufficiently_different_no_truncation() {
        let s = ParamSpace::builder()
            .ordinal("p1", [1, 2, 3])
            .ordinal("p2", [1, 2, 3])
            .ordinal("p3", [1, 2, 3])
            .build();
        let (p1, p2, p3) = (
            s.by_name("p1").unwrap(),
            s.by_name("p2").unwrap(),
            s.by_name("p3").unwrap(),
        );
        // D1 = {p1=1, p2=1}; D2 = {p1=2, p2=3, p3=1} — they share p1,p2 and
        // differ on both (sufficiently different).
        let pipe = Arc::new(FnPipeline::new(s.clone(), move |i: &Instance| {
            let d1 = i.get(p1) == &Value::from(1) && i.get(p2) == &Value::from(1);
            let d2 = i.get(p1) == &Value::from(2)
                && i.get(p2) == &Value::from(3)
                && i.get(p3) == &Value::from(1);
            EvalResult::of(Outcome::from_check(!(d1 || d2)))
        })) as Arc<dyn Pipeline>;
        let exec = Executor::new(pipe, ExecutorConfig::default());
        let cp_f = Instance::from_pairs(&s, [("p1", 1.into()), ("p2", 1.into()), ("p3", 1.into())]);
        let cp_g = Instance::from_pairs(&s, [("p1", 2.into()), ("p2", 2.into()), ("p3", 2.into())]);
        let report = shortcut(&exec, &cp_f, &cp_g, &ShortcutConfig::default()).unwrap();
        let cause = report.cause.unwrap();
        let d1 = Conjunction::new(vec![Predicate::eq(p1, 1), Predicate::eq(p2, 1)]);
        assert_eq!(cause.canonicalize(&s), d1.canonicalize(&s));
    }

    /// Theorem 2 (never a superset) exercised via the sanity check: when the
    /// walk leaves extra parameters in D, a succeeding superset in the
    /// history refutes the assertion.
    #[test]
    fn sanity_check_refutes_non_definitive_assertion() {
        let s = ml_space();
        let exec = executor(&s, version_bug_pipeline(&s));
        // Use a non-disjoint CP_g sharing the Dataset with CP_f: the walk
        // cannot clear Dataset=Iris, but history contains the succeeding
        // (Iris, LR, 1.0) once the walk executes it... construct directly:
        let cp_f = ml_inst(&s, "Iris", "Gradient Boosting", 2.0);
        let cp_g = ml_inst(&s, "Iris", "Logistic Regression", 1.0); // not disjoint
        let report = shortcut(&exec, &cp_f, &cp_g, &ShortcutConfig::default()).unwrap();
        // The walk: Dataset stays Iris (cache-hit on same value keeps fail? no:
        // replacing Dataset Iris->Iris is the same instance = CP_f = fail, so
        // kept); Estimator GB->LR with version 2 still fails; Version 2->1
        // succeeds so kept at 2. D = {Dataset=Iris, Version=2}? Estimator was
        // replaced, so D = Dataset=Iris ∧ Version=2. No succeeding superset
        // exists (version 2 always fails), so the cause stands but includes
        // the spurious Dataset=Iris — the heuristic (non-disjoint) regime.
        let cause = report.cause.unwrap();
        let v = s.by_name("Library Version").unwrap();
        assert!(cause
            .predicates()
            .iter()
            .any(|p| p.param == v && p.value == Value::float(2.0)));
    }

    #[test]
    fn rejects_wrong_polarity_inputs() {
        let s = ml_space();
        let exec = executor(&s, version_bug_pipeline(&s));
        let good = ml_inst(&s, "Iris", "Logistic Regression", 1.0);
        let bad = ml_inst(&s, "Iris", "Gradient Boosting", 2.0);
        assert!(matches!(
            shortcut(&exec, &good, &bad, &ShortcutConfig::default()),
            Err(AlgoError::ExpectedFailing)
        ));
        assert!(matches!(
            shortcut(&exec, &bad, &bad, &ShortcutConfig::default()),
            Err(AlgoError::ExpectedSucceeding)
        ));
    }

    #[test]
    fn budget_exhaustion_is_graceful() {
        let s = ml_space();
        let mut prov = ProvenanceStore::new(s.clone());
        prov.record(
            ml_inst(&s, "Iris", "Gradient Boosting", 2.0),
            EvalResult::from_score_at_least(0.2, 0.6),
        );
        prov.record(
            ml_inst(&s, "Digits", "Decision Tree", 1.0),
            EvalResult::from_score_at_least(0.8, 0.6),
        );
        let exec = Executor::with_provenance(
            version_bug_pipeline(&s),
            ExecutorConfig {
                workers: 1,
                budget: Some(1),
                ..Default::default()
            },
            prov,
        );
        let cp_f = ml_inst(&s, "Iris", "Gradient Boosting", 2.0);
        let cp_g = ml_inst(&s, "Digits", "Decision Tree", 1.0);
        let report = shortcut(&exec, &cp_f, &cp_g, &ShortcutConfig::default()).unwrap();
        assert!(!report.complete);
        assert_eq!(report.new_executions, 1);
        // With one probe, D keeps Estimator and Version (only Dataset walked).
        let cause = report.cause.unwrap();
        assert!(cause.len() >= 2);
    }

    #[test]
    fn custom_param_order_respected() {
        let s = ml_space();
        let exec = executor(&s, version_bug_pipeline(&s));
        let cp_f = ml_inst(&s, "Iris", "Gradient Boosting", 2.0);
        let cp_g = ml_inst(&s, "Digits", "Decision Tree", 1.0);
        // Walk Version first: the very first probe (Iris, GB, 1.0) succeeds,
        // pinning Version=2; later probes keep failing.
        let order = vec![
            s.by_name("Library Version").unwrap(),
            s.by_name("Dataset").unwrap(),
            s.by_name("Estimator").unwrap(),
        ];
        let report = shortcut(
            &exec,
            &cp_f,
            &cp_g,
            &ShortcutConfig {
                param_order: Some(order),
                ..Default::default()
            },
        )
        .unwrap();
        let cause = report.cause.unwrap();
        let v = s.by_name("Library Version").unwrap();
        assert_eq!(
            cause.canonicalize(&s),
            Conjunction::new(vec![Predicate::new(v, Comparator::Eq, 2.0)]).canonicalize(&s)
        );
    }
}

#[cfg(test)]
mod speculative_tests {
    use super::*;
    use bugdoc_core::{EvalResult, Instance, ParamSpace, Value};
    use bugdoc_engine::{Executor, ExecutorConfig, FnPipeline, SimTime};
    use std::sync::Arc;

    /// A 10-parameter pipeline failing iff p0 = 1 ∧ p7 = 1, each instance
    /// "costing" 20 virtual minutes.
    fn wide_space() -> Arc<ParamSpace> {
        let mut b = ParamSpace::builder();
        for i in 0..10 {
            b = b.ordinal(format!("p{i}"), [1, 2, 3]);
        }
        b.build()
    }

    fn exec_for(s: &Arc<ParamSpace>, workers: usize) -> Executor {
        let p0 = s.by_name("p0").unwrap();
        let p7 = s.by_name("p7").unwrap();
        let pipe = FnPipeline::new(s.clone(), move |i: &Instance| {
            let fail = i.get(p0) == &Value::from(1) && i.get(p7) == &Value::from(1);
            EvalResult::of(Outcome::from_check(!fail))
        })
        .with_cost(SimTime::from_mins(20.0));
        Executor::new(Arc::new(pipe), ExecutorConfig { workers, budget: None, ..Default::default() })
    }

    fn endpoints(_s: &Arc<ParamSpace>) -> (Instance, Instance) {
        let all = |v: i64| Instance::new((0..10).map(|_| Value::from(v)).collect());
        (all(1), all(2)) // cp_f fails (p0=1 ∧ p7=1); cp_g succeeds, disjoint
    }

    /// The speculative walk asserts exactly the sequential walk's cause.
    #[test]
    fn same_cause_as_sequential() {
        let s = wide_space();
        let (cp_f, cp_g) = endpoints(&s);

        let seq = exec_for(&s, 1);
        let seq_report = shortcut(&seq, &cp_f, &cp_g, &ShortcutConfig::default()).unwrap();

        let par = exec_for(&s, 4);
        let par_report =
            shortcut_speculative(&par, &cp_f, &cp_g, &ShortcutConfig::default()).unwrap();

        assert_eq!(
            seq_report.cause.as_ref().map(|c| c.canonicalize(&s)),
            par_report.cause.as_ref().map(|c| c.canonicalize(&s)),
        );
        assert!(par_report.complete);
    }

    /// Speculation may waste executions but saves virtual wall-clock.
    #[test]
    fn trades_instances_for_wall_clock() {
        let s = wide_space();
        let (cp_f, cp_g) = endpoints(&s);

        let seq = exec_for(&s, 1);
        shortcut(&seq, &cp_f, &cp_g, &ShortcutConfig::default()).unwrap();
        let seq_stats = seq.stats();

        let par = exec_for(&s, 5);
        shortcut_speculative(&par, &cp_f, &cp_g, &ShortcutConfig::default()).unwrap();
        let par_stats = par.stats();

        // "such an approach may lead to the execution of pipelines that are
        // ultimately unnecessary" — but the overhead is small:
        assert!(par_stats.new_executions >= seq_stats.new_executions);
        assert!(par_stats.new_executions <= seq_stats.new_executions + 10);
        // and the wall-clock shrinks substantially:
        assert!(
            par_stats.sim_time.secs() < seq_stats.sim_time.secs() * 0.7,
            "parallel {} vs sequential {}",
            par_stats.sim_time,
            seq_stats.sim_time
        );
    }

    /// With one worker the speculative variant degenerates to the
    /// sequential walk: same cause, same instance count.
    #[test]
    fn single_worker_degenerates_to_sequential() {
        let s = wide_space();
        let (cp_f, cp_g) = endpoints(&s);
        let a = exec_for(&s, 1);
        let ra = shortcut(&a, &cp_f, &cp_g, &ShortcutConfig::default()).unwrap();
        let b = exec_for(&s, 1);
        let rb = shortcut_speculative(&b, &cp_f, &cp_g, &ShortcutConfig::default()).unwrap();
        assert_eq!(
            ra.cause.map(|c| c.canonicalize(&s)),
            rb.cause.map(|c| c.canonicalize(&s))
        );
        assert_eq!(ra.new_executions, rb.new_executions);
    }

    /// Budget exhaustion mid-speculation is graceful and flagged.
    #[test]
    fn budget_exhaustion_flagged() {
        let s = wide_space();
        let (cp_f, cp_g) = endpoints(&s);
        let p0 = s.by_name("p0").unwrap();
        let p7 = s.by_name("p7").unwrap();
        let pipe = FnPipeline::new(s.clone(), move |i: &Instance| {
            let fail = i.get(p0) == &Value::from(1) && i.get(p7) == &Value::from(1);
            EvalResult::of(Outcome::from_check(!fail))
        });
        let exec = Executor::new(
            Arc::new(pipe),
            ExecutorConfig {
                workers: 4,
                budget: Some(5),
                ..Default::default()
            },
        );
        let report =
            shortcut_speculative(&exec, &cp_f, &cp_g, &ShortcutConfig::default()).unwrap();
        assert!(!report.complete);
        assert!(exec.stats().new_executions <= 5);
    }
}
