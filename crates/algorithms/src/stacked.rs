//! The Stacked Shortcut algorithm (paper §4.1, Algorithm 2).
//!
//! Shortcut can assert a *truncated* cause (a proper subset of a minimal
//! definitive root cause) only when a minimal cause straddles the union
//! `CP_f ∪ CP_g` (Theorem 4). Stacked Shortcut therefore runs the same failed
//! configuration against `k` *mutually disjoint* good configurations and
//! unions the inferred causes: with at most `k` distinct minimal causes, at
//! least one good configuration lacks the union property and contributes the
//! untruncated assertion (Theorem 5). Each extra stacked call "can only grow
//! the hypothetical root cause".
//!
//! When the history does not contain `k` mutually disjoint successes, the
//! implementation can *probe* for new ones — sampling instances disjoint from
//! `CP_f` and from the already-picked goods, executing them, and keeping the
//! successes — which is exactly BugDoc's iterative instance generation.

use crate::error::AlgoError;
use crate::shortcut::{shortcut, ShortcutConfig};
use bugdoc_core::{Conjunction, Instance, Outcome, ParamSpace};
use bugdoc_engine::{ExecError, Executor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stacked Shortcut configuration.
#[derive(Debug, Clone)]
pub struct StackedConfig {
    /// Number of disjoint good configurations to stack. The paper's
    /// experiments use four ("Stacked Shortcut with four shortcuts").
    pub k: usize,
    /// If the history holds fewer than `k` mutually disjoint successes,
    /// probe randomly for more (each probe costs one execution).
    pub seek_new_good: bool,
    /// Cap on probe executions when seeking new goods.
    pub max_probe_attempts: usize,
    /// RNG seed for probe sampling.
    pub seed: u64,
    /// Configuration forwarded to each inner Shortcut run.
    pub shortcut: ShortcutConfig,
}

impl Default for StackedConfig {
    fn default() -> Self {
        StackedConfig {
            k: 4,
            seek_new_good: true,
            max_probe_attempts: 20,
            seed: 0,
            shortcut: ShortcutConfig::default(),
        }
    }
}

/// The result of a Stacked Shortcut run.
#[derive(Debug, Clone, PartialEq)]
pub struct StackedReport {
    /// The union of the causes asserted by the stacked Shortcut runs, or
    /// `None` if every run was refuted.
    pub cause: Option<Conjunction>,
    /// How many good configurations were actually stacked.
    pub goods_used: usize,
    /// New pipeline executions consumed (probes + walks).
    pub new_executions: usize,
}

/// Runs Stacked Shortcut against the executor's current history.
///
/// `CP_f` is the first failing instance in the history (Algorithm 2's
/// "Let CP_f be such that CP_f ∈ CPI and E(CP_f) = fail").
pub fn stacked_shortcut(exec: &Executor, config: &StackedConfig) -> Result<StackedReport, AlgoError> {
    let cp_f = exec
        .with_provenance_ref(|prov| prov.first_failing().cloned())
        .ok_or(AlgoError::NoFailingInstance)?;
    stacked_shortcut_from(exec, &cp_f, config)
}

/// Runs Stacked Shortcut from an explicit failing instance.
pub fn stacked_shortcut_from(
    exec: &Executor,
    cp_f: &Instance,
    config: &StackedConfig,
) -> Result<StackedReport, AlgoError> {
    let space = exec.space();
    let start_execs = exec.stats().new_executions;
    match exec.evaluate(cp_f) {
        Ok(Outcome::Fail) => {}
        Ok(Outcome::Succeed) => return Err(AlgoError::ExpectedFailing),
        Err(e) => return Err(AlgoError::from_exec(e)),
    }

    // CP_G ← up to k successes, disjoint from CP_f and mutually disjoint if
    // possible; then probe for more if allowed.
    let mut goods: Vec<Instance> = exec.with_provenance_ref(|prov| {
        prov.mutually_disjoint_successes(cp_f, config.k)
            .into_iter()
            .cloned()
            .collect()
    });

    if goods.len() < config.k && config.seek_new_good {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut attempts = 0;
        while goods.len() < config.k && attempts < config.max_probe_attempts {
            attempts += 1;
            let candidate = sample_disjoint(&space, cp_f, &goods, &mut rng);
            let Some(candidate) = candidate else { break };
            match exec.evaluate(&candidate) {
                Ok(Outcome::Succeed) => goods.push(candidate),
                Ok(Outcome::Fail) => {}
                Err(ExecError::BudgetExhausted) => break,
                Err(ExecError::Unavailable) => {}
            }
        }
    }

    // Last resort: the most-different heuristic (paper §4.1).
    if goods.is_empty() {
        let fallback = exec.with_provenance_ref(|prov| prov.most_different_success(cp_f).cloned());
        match fallback {
            Some(g) => goods.push(g),
            None => return Err(AlgoError::NoSucceedingInstance),
        }
    }

    // D ← ⋃ shortcut(CPI, E, P, CP_f, CP_g).
    let mut components: Vec<Conjunction> = Vec::new();
    for cp_g in &goods {
        let report = shortcut(exec, cp_f, cp_g, &config.shortcut)?;
        if let Some(cause) = report.cause {
            components.push(cause);
        }
    }
    // Each Shortcut run sanity-checked its own assertion against the history
    // *at the time it ran* — but a later walk may have executed a succeeding
    // instance that refutes an earlier component. Re-validate every component
    // against the final history before taking the union; components with no
    // succeeding superset individually guarantee the union has none either
    // (an instance satisfying the union satisfies every component). One
    // epoch-major batched call replaces N independent store round-trips.
    let refuted =
        exec.with_provenance_ref(|prov| prov.succeeding_superset_exists_many(&components));
    let mut keep = refuted.iter().map(|&r| !r);
    components.retain(|_| keep.next().unwrap_or(false));
    let cause = if components.is_empty() {
        None
    } else {
        Some(Conjunction::new(
            components
                .iter()
                .flat_map(|c| c.predicates().iter().cloned())
                .collect(),
        ))
    };

    Ok(StackedReport {
        cause,
        goods_used: goods.len(),
        new_executions: exec.stats().new_executions.saturating_sub(start_execs),
    })
}

/// Samples an instance disjoint from `cp_f` and from every already-picked
/// good (best effort: parameters whose domains are too small to avoid all of
/// them only avoid `cp_f`). Returns `None` for degenerate spaces where even
/// avoiding `cp_f` is impossible on some parameter.
fn sample_disjoint(
    space: &ParamSpace,
    cp_f: &Instance,
    picked: &[Instance],
    rng: &mut StdRng,
) -> Option<Instance> {
    let mut indices: Vec<u32> = Vec::with_capacity(space.len());
    for p in space.ids() {
        let domain = space.domain(p);
        // Domain indices avoiding CP_f and all picked goods.
        let strict: Vec<u32> = domain
            .values()
            .iter()
            .enumerate()
            .filter(|(_, v)| *v != cp_f.get(p) && picked.iter().all(|g| *v != g.get(p)))
            .map(|(i, _)| i as u32)
            .collect();
        let relaxed: Vec<u32> = domain
            .values()
            .iter()
            .enumerate()
            .filter(|(_, v)| *v != cp_f.get(p))
            .map(|(i, _)| i as u32)
            .collect();
        let pool = if !strict.is_empty() { &strict } else { &relaxed };
        if pool.is_empty() {
            return None; // single-valued domain: disjointness unattainable
        }
        indices.push(pool[rng.gen_range(0..pool.len())]);
    }
    Some(space.instance_from_indices(&indices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::{EvalResult, ParamSpace, Predicate, ProvenanceStore, Value};
    use bugdoc_engine::{Executor, ExecutorConfig, FnPipeline, Pipeline};
    use std::sync::Arc;

    fn space3x3() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .ordinal("p1", [1, 2, 3])
            .ordinal("p2", [1, 2, 3])
            .ordinal("p3", [1, 2, 3])
            .build()
    }

    /// Pipeline with the paper's Example-2 structure:
    /// D1 = {p1=1, p2=1}, D2 = {p1=2, p3=1}.
    fn two_cause_pipeline(s: &Arc<ParamSpace>) -> Arc<dyn Pipeline> {
        let p1 = s.by_name("p1").unwrap();
        let p2 = s.by_name("p2").unwrap();
        let p3 = s.by_name("p3").unwrap();
        Arc::new(FnPipeline::new(s.clone(), move |i: &Instance| {
            let d1 = i.get(p1) == &Value::from(1) && i.get(p2) == &Value::from(1);
            let d2 = i.get(p1) == &Value::from(2) && i.get(p3) == &Value::from(1);
            EvalResult::of(Outcome::from_check(!(d1 || d2)))
        }))
    }

    /// Theorem 5 in action: with two minimal causes and k=2 disjoint goods,
    /// the union is not truncated — it contains D1 entirely (D1 ⊆ CP_f).
    #[test]
    fn stacked_avoids_truncation() {
        let s = space3x3();
        let exec = Executor::new(two_cause_pipeline(&s), ExecutorConfig::default());
        // Seed history: CP_f contains D1; two successes mutually disjoint.
        let cp_f =
            Instance::from_pairs(&s, [("p1", 1.into()), ("p2", 1.into()), ("p3", 1.into())]);
        exec.evaluate(&cp_f).unwrap();
        let g1 = Instance::from_pairs(&s, [("p1", 2.into()), ("p2", 2.into()), ("p3", 2.into())]);
        let g2 = Instance::from_pairs(&s, [("p1", 3.into()), ("p2", 3.into()), ("p3", 3.into())]);
        exec.evaluate(&g1).unwrap();
        exec.evaluate(&g2).unwrap();

        let report = stacked_shortcut(
            &exec,
            &StackedConfig {
                k: 2,
                seek_new_good: false,
                ..Default::default()
            },
        )
        .unwrap();
        let cause = report.cause.expect("asserted");
        let p1 = s.by_name("p1").unwrap();
        let p2 = s.by_name("p2").unwrap();
        // D1 = {p1=1, p2=1} must be contained in the union.
        for pred in [Predicate::eq(p1, 1), Predicate::eq(p2, 1)] {
            assert!(
                cause.predicates().contains(&pred),
                "union {} missing {}",
                cause.display(&s),
                pred.display(&s)
            );
        }
        assert_eq!(report.goods_used, 2);
    }

    /// Against g1 alone (union property holds: D2 ⊆ CP_f ∪ g1), plain
    /// Shortcut truncates — confirming Stacked's value on the same pipeline.
    #[test]
    fn single_shortcut_truncates_where_stacked_does_not() {
        let s = space3x3();
        let exec = Executor::new(two_cause_pipeline(&s), ExecutorConfig::default());
        let cp_f =
            Instance::from_pairs(&s, [("p1", 1.into()), ("p2", 1.into()), ("p3", 1.into())]);
        let g1 = Instance::from_pairs(&s, [("p1", 2.into()), ("p2", 2.into()), ("p3", 2.into())]);
        exec.evaluate(&cp_f).unwrap();
        exec.evaluate(&g1).unwrap();
        let report = shortcut(&exec, &cp_f, &g1, &ShortcutConfig::default()).unwrap();
        let cause = report.cause.unwrap();
        let p3 = s.by_name("p3").unwrap();
        // Truncated: just {p3=1}.
        assert_eq!(
            cause.canonicalize(&s),
            Conjunction::new(vec![Predicate::eq(p3, 1)]).canonicalize(&s)
        );
    }

    #[test]
    fn probes_for_new_goods_when_history_is_thin() {
        let s = space3x3();
        let exec = Executor::new(two_cause_pipeline(&s), ExecutorConfig::default());
        let cp_f =
            Instance::from_pairs(&s, [("p1", 1.into()), ("p2", 1.into()), ("p3", 1.into())]);
        exec.evaluate(&cp_f).unwrap();
        // History has no success at all: stacking must probe.
        let report = stacked_shortcut(
            &exec,
            &StackedConfig {
                k: 2,
                seek_new_good: true,
                max_probe_attempts: 30,
                seed: 7,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.goods_used >= 1);
        assert!(report.cause.is_some());
        assert!(report.new_executions > 0);
    }

    #[test]
    fn no_failing_instance_is_an_error() {
        let s = space3x3();
        let exec = Executor::new(two_cause_pipeline(&s), ExecutorConfig::default());
        let g = Instance::from_pairs(&s, [("p1", 3.into()), ("p2", 3.into()), ("p3", 3.into())]);
        exec.evaluate(&g).unwrap();
        assert!(matches!(
            stacked_shortcut(&exec, &StackedConfig::default()),
            Err(AlgoError::NoFailingInstance)
        ));
    }

    #[test]
    fn falls_back_to_most_different_success() {
        let s = space3x3();
        let exec = Executor::new(two_cause_pipeline(&s), ExecutorConfig::default());
        let cp_f =
            Instance::from_pairs(&s, [("p1", 1.into()), ("p2", 1.into()), ("p3", 1.into())]);
        exec.evaluate(&cp_f).unwrap();
        // Only a non-disjoint success in history (shares p3=1) and no probing.
        let near = Instance::from_pairs(&s, [("p1", 3.into()), ("p2", 2.into()), ("p3", 1.into())]);
        exec.evaluate(&near).unwrap();
        let report = stacked_shortcut(
            &exec,
            &StackedConfig {
                k: 2,
                seek_new_good: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.goods_used, 1);
        assert!(report.cause.is_some());
    }

    #[test]
    fn sample_disjoint_respects_constraints() {
        let s = space3x3();
        let mut rng = StdRng::seed_from_u64(1);
        let cp_f =
            Instance::from_pairs(&s, [("p1", 1.into()), ("p2", 1.into()), ("p3", 1.into())]);
        let picked =
            vec![Instance::from_pairs(&s, [("p1", 2.into()), ("p2", 2.into()), ("p3", 2.into())])];
        for _ in 0..20 {
            let cand = sample_disjoint(&s, &cp_f, &picked, &mut rng).unwrap();
            assert!(cand.is_disjoint_from(&cp_f));
            assert!(cand.is_disjoint_from(&picked[0]), "3-value domains allow it");
        }
    }

    #[test]
    fn sample_disjoint_relaxes_on_small_domains() {
        // Binary domains: cannot avoid both cp_f and a picked good.
        let s = ParamSpace::builder().boolean("a").boolean("b").build();
        let cp_f = Instance::from_pairs(&s, [("a", false.into()), ("b", false.into())]);
        let picked = vec![Instance::from_pairs(&s, [("a", true.into()), ("b", true.into())])];
        let mut rng = StdRng::seed_from_u64(2);
        let cand = sample_disjoint(&s, &cp_f, &picked, &mut rng).unwrap();
        assert!(cand.is_disjoint_from(&cp_f), "cp_f avoidance is mandatory");
    }

    #[test]
    fn seeded_history_counts_are_tracked() {
        let s = space3x3();
        let mut prov = ProvenanceStore::new(s.clone());
        prov.record(
            Instance::from_pairs(&s, [("p1", 1.into()), ("p2", 1.into()), ("p3", 1.into())]),
            EvalResult::of(Outcome::Fail),
        );
        prov.record(
            Instance::from_pairs(&s, [("p1", 2.into()), ("p2", 2.into()), ("p3", 2.into())]),
            EvalResult::of(Outcome::Succeed),
        );
        let exec = Executor::with_provenance(
            two_cause_pipeline(&s),
            ExecutorConfig::default(),
            prov,
        );
        let report = stacked_shortcut(
            &exec,
            &StackedConfig {
                k: 1,
                seek_new_good: false,
                ..Default::default()
            },
        )
        .unwrap();
        // One shortcut over 3 parameters beyond the seeded pair.
        assert!(report.new_executions <= 3);
    }
}
