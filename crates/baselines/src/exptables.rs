//! Explanation Tables baseline (El Gebaly, Agrawal, Golab, Korn, Srivastava —
//! VLDB 2014), reimplemented as BugDoc's evaluation uses it (paper §5).
//!
//! Input: a relation whose rows are executed instances (categorical
//! attributes = parameters) with one binary outcome column (`fail`). Output:
//! an *explanation table* — an ordered list of patterns (conjunctions of
//! attribute-equality-value pairs, `*` elsewhere), each annotated with the
//! empirical outcome rate of the rows it matches. Patterns are chosen
//! greedily to maximize the information gain of a maximum-entropy estimate
//! of the outcome; candidates come from the sample-based *Flashlight*
//! strategy (LCA patterns of sampled row pairs).
//!
//! As the BugDoc paper observes (§5.1), "the answers provided by Explanation
//! Tables represent a prediction of the pipeline instance evaluation result
//! expressed as a real number, where 1.0 corresponds to a root cause": the
//! adapter below asserts as root causes the patterns whose fail rate is 1.0.
//! The resulting profile — high precision, low recall, no inequality or
//! negation support — is what Figures 2–4 and 7 report.

use bugdoc_core::{Conjunction, Instance, ParamId, ParamSpace, Predicate, ProvenanceStore, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration for the greedy pattern search.
#[derive(Debug, Clone)]
pub struct ExpTablesConfig {
    /// Number of patterns in the table (beyond the catch-all root pattern).
    pub max_patterns: usize,
    /// Sample size for Flashlight candidate generation.
    pub sample_size: usize,
    /// Stop early when the best candidate's gain drops below this.
    pub min_gain: f64,
    /// RNG seed for sampling.
    pub seed: u64,
}

impl Default for ExpTablesConfig {
    fn default() -> Self {
        ExpTablesConfig {
            max_patterns: 10,
            sample_size: 16,
            min_gain: 1e-6,
            seed: 0,
        }
    }
}

/// A pattern row of the explanation table: equality pairs plus the empirical
/// fail rate and support over the analyzed history.
#[derive(Debug, Clone)]
pub struct Pattern {
    /// The attribute-value pairs (wildcard on every other parameter).
    pub pairs: Vec<(ParamId, Value)>,
    /// Fraction of matching rows that fail.
    pub fail_rate: f64,
    /// Number of matching rows.
    pub support: usize,
}

impl Pattern {
    /// True if the instance matches (equality on every pair).
    pub fn matches(&self, instance: &Instance) -> bool {
        self.pairs.iter().all(|(p, v)| instance.get(*p) == v)
    }

    /// The pattern as a conjunction of equality predicates.
    pub fn to_conjunction(&self) -> Conjunction {
        Conjunction::new(
            self.pairs
                .iter()
                .map(|(p, v)| Predicate::eq(*p, v.clone()))
                .collect(),
        )
    }
}

/// The fitted explanation table.
#[derive(Debug, Clone)]
pub struct ExplanationTable {
    /// Patterns in greedy selection order (most informative first).
    pub patterns: Vec<Pattern>,
    /// Overall fail rate (the catch-all `*` pattern's rate).
    pub base_rate: f64,
}

impl ExplanationTable {
    /// Estimated fail probability of an instance: the rate of the most
    /// specific matching pattern (ties to the latest added), falling back to
    /// the base rate.
    pub fn estimate(&self, instance: &Instance) -> f64 {
        self.patterns
            .iter()
            .filter(|p| p.matches(instance))
            .max_by_key(|p| p.pairs.len())
            .map(|p| p.fail_rate)
            .unwrap_or(self.base_rate)
    }
}

/// Fits an explanation table on the history.
pub fn fit(prov: &ProvenanceStore, config: &ExpTablesConfig) -> ExplanationTable {
    let rows: Vec<(&Instance, f64)> = prov
        .runs()
        .iter()
        .map(|r| (&r.instance, if r.outcome().is_fail() { 1.0 } else { 0.0 }))
        .collect();
    let n = rows.len();
    if n == 0 {
        return ExplanationTable {
            patterns: Vec::new(),
            base_rate: 0.0,
        };
    }
    let base_rate = rows.iter().map(|(_, y)| *y).sum::<f64>() / n as f64;

    let mut rng = StdRng::seed_from_u64(config.seed);
    // Current per-row estimates (start at the base rate).
    let mut estimates = vec![base_rate; n];
    let mut patterns: Vec<Pattern> = Vec::new();

    for _ in 0..config.max_patterns {
        let candidates = flashlight_candidates(prov.space(), &rows, config.sample_size, &mut rng);
        let mut best: Option<(f64, Pattern)> = None;
        for pairs in candidates {
            let matched: Vec<usize> = (0..n)
                .filter(|&i| pairs.iter().all(|(p, v)| rows[i].0.get(*p) == v))
                .collect();
            if matched.is_empty() {
                continue;
            }
            let rate =
                matched.iter().map(|&i| rows[i].1).sum::<f64>() / matched.len() as f64;
            // Information gain: KL reduction over the matched rows when their
            // estimate moves to the pattern's rate.
            let gain: f64 = matched
                .iter()
                .map(|&i| kl(rows[i].1, estimates[i]) - kl(rows[i].1, rate))
                .sum();
            if best.as_ref().map(|(g, _)| gain > *g).unwrap_or(true) {
                best = Some((
                    gain,
                    Pattern {
                        pairs,
                        fail_rate: rate,
                        support: matched.len(),
                    },
                ));
            }
        }
        let Some((gain, pattern)) = best else { break };
        if gain < config.min_gain {
            break;
        }
        // Update estimates under decision-list semantics.
        for (i, (inst, _)) in rows.iter().enumerate() {
            if pattern.matches(inst) {
                estimates[i] = pattern.fail_rate;
            }
        }
        patterns.push(pattern);
    }

    ExplanationTable {
        patterns,
        base_rate,
    }
}

/// Asserted root causes: patterns that predict failure with certainty
/// (empirical rate 1.0) and nonzero support.
pub fn explain(prov: &ProvenanceStore, config: &ExpTablesConfig) -> Vec<Conjunction> {
    fit(prov, config)
        .patterns
        .iter()
        .filter(|p| p.fail_rate >= 1.0 - 1e-12 && p.support > 0 && !p.pairs.is_empty())
        .map(Pattern::to_conjunction)
        .collect()
}

/// Binary KL divergence contribution of a row with label `y` under estimate
/// `p` (clamped away from 0/1).
fn kl(y: f64, p: f64) -> f64 {
    let p = p.clamp(1e-9, 1.0 - 1e-9);
    let mut total = 0.0;
    if y > 0.0 {
        total += y * (y / p).ln();
    }
    if y < 1.0 {
        total += (1.0 - y) * ((1.0 - y) / (1.0 - p)).ln();
    }
    total
}

/// Flashlight candidate generation: LCA patterns of sampled row pairs plus
/// every single-attribute pattern of sampled rows.
fn flashlight_candidates(
    space: &ParamSpace,
    rows: &[(&Instance, f64)],
    sample_size: usize,
    rng: &mut StdRng,
) -> Vec<Vec<(ParamId, Value)>> {
    let mut idx: Vec<usize> = (0..rows.len()).collect();
    idx.shuffle(rng);
    idx.truncate(sample_size.max(2).min(rows.len()));

    let mut out: Vec<Vec<(ParamId, Value)>> = Vec::new();
    let mut push_unique = |pairs: Vec<(ParamId, Value)>| {
        if !pairs.is_empty() && !out.contains(&pairs) {
            out.push(pairs);
        }
    };

    // Single-attribute patterns from sampled rows.
    for &i in &idx {
        for p in space.ids() {
            push_unique(vec![(p, rows[i].0.get(p).clone())]);
        }
    }
    // LCA patterns of sampled pairs (shared attribute values).
    for (a, &i) in idx.iter().enumerate() {
        for &j in idx.iter().skip(a + 1) {
            let lca: Vec<(ParamId, Value)> = space
                .ids()
                .filter(|&p| rows[i].0.get(p) == rows[j].0.get(p))
                .map(|p| (p, rows[i].0.get(p).clone()))
                .collect();
            push_unique(lca);
        }
    }
    // Fully specified sampled rows (deepest patterns).
    for &i in &idx {
        let full: Vec<(ParamId, Value)> = space
            .ids()
            .map(|p| (p, rows[i].0.get(p).clone()))
            .collect();
        push_unique(full);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::{EvalResult, Outcome, ParamSpace};
    use std::sync::Arc;

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .ordinal("a", [1, 2, 3])
            .ordinal("b", [1, 2, 3])
            .categorical("c", ["x", "y"])
            .build()
    }

    fn full_history(s: &Arc<ParamSpace>, fail_if: impl Fn(&Instance) -> bool) -> ProvenanceStore {
        let mut prov = ProvenanceStore::new(s.clone());
        for inst in s.instances() {
            let outcome = Outcome::from_check(!fail_if(&inst));
            prov.record(inst, EvalResult::of(outcome));
        }
        prov
    }

    #[test]
    fn finds_pure_fail_pattern() {
        let s = space();
        let a = s.by_name("a").unwrap();
        let prov = full_history(&s, |i| i.get(a) == &Value::from(2));
        let causes = explain(&prov, &ExpTablesConfig::default());
        let target = Conjunction::new(vec![Predicate::eq(a, 2)]).canonicalize(&s);
        assert!(
            causes.iter().any(|c| c.canonicalize(&s) == target),
            "causes: {:?}",
            causes.iter().map(|c| c.display(&s).to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn asserted_patterns_are_pure_on_history() {
        let s = space();
        let a = s.by_name("a").unwrap();
        let b = s.by_name("b").unwrap();
        let prov = full_history(&s, |i| {
            i.get(a) == &Value::from(2) && i.get(b) == &Value::from(3)
        });
        let causes = explain(&prov, &ExpTablesConfig::default());
        // High precision: every asserted cause must have no succeeding
        // superset in the data.
        for c in &causes {
            assert!(!prov.succeeding_superset_exists(c), "{}", c.display(&s));
        }
    }

    #[test]
    fn estimate_uses_most_specific_pattern() {
        let s = space();
        let a = s.by_name("a").unwrap();
        let prov = full_history(&s, |i| i.get(a) == &Value::from(2));
        let table = fit(&prov, &ExpTablesConfig::default());
        // The table should at least calibrate a=2 rows toward 1.0 and others
        // toward 0.0.
        let failing = Instance::from_pairs(&s, [("a", 2.into()), ("b", 1.into()), ("c", "x".into())]);
        let passing = Instance::from_pairs(&s, [("a", 1.into()), ("b", 1.into()), ("c", "x".into())]);
        assert!(table.estimate(&failing) > 0.9);
        assert!(table.estimate(&passing) < 0.5);
    }

    #[test]
    fn clean_history_asserts_nothing() {
        let s = space();
        let prov = full_history(&s, |_| false);
        assert!(explain(&prov, &ExpTablesConfig::default()).is_empty());
        let table = fit(&prov, &ExpTablesConfig::default());
        assert_eq!(table.base_rate, 0.0);
    }

    #[test]
    fn empty_history_is_handled() {
        let s = space();
        let prov = ProvenanceStore::new(s.clone());
        let table = fit(&prov, &ExpTablesConfig::default());
        assert!(table.patterns.is_empty());
        assert!(explain(&prov, &ExpTablesConfig::default()).is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let s = space();
        let a = s.by_name("a").unwrap();
        let prov = full_history(&s, |i| i.get(a) == &Value::from(2));
        let c1 = explain(&prov, &ExpTablesConfig::default());
        let c2 = explain(&prov, &ExpTablesConfig::default());
        assert_eq!(c1.len(), c2.len());
    }

    #[test]
    fn kl_properties() {
        assert_eq!(kl(1.0, 1.0 - 1e-9), kl(1.0, 1.0 - 1e-9));
        assert!(kl(1.0, 0.1) > kl(1.0, 0.9));
        assert!(kl(0.0, 0.9) > kl(0.0, 0.1));
        assert!(kl(1.0, 0.5) > 0.0);
    }

    #[test]
    fn no_inequality_support_limits_recall() {
        // Ground truth a > 1: the table can only assert equality patterns, so
        // it needs one pattern per failing value — with a tight pattern
        // budget it misses some (the paper's low-recall profile).
        let s = space();
        let a = s.by_name("a").unwrap();
        let prov = full_history(&s, |i| i.get(a) > &Value::from(1));
        let causes = explain(
            &prov,
            &ExpTablesConfig {
                max_patterns: 1,
                ..Default::default()
            },
        );
        assert!(causes.len() <= 1);
    }
}
