//! # bugdoc-baselines
//!
//! From-scratch reimplementations of the state-of-the-art methods BugDoc is
//! evaluated against (paper §5):
//!
//! * [`dataxray`] — Data X-Ray (Wang et al., SIGMOD 2015): feature-hierarchy
//!   diagnosis over parameter-value features. High recall, low precision.
//! * [`exptables`] — Explanation Tables (El Gebaly et al., VLDB 2014):
//!   greedy information-gain pattern tables. High precision, low recall.
//! * [`smac`] — SMAC-style sequential model-based configuration (Hutter et
//!   al., LION 2011) with a random-forest surrogate and expected improvement,
//!   flipped to *seek failing instances*; an instance generator paired with
//!   the explainers above, exactly as the paper pairs them.
//! * [`random_search`] — the uniform generator the paper compares against
//!   and omits from its plots.

#![warn(missing_docs)]

pub mod dataxray;
pub mod exptables;
pub mod random_search;
pub mod smac;

pub use dataxray::DataXRayConfig;
pub use exptables::{ExpTablesConfig, ExplanationTable, Pattern};
pub use smac::{SmacConfig, SmacReport};
