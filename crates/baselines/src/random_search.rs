//! Uniform random search — the instance generator the paper "also ran ...
//! as an alternative" and found "always worse than those obtained using SMAC
//! or BugDoc" (§5). Included so the comparison can be regenerated.

use crate::smac::random_instance;
use bugdoc_engine::{ExecError, Executor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Executes up to `n_new` uniformly random, previously unseen instances.
/// Returns the number actually executed (the executor's budget or replay
/// gaps may stop it early).
pub fn generate(exec: &Executor, n_new: usize, seed: u64) -> usize {
    let space = exec.space();
    let mut rng = StdRng::seed_from_u64(seed);
    let start = exec.stats().new_executions;
    let mut stall = 0;
    while exec.stats().new_executions < start + n_new && stall < 200 {
        let inst = random_instance(&space, &mut rng);
        let known = exec.with_provenance_ref(|prov| prov.lookup(&inst).is_some());
        if known {
            stall += 1;
            continue;
        }
        match exec.evaluate(&inst) {
            Ok(_) => stall = 0,
            Err(ExecError::BudgetExhausted) => break,
            Err(ExecError::Unavailable) => stall += 1,
        }
    }
    exec.stats().new_executions - start
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::{EvalResult, Instance, Outcome, ParamSpace, Value};
    use bugdoc_engine::{ExecutorConfig, FnPipeline, Pipeline};
    use std::sync::Arc;

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .ordinal("a", [1, 2, 3, 4, 5])
            .ordinal("b", [1, 2, 3, 4, 5])
            .build()
    }

    #[test]
    fn generates_unseen_instances() {
        let s = space();
        let a = s.by_name("a").unwrap();
        let pipe: Arc<dyn Pipeline> = Arc::new(FnPipeline::new(s.clone(), move |i: &Instance| {
            EvalResult::of(Outcome::from_check(i.get(a) != &Value::from(5)))
        }));
        let exec = Executor::new(pipe, ExecutorConfig::default());
        let n = generate(&exec, 10, 1);
        assert_eq!(n, 10);
        assert_eq!(exec.provenance().len(), 10);
    }

    #[test]
    fn stops_when_space_is_exhausted() {
        let s = ParamSpace::builder().ordinal("a", [1, 2]).build();
        let pipe: Arc<dyn Pipeline> = Arc::new(FnPipeline::new(s.clone(), |_: &Instance| {
            EvalResult::of(Outcome::Succeed)
        }));
        let exec = Executor::new(pipe, ExecutorConfig::default());
        let n = generate(&exec, 10, 1);
        assert_eq!(n, 2, "only two instances exist");
    }

    #[test]
    fn respects_budget() {
        let s = space();
        let pipe: Arc<dyn Pipeline> = Arc::new(FnPipeline::new(s.clone(), |_: &Instance| {
            EvalResult::of(Outcome::Succeed)
        }));
        let exec = Executor::new(
            pipe,
            ExecutorConfig {
                workers: 1,
                budget: Some(3),
                ..Default::default()
            },
        );
        assert_eq!(generate(&exec, 10, 1), 3);
    }
}
