//! SMAC-style sequential model-based algorithm configuration (Hutter, Hoos,
//! Leyton-Brown — LION 2011), the instance-*generator* baseline of the
//! paper's evaluation (§5).
//!
//! SMAC models the response surface with a random forest and proposes the
//! next configuration by maximizing expected improvement (EI) over a
//! candidate pool of random configurations plus neighbours of the incumbent.
//! "Since SMAC looks for good instances ... we change its goal to look for
//! bad pipeline instances" (paper §5): the objective here is the failure
//! indicator (fail = 1), maximized.
//!
//! SMAC only *generates* instances — it "always outputs a complete pipeline
//! instance", never a root cause — so the harness pairs it with Data X-Ray
//! or Explanation Tables, exactly as the paper does.

use bugdoc_core::{Instance, ParamSpace, Value};
use bugdoc_dtree::{ForestConfig, RandomForest};
use bugdoc_engine::{ExecError, Executor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SMAC configuration.
#[derive(Debug, Clone)]
pub struct SmacConfig {
    /// Random configurations evaluated before the first model fit.
    pub init_random: usize,
    /// Random candidates scored per iteration.
    pub random_candidates: usize,
    /// One-parameter mutations of the incumbent scored per iteration.
    pub neighbour_candidates: usize,
    /// Exploration margin ξ in the EI criterion.
    pub xi: f64,
    /// Random-forest surrogate settings.
    pub forest: ForestConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SmacConfig {
    fn default() -> Self {
        SmacConfig {
            init_random: 5,
            random_candidates: 24,
            neighbour_candidates: 12,
            xi: 0.01,
            forest: ForestConfig {
                n_trees: 10,
                max_depth: Some(12),
                ..ForestConfig::default()
            },
            seed: 0,
        }
    }
}

/// Report of a SMAC generation run.
#[derive(Debug, Clone, Copy)]
pub struct SmacReport {
    /// New instances actually executed.
    pub new_executions: usize,
    /// Iterations performed (model refits).
    pub iterations: usize,
}

/// Runs the SMBO loop until `n_new` new instances have been executed (or the
/// executor's own budget/replay limits stop it earlier). The generated
/// instances land in the executor's provenance for the explainers to analyze.
pub fn generate(exec: &Executor, n_new: usize, config: &SmacConfig) -> SmacReport {
    let space = exec.space();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let start = exec.stats().new_executions;
    let target = start + n_new;
    let mut iterations = 0;

    // Initial random design.
    let mut stall = 0;
    while exec.stats().new_executions < target.min(start + config.init_random) && stall < 50 {
        let inst = random_instance(&space, &mut rng);
        match exec.evaluate(&inst) {
            Ok(_) => stall = 0,
            Err(ExecError::BudgetExhausted) => break,
            Err(ExecError::Unavailable) => stall += 1,
        }
    }

    // SMBO iterations.
    let mut stall = 0;
    while exec.stats().new_executions < target && stall < 50 {
        iterations += 1;
        let rows: Vec<(Instance, f64)> = exec.with_provenance_ref(|prov| {
            prov.runs()
                .iter()
                .map(|r| {
                    (
                        r.instance.clone(),
                        if r.outcome().is_fail() { 1.0 } else { 0.0 },
                    )
                })
                .collect()
        });
        if rows.is_empty() {
            // Nothing to model: fall back to random probing.
            let inst = random_instance(&space, &mut rng);
            match exec.evaluate(&inst) {
                Ok(_) => stall = 0,
                Err(ExecError::BudgetExhausted) => break,
                Err(ExecError::Unavailable) => stall += 1,
            }
            continue;
        }
        let forest = RandomForest::fit(
            &space,
            &rows,
            &ForestConfig {
                seed: config.seed ^ iterations as u64,
                ..config.forest.clone()
            },
        );
        let y_best = rows.iter().map(|(_, y)| *y).fold(f64::MIN, f64::max);
        let incumbent = rows
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|(i, _)| i.clone())
            .expect("rows non-empty");

        // Candidate pool: random + incumbent neighbours, unseen only.
        let mut candidates: Vec<Instance> = Vec::new();
        for _ in 0..config.random_candidates {
            candidates.push(random_instance(&space, &mut rng));
        }
        for _ in 0..config.neighbour_candidates {
            candidates.push(mutate_one(&space, &incumbent, &mut rng));
        }
        candidates.retain(|c| exec.with_provenance_ref(|prov| prov.lookup(c).is_none()));
        if candidates.is_empty() {
            let inst = random_instance(&space, &mut rng);
            match exec.evaluate(&inst) {
                Ok(_) => stall = 0,
                Err(ExecError::BudgetExhausted) => break,
                Err(ExecError::Unavailable) => stall += 1,
            }
            continue;
        }

        // Rank by EI and execute the best.
        candidates.sort_by(|a, b| {
            let ea = expected_improvement(&forest.predict(a).mean, forest.predict(a).variance, y_best, config.xi);
            let eb = expected_improvement(&forest.predict(b).mean, forest.predict(b).variance, y_best, config.xi);
            eb.partial_cmp(&ea).unwrap_or(std::cmp::Ordering::Equal)
        });
        match exec.evaluate(&candidates[0]) {
            Ok(_) => stall = 0,
            Err(ExecError::BudgetExhausted) => break,
            Err(ExecError::Unavailable) => stall += 1,
        }
    }

    SmacReport {
        new_executions: exec.stats().new_executions - start,
        iterations,
    }
}

/// EI for maximization: `E[max(y - y_best - ξ, 0)]` under `N(μ, σ²)`.
fn expected_improvement(mean: &f64, variance: f64, y_best: f64, xi: f64) -> f64 {
    let sigma = variance.sqrt();
    let improvement = mean - y_best - xi;
    if sigma < 1e-12 {
        return improvement.max(0.0);
    }
    let z = improvement / sigma;
    improvement * normal_cdf(z) + sigma * normal_pdf(z)
}

fn normal_pdf(z: f64) -> f64 {
    (-(z * z) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Abramowitz–Stegun style erf approximation (max error ~1.5e-7), plenty for
/// an acquisition ranking.
fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

pub(crate) fn random_instance(space: &ParamSpace, rng: &mut StdRng) -> Instance {
    let values: Vec<Value> = space
        .ids()
        .map(|p| {
            let domain = space.domain(p);
            domain.value(rng.gen_range(0..domain.len())).clone()
        })
        .collect();
    Instance::new(values)
}

/// Mutates exactly one randomly chosen parameter to a different value (the
/// SMAC local-search neighbourhood).
fn mutate_one(space: &ParamSpace, base: &Instance, rng: &mut StdRng) -> Instance {
    let p = bugdoc_core::ParamId(rng.gen_range(0..space.len()) as u32);
    let domain = space.domain(p);
    if domain.len() < 2 {
        return base.clone();
    }
    loop {
        let v = domain.value(rng.gen_range(0..domain.len())).clone();
        if &v != base.get(p) {
            return base.with(p, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::{EvalResult, Outcome, ParamSpace};
    use bugdoc_engine::{ExecutorConfig, FnPipeline, Pipeline};
    use std::sync::Arc;

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .ordinal("a", [1, 2, 3, 4, 5])
            .ordinal("b", [1, 2, 3, 4, 5])
            .categorical("c", ["x", "y", "z"])
            .build()
    }

    fn exec_for(
        s: &Arc<ParamSpace>,
        fail_if: impl Fn(&Instance) -> bool + Send + Sync + 'static,
        budget: Option<usize>,
    ) -> Executor {
        let pipe: Arc<dyn Pipeline> = Arc::new(FnPipeline::new(s.clone(), move |i: &Instance| {
            EvalResult::of(Outcome::from_check(!fail_if(i)))
        }));
        Executor::new(pipe, ExecutorConfig { workers: 2, budget, ..Default::default() })
    }

    #[test]
    fn generates_requested_number_of_instances() {
        let s = space();
        let a = s.by_name("a").unwrap();
        let exec = exec_for(&s, move |i| i.get(a) == &Value::from(5), None);
        let report = generate(&exec, 20, &SmacConfig::default());
        assert_eq!(report.new_executions, 20);
        assert_eq!(exec.provenance().len(), 20);
    }

    #[test]
    fn seeks_failing_region() {
        let s = space();
        let a = s.by_name("a").unwrap();
        let b = s.by_name("b").unwrap();
        // Failure region is 1/25 of the space (a=5 ∧ b=5, any c).
        let exec = exec_for(
            &s,
            move |i| i.get(a) == &Value::from(5) && i.get(b) == &Value::from(5),
            None,
        );
        let report = generate(&exec, 40, &SmacConfig::default());
        let prov = exec.provenance();
        let fails = prov.failing().count();
        // Uniform sampling would find ~40/25 ≈ 1.6 failures in expectation;
        // guided search should find the region and concentrate there.
        assert!(
            fails >= 3,
            "SMAC found only {fails} failures in {} runs",
            report.new_executions
        );
    }

    #[test]
    fn respects_executor_budget() {
        let s = space();
        let a = s.by_name("a").unwrap();
        let exec = exec_for(&s, move |i| i.get(a) == &Value::from(5), Some(7));
        let report = generate(&exec, 50, &SmacConfig::default());
        assert_eq!(report.new_executions, 7);
    }

    #[test]
    fn deterministic_per_seed() {
        let s = space();
        let a = s.by_name("a").unwrap();
        let run = |seed| {
            let exec = exec_for(&s, move |i| i.get(a) == &Value::from(5), None);
            generate(&exec, 15, &SmacConfig { seed, ..Default::default() });
            exec.provenance()
                .runs()
                .iter()
                .map(|r| r.instance.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn ei_math_is_sane() {
        // Higher mean -> higher EI at equal variance.
        assert!(
            expected_improvement(&0.9, 0.04, 0.5, 0.0)
                > expected_improvement(&0.6, 0.04, 0.5, 0.0)
        );
        // Zero variance, no improvement -> zero EI.
        assert_eq!(expected_improvement(&0.4, 0.0, 0.5, 0.0), 0.0);
        // Positive variance keeps some exploration value even below best.
        assert!(expected_improvement(&0.4, 0.09, 0.5, 0.0) > 0.0);
        // CDF sanity.
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!(normal_cdf(3.0) > 0.99);
        assert!(normal_cdf(-3.0) < 0.01);
    }

    #[test]
    fn mutate_changes_exactly_one_param() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(11);
        let base = random_instance(&s, &mut rng);
        for _ in 0..20 {
            let m = mutate_one(&s, &base, &mut rng);
            assert_eq!(base.hamming_distance(&m), 1);
        }
    }
}
