//! Criterion timing of the three debugging algorithms as the parameter count
//! grows — the wall-clock companion to Figure 5's instance counts. Pipeline
//! executions are microsecond-scale simulators here, so these benches
//! measure the algorithms' own bookkeeping (tree builds, canonicalization,
//! verification sampling) rather than pipeline latency.

use bugdoc_algorithms::{
    debugging_decision_trees, stacked_shortcut, DdtConfig, DdtMode, StackedConfig,
};
use bugdoc_core::ProvenanceStore;
use bugdoc_engine::{Executor, ExecutorConfig, Pipeline};
use bugdoc_synth::{CauseScenario, SynthConfig, SyntheticPipeline};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn build_executor(pipe: &Arc<SyntheticPipeline>) -> Executor {
    let seeds = pipe.seed_history(2, 6, 7);
    let mut prov = ProvenanceStore::new(pipe.space().clone());
    for (inst, eval) in &seeds {
        prov.record(inst.clone(), *eval);
    }
    Executor::with_provenance(
        pipe.clone() as Arc<dyn Pipeline>,
        ExecutorConfig {
            workers: 4,
            budget: None,
            ..Default::default()
        },
        prov,
    )
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));

    for n_params in [4usize, 8, 12] {
        let pipe = Arc::new(SyntheticPipeline::generate(
            &SynthConfig {
                scenario: CauseScenario::SingleConjunction,
                n_params: (n_params, n_params),
                n_values: (5, 8),
                ..SynthConfig::default()
            },
            11,
        ));

        group.bench_with_input(
            BenchmarkId::new("stacked_shortcut", n_params),
            &n_params,
            |b, _| {
                b.iter(|| {
                    let exec = build_executor(&pipe);
                    stacked_shortcut(&exec, &StackedConfig::default())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ddt_find_one", n_params),
            &n_params,
            |b, _| {
                b.iter(|| {
                    let exec = build_executor(&pipe);
                    debugging_decision_trees(
                        &exec,
                        &DdtConfig {
                            mode: DdtMode::FindOne,
                            ..DdtConfig::default()
                        },
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ddt_find_all", n_params),
            &n_params,
            |b, _| {
                b.iter(|| {
                    let exec = build_executor(&pipe);
                    debugging_decision_trees(
                        &exec,
                        &DdtConfig {
                            mode: DdtMode::FindAll,
                            ..DdtConfig::default()
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
