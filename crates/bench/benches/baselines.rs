//! Criterion timing of the baseline methods on matched histories: Data X-Ray
//! diagnosis, Explanation Tables fitting, and one SMAC model-propose-execute
//! iteration.

use bugdoc_baselines::{dataxray, exptables, smac};
use bugdoc_core::ProvenanceStore;
use bugdoc_engine::{Executor, ExecutorConfig, Pipeline};
use bugdoc_synth::{CauseScenario, SynthConfig, SyntheticPipeline};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn history(n_runs: usize) -> (Arc<SyntheticPipeline>, ProvenanceStore) {
    let pipe = Arc::new(SyntheticPipeline::generate(
        &SynthConfig {
            scenario: CauseScenario::SingleConjunction,
            n_params: (8, 8),
            n_values: (5, 8),
            ..SynthConfig::default()
        },
        21,
    ));
    let seeds = pipe.seed_history(n_runs / 4, n_runs - n_runs / 4, 13);
    let mut prov = ProvenanceStore::new(pipe.space().clone());
    for (inst, eval) in &seeds {
        prov.record(inst.clone(), *eval);
    }
    (pipe, prov)
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));

    for n_runs in [40usize, 120] {
        let (pipe, prov) = history(n_runs);

        group.bench_with_input(
            BenchmarkId::new("dataxray_explain", n_runs),
            &n_runs,
            |b, _| b.iter(|| dataxray::explain(&prov, &Default::default())),
        );
        group.bench_with_input(
            BenchmarkId::new("exptables_fit", n_runs),
            &n_runs,
            |b, _| b.iter(|| exptables::fit(&prov, &Default::default())),
        );
        group.bench_with_input(
            BenchmarkId::new("smac_10_iterations", n_runs),
            &n_runs,
            |b, _| {
                b.iter_with_setup(
                    || {
                        Executor::with_provenance(
                            pipe.clone() as Arc<dyn Pipeline>,
                            ExecutorConfig {
                                workers: 1,
                                budget: None,
                                ..Default::default()
                            },
                            prov.clone(),
                        )
                    },
                    |exec| {
                        smac::generate(&exec, 10, &Default::default());
                        exec
                    },
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
