//! Criterion timing of the execution engine: single-evaluation dispatch,
//! cache-hit latency, and parallel batch dispatch overhead at different
//! worker counts (the real-thread cost behind the virtual-clock numbers of
//! Figure 6).

use bugdoc_core::{EvalResult, Instance, Outcome, ParamSpace, Value};
use bugdoc_engine::{Executor, ExecutorConfig, FnPipeline, Pipeline};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn space() -> Arc<ParamSpace> {
    ParamSpace::builder()
        .ordinal("a", (0..16).collect::<Vec<_>>())
        .ordinal("b", (0..16).collect::<Vec<_>>())
        .build()
}

fn pipeline(s: &Arc<ParamSpace>) -> Arc<dyn Pipeline> {
    let a = s.by_name("a").unwrap();
    Arc::new(FnPipeline::new(s.clone(), move |i: &Instance| {
        EvalResult::of(Outcome::from_check(i.get(a) != &Value::from(7)))
    }))
}

fn instances(s: &ParamSpace, n: usize) -> Vec<Instance> {
    (0..n)
        .map(|k| {
            Instance::from_pairs(
                s,
                [
                    ("a", Value::from((k % 16) as i64)),
                    ("b", Value::from(((k / 16) % 16) as i64)),
                ],
            )
        })
        .collect()
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));

    let s = space();

    group.bench_function("evaluate_cold", |b| {
        b.iter_with_setup(
            || Executor::new(pipeline(&s), ExecutorConfig::default()),
            |exec| {
                for i in instances(&s, 32) {
                    exec.evaluate(&i).unwrap();
                }
                exec
            },
        )
    });

    group.bench_function("evaluate_cache_hit", |b| {
        let exec = Executor::new(pipeline(&s), ExecutorConfig::default());
        let probe = instances(&s, 1).pop().unwrap();
        exec.evaluate(&probe).unwrap();
        b.iter(|| exec.evaluate(&probe).unwrap())
    });

    for workers in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("batch_dispatch_128", workers),
            &workers,
            |b, &workers| {
                let batch = instances(&s, 128);
                b.iter_with_setup(
                    || {
                        Executor::new(
                            pipeline(&s),
                            ExecutorConfig {
                                workers,
                                budget: None,
                                ..Default::default()
                            },
                        )
                    },
                    |exec| {
                        exec.evaluate_batch(&batch);
                        exec
                    },
                )
            },
        );
    }
    group.finish();
}

// The dense-encoding hot paths at realistic history sizes — provenance
// cache-hit lookup against a 10k-run store and `satisfied_by` filtering
// across 1k candidate conjunctions — are registered via the shared
// scenarios in `bugdoc_bench::perf`, the same code the headless `bench`
// binary measures into BENCH_engine.json, so the two can never drift.
criterion_group!(
    benches,
    bench_engine,
    bugdoc_bench::perf::bench_hot_paths,
    bugdoc_bench::perf::bench_bounded_cache,
    bugdoc_bench::perf::bench_persistence,
    bugdoc_bench::perf::bench_ddt_end_to_end
);
criterion_main!(benches);
