//! Criterion timing of the substrates: full decision-tree construction,
//! random-forest fit/predict, multi-valued Quine–McCluskey minimization,
//! and root-cause canonicalization.

use bugdoc_core::{Comparator, Conjunction, Dnf, Instance, ParamId, ParamSpace, Predicate};
use bugdoc_dtree::{DecisionTree, ForestConfig, RandomForest, TreeConfig};
use bugdoc_qm::minimize_dnf;
use bugdoc_synth::{CauseScenario, SynthConfig, SyntheticPipeline};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

fn training_rows(space: &Arc<ParamSpace>, n: usize, seed: u64) -> Vec<(Instance, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let values = space
                .ids()
                .map(|p| {
                    let d = space.domain(p);
                    d.value(rng.gen_range(0..d.len())).clone()
                })
                .collect();
            let inst = Instance::new(values);
            let y = if rng.gen_bool(0.3) { 1.0 } else { 0.0 };
            (inst, y)
        })
        .collect()
}

fn bench_trees(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/tree");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));

    for rows in [50usize, 200, 500] {
        let pipe = SyntheticPipeline::generate(
            &SynthConfig {
                scenario: CauseScenario::SingleConjunction,
                n_params: (10, 10),
                n_values: (6, 10),
                ..SynthConfig::default()
            },
            3,
        );
        let space = bugdoc_engine::Pipeline::space(&pipe).clone();
        let data = training_rows(&space, rows, 5);
        group.bench_with_input(BenchmarkId::new("full_fit", rows), &rows, |b, _| {
            b.iter(|| DecisionTree::fit(&space, &data, &TreeConfig::default()))
        });
        group.bench_with_input(BenchmarkId::new("forest_fit_10", rows), &rows, |b, _| {
            b.iter(|| RandomForest::fit(&space, &data, &ForestConfig::default()))
        });
    }
    group.finish();
}

fn bench_qm(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/qm");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));

    for n_conjuncts in [4usize, 8, 16] {
        let space = ParamSpace::builder()
            .ordinal("a", (0..10).collect::<Vec<_>>())
            .ordinal("b", (0..10).collect::<Vec<_>>())
            .categorical("c", (0..8).map(|v| format!("v{v}")).collect::<Vec<_>>())
            .ordinal("d", (0..10).collect::<Vec<_>>())
            .build();
        let mut rng = StdRng::seed_from_u64(9);
        let dnf = Dnf::new(
            (0..n_conjuncts)
                .map(|_| {
                    let mut preds = Vec::new();
                    for p in 0..space.len() {
                        if !rng.gen_bool(0.6) {
                            continue;
                        }
                        let p = ParamId(p as u32);
                        let d = space.domain(p);
                        let v = d.value(rng.gen_range(0..d.len())).clone();
                        let cmp = if d.is_ordinal() {
                            Comparator::ALL[rng.gen_range(0..4usize)]
                        } else {
                            Comparator::CATEGORICAL[rng.gen_range(0..2usize)]
                        };
                        preds.push(Predicate::new(p, cmp, v));
                    }
                    Conjunction::new(preds)
                })
                .collect(),
        );
        group.bench_with_input(
            BenchmarkId::new("minimize_dnf", n_conjuncts),
            &n_conjuncts,
            |b, _| b.iter(|| minimize_dnf(&space, &dnf)),
        );
        group.bench_with_input(
            BenchmarkId::new("canonicalize", n_conjuncts),
            &n_conjuncts,
            |b, _| {
                b.iter(|| {
                    dnf.conjuncts()
                        .iter()
                        .map(|c| c.canonicalize(&space))
                        .collect::<Vec<_>>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_trees, bench_qm);
criterion_main!(benches);
