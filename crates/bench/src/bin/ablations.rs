//! Ablation benches for the design choices called out in `DESIGN.md` §6:
//!
//! 1. Shortcut with a truly disjoint `CP_g` vs the most-different heuristic;
//! 2. Stacked Shortcut depth k ∈ {1, 2, 4, 8};
//! 3. DDT verification sample size and prototype strategy;
//! 4. Quine–McCluskey simplification on/off (explanation conciseness).
//!
//! Usage: `ablations [--pipelines N] [--seed S]`.

use bugdoc_algorithms::{
    debugging_decision_trees, shortcut, stacked_shortcut, DdtConfig, DdtMode, PrototypeStrategy,
    ShortcutConfig, StackedConfig,
};
use bugdoc_bench::BenchArgs;
use bugdoc_core::{Conjunction, ProvenanceStore};
use bugdoc_engine::{Executor, ExecutorConfig, Pipeline};
use bugdoc_eval::{find_one_metrics, score_assertions, PipelineScore, TextTable};
use bugdoc_synth::{CauseScenario, SynthConfig, SyntheticPipeline};
use std::sync::Arc;

fn main() {
    let args = BenchArgs::parse(15);
    ablate_disjointness(&args);
    ablate_stack_depth(&args);
    ablate_ddt(&args);
    ablate_qm(&args);
    ablate_speculation(&args);
}

fn pipelines(args: &BenchArgs, scenario: CauseScenario) -> Vec<Arc<SyntheticPipeline>> {
    (0..args.pipelines)
        .map(|k| {
            let seed = args.seed.wrapping_add(k as u64).wrapping_mul(0x9e3779b9);
            Arc::new(SyntheticPipeline::generate(
                &SynthConfig {
                    scenario,
                    n_params: (4, 8),
                    n_values: (5, 10),
                    ..SynthConfig::default()
                },
                seed,
            ))
        })
        .collect()
}

fn executor_for(pipe: &Arc<SyntheticPipeline>, seed: u64) -> Executor {
    let seeds = pipe.seed_history(2, 6, seed);
    let mut prov = ProvenanceStore::new(pipe.space().clone());
    for (inst, eval) in &seeds {
        prov.record(inst.clone(), *eval);
    }
    Executor::with_provenance(
        pipe.clone() as Arc<dyn Pipeline>,
        ExecutorConfig {
            workers: 5,
            budget: None,
            ..Default::default()
        },
        prov,
    )
}

/// 1. Disjoint CP_g vs the most-different heuristic.
fn ablate_disjointness(args: &BenchArgs) {
    println!("== Ablation 1 | Shortcut: disjoint CP_g vs most-different heuristic ==");
    let pipes = pipelines(args, CauseScenario::SingleTriple);
    let mut table = TextTable::new(&["CP_g selection", "precision", "recall", "F-measure"]);
    for (label, strictly_disjoint) in [("disjoint (when available)", true), ("most-different", false)]
    {
        let mut scores: Vec<PipelineScore> = Vec::new();
        for (k, pipe) in pipes.iter().enumerate() {
            let exec = executor_for(pipe, args.seed ^ (k as u64) << 8);
            let Some(cp_f) = exec.with_provenance_ref(|p| p.first_failing().cloned()) else {
                continue;
            };
            let cp_g = exec.with_provenance_ref(|p| {
                if strictly_disjoint {
                    p.disjoint_successes(&cp_f)
                        .next()
                        .cloned()
                        .or_else(|| p.most_different_success(&cp_f).cloned())
                } else {
                    p.most_different_success(&cp_f).cloned()
                }
            });
            let causes: Vec<Conjunction> = cp_g
                .and_then(|g| shortcut(&exec, &cp_f, &g, &ShortcutConfig::default()).ok())
                .and_then(|r| r.cause)
                .into_iter()
                .collect();
            scores.push(score_assertions(pipe.space(), pipe.truth(), &causes));
        }
        let m = find_one_metrics(&scores);
        table.row(vec![
            label.to_string(),
            format!("{:.3}", m.precision),
            format!("{:.3}", m.recall),
            format!("{:.3}", m.f_measure),
        ]);
    }
    println!("{}", table.render());
}

/// 2. Stacked Shortcut depth k.
fn ablate_stack_depth(args: &BenchArgs) {
    println!("== Ablation 2 | Stacked Shortcut depth k (paper uses 4) ==");
    let pipes = pipelines(args, CauseScenario::SingleConjunction);
    let mut table = TextTable::new(&["k", "precision", "recall", "F-measure", "mean instances"]);
    for k in [1usize, 2, 4, 8] {
        let mut scores: Vec<PipelineScore> = Vec::new();
        let mut instances = 0usize;
        for (i, pipe) in pipes.iter().enumerate() {
            let exec = executor_for(pipe, args.seed ^ (i as u64) << 8);
            let causes: Vec<Conjunction> = stacked_shortcut(
                &exec,
                &StackedConfig {
                    k,
                    seed: args.seed,
                    ..StackedConfig::default()
                },
            )
            .ok()
            .and_then(|r| r.cause)
            .into_iter()
            .collect();
            instances += exec.stats().new_executions;
            scores.push(score_assertions(pipe.space(), pipe.truth(), &causes));
        }
        let m = find_one_metrics(&scores);
        table.row(vec![
            k.to_string(),
            format!("{:.3}", m.precision),
            format!("{:.3}", m.recall),
            format!("{:.3}", m.f_measure),
            format!("{:.1}", instances as f64 / pipes.len() as f64),
        ]);
    }
    println!("{}", table.render());
}

/// 3. DDT verification sample size × prototype strategy.
fn ablate_ddt(args: &BenchArgs) {
    println!("== Ablation 3 | DDT verification samples × prototype strategy ==");
    let pipes = pipelines(args, CauseScenario::SingleConjunction);
    let mut table = TextTable::new(&[
        "samples",
        "prototype",
        "precision",
        "recall",
        "F-measure",
        "mean instances",
    ]);
    for samples in [4usize, 8, 16] {
        for (proto_label, proto) in [
            ("random-satisfying", PrototypeStrategy::RandomSatisfying),
            ("fixed", PrototypeStrategy::FixedPrototype),
        ] {
            let mut scores: Vec<PipelineScore> = Vec::new();
            let mut instances = 0usize;
            for (i, pipe) in pipes.iter().enumerate() {
                let exec = executor_for(pipe, args.seed ^ (i as u64) << 8);
                let causes: Vec<Conjunction> = debugging_decision_trees(
                    &exec,
                    &DdtConfig {
                        mode: DdtMode::FindOne,
                        verification_samples: samples,
                        prototype: proto,
                        seed: args.seed,
                        ..DdtConfig::default()
                    },
                )
                .map(|r| r.causes.conjuncts().to_vec())
                .unwrap_or_default();
                instances += exec.stats().new_executions;
                scores.push(score_assertions(pipe.space(), pipe.truth(), &causes));
            }
            let m = find_one_metrics(&scores);
            table.row(vec![
                samples.to_string(),
                proto_label.to_string(),
                format!("{:.3}", m.precision),
                format!("{:.3}", m.recall),
                format!("{:.3}", m.f_measure),
                format!("{:.1}", instances as f64 / pipes.len() as f64),
            ]);
        }
    }
    println!("{}", table.render());
}

/// 4. QM simplification on/off: conjunct count of the final explanation.
fn ablate_qm(args: &BenchArgs) {
    println!("== Ablation 4 | Quine-McCluskey simplification of DDT FindAll output ==");
    let pipes = pipelines(args, CauseScenario::DisjunctionOfConjunctions);
    let mut table = TextTable::new(&["QM", "mean conjuncts", "precision", "recall"]);
    for (label, simplify) in [("on", true), ("off", false)] {
        let mut scores: Vec<PipelineScore> = Vec::new();
        let mut conjuncts = 0usize;
        let mut runs = 0usize;
        for (i, pipe) in pipes.iter().enumerate() {
            let exec = executor_for(pipe, args.seed ^ (i as u64) << 8);
            let causes: Vec<Conjunction> = debugging_decision_trees(
                &exec,
                &DdtConfig {
                    mode: DdtMode::FindAll,
                    simplify,
                    seed: args.seed,
                    ..DdtConfig::default()
                },
            )
            .map(|r| r.causes.conjuncts().to_vec())
            .unwrap_or_default();
            conjuncts += causes.len();
            runs += 1;
            scores.push(score_assertions(pipe.space(), pipe.truth(), &causes));
        }
        let m = bugdoc_eval::find_all_metrics(&scores);
        table.row(vec![
            label.to_string(),
            format!("{:.2}", conjuncts as f64 / runs.max(1) as f64),
            format!("{:.3}", m.precision),
            format!("{:.3}", m.recall),
        ]);
    }
    println!("{}", table.render());
}

/// 5. Speculative parallel Shortcut (paper §4.3): wall-clock vs wasted
/// executions at different worker counts, with 20-minute instances.
fn ablate_speculation(args: &BenchArgs) {
    use bugdoc_algorithms::shortcut_speculative;
    use bugdoc_engine::SimTime;

    println!("== Ablation 5 | Speculative Shortcut: wall-clock vs wasted executions ==");
    let mut table = TextTable::new(&[
        "workers",
        "mean instances",
        "mean virtual hours",
        "vs sequential time",
    ]);
    let pipes: Vec<Arc<SyntheticPipeline>> = (0..args.pipelines)
        .map(|k| {
            let seed = args.seed.wrapping_add(k as u64).wrapping_mul(0x51ed2701);
            Arc::new(SyntheticPipeline::generate(
                &SynthConfig {
                    scenario: CauseScenario::SingleConjunction,
                    n_params: (10, 10),
                    n_values: (4, 6),
                    instance_cost: SimTime::from_mins(20.0),
                    ..SynthConfig::default()
                },
                seed,
            ))
        })
        .collect();

    let mut base_time: Option<f64> = None;
    for workers in [1usize, 2, 5, 10] {
        let mut instances = 0usize;
        let mut hours = 0.0f64;
        let mut runs = 0usize;
        for (i, pipe) in pipes.iter().enumerate() {
            let seeds = pipe.seed_history(1, 4, args.seed ^ (i as u64) << 9);
            let mut prov = ProvenanceStore::new(pipe.space().clone());
            for (inst, eval) in &seeds {
                prov.record(inst.clone(), *eval);
            }
            let exec = Executor::with_provenance(
                pipe.clone() as Arc<dyn Pipeline>,
                ExecutorConfig {
                    workers,
                    budget: None,
                    ..Default::default()
                },
                prov,
            );
            let Some(cp_f) = exec.with_provenance_ref(|p| p.first_failing().cloned()) else {
                continue;
            };
            let Some(cp_g) = exec.with_provenance_ref(|p| {
                p.disjoint_successes(&cp_f)
                    .next()
                    .cloned()
                    .or_else(|| p.most_different_success(&cp_f).cloned())
            }) else {
                continue;
            };
            if shortcut_speculative(&exec, &cp_f, &cp_g, &ShortcutConfig::default()).is_ok() {
                let stats = exec.stats();
                instances += stats.new_executions;
                hours += stats.sim_time.secs() / 3600.0;
                runs += 1;
            }
        }
        let mean_hours = hours / runs.max(1) as f64;
        let base = *base_time.get_or_insert(mean_hours);
        table.row(vec![
            workers.to_string(),
            format!("{:.1}", instances as f64 / runs.max(1) as f64),
            format!("{mean_hours:.2}"),
            format!("{:.2}x", if mean_hours > 0.0 { base / mean_hours } else { 1.0 }),
        ]);
    }
    println!("{}", table.render());
}
