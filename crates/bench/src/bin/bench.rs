//! Headless perf-tracking runner: times the engine/algorithms hot paths and
//! writes `BENCH_engine.json` (median ns per op) so the performance
//! trajectory is recorded from PR to PR.
//!
//! ```text
//! cargo run --release -p bugdoc-bench --bin bench [-- --out PATH]
//! ```
//!
//! Scenarios (see `bugdoc_bench::perf`):
//! * `perf/evaluate_cold_32` — cold dispatch through a fresh executor
//! * `perf/cache_hit_10k` — provenance cache hit against a 10k-run history
//! * `perf/batch_dispatch_128/5` — 128-instance batch at 5 workers
//! * `perf/concurrent_cache_hits_5w` — per-op time under 5-thread contention
//! * `perf/satisfied_by_1k` — per-conjunction log filtering, 1k candidates
//! * `perf/ddt_find_one` — DDT end-to-end on a synthetic pipeline

use bugdoc_bench::perf;
use criterion::Criterion;

fn main() {
    let mut out = String::from("BENCH_engine.json");
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                i += 1;
                out = argv[i].clone();
            }
            other => {
                eprintln!("unknown argument {other:?} (usage: bench [--out PATH])");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut c = Criterion::default();
    perf::bench_hot_paths(&mut c);
    perf::bench_ddt_end_to_end(&mut c);

    let mut results = c.take_results();
    perf::normalize_contention_result(&mut results);
    // Per-conjunction figure: the satisfied_by scenario times all 1k at once.
    for r in &mut results {
        if r.id.ends_with("satisfied_by_1k") {
            r.median_ns /= 1_000.0;
            for s in &mut r.samples_ns {
                *s /= 1_000.0;
            }
        }
    }

    let json = criterion::results_json(&results);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("\nwrote {out}:\n{json}");
}
