//! Headless perf-tracking runner: times the engine/algorithms hot paths and
//! writes `BENCH_engine.json` (median ns per op) so the performance
//! trajectory is recorded from PR to PR.
//!
//! ```text
//! cargo run --release -p bugdoc-bench --bin bench \
//!     [-- --out PATH] [--baseline PATH] [--tolerance PCT]
//! ```
//!
//! With `--baseline`, every timing entry shared with the baseline JSON is
//! compared after the run; any median more than `PCT` percent slower
//! (default 25) fails the process with exit code 1 — the CI smoke gate.
//! Hit-rate entries (`*_rate_*`, where larger is better and the unit is a
//! percentage, not nanoseconds) are excluded from the comparison.
//!
//! Scenarios (see `bugdoc_bench::perf`):
//! * `perf/evaluate_cold_32` — cold dispatch through a fresh executor
//! * `perf/cache_hit_10k` — provenance cache hit against a 10k-run history
//! * `perf/cache_hit_budget_100|50|25` — cache hit sweep with the CLOCK
//!   cache budgeted at that percentage of the 10k working set, plus
//!   `perf/cache_hit_rate_pct_*` companion entries (percent, not ns)
//! * `perf/batch_dispatch_128/5` — 128-instance batch at 5 workers
//! * `perf/concurrent_cache_hits_5w` — per-op time under 5-thread contention
//! * `perf/satisfied_by_1k` — per-conjunction log filtering, 1k candidates
//! * `perf/satisfied_by_many_8x1k` — the same candidates through the batched
//!   `support_many` entry point, 8 per call (per-conjunction figure)
//! * `perf/bounds_query_1k` — the admissible `support_bounds` estimate for
//!   the same candidates (per-conjunction figure) — the bounds-before-exact
//!   gate every pruned query pays
//! * `perf/kernel_and_popcount_64k` — fused AND+popcount over 64k-bit words
//! * `perf/telemetry_record` — one wait-free histogram sample (the unit cost
//!   of an always-on instrumentation probe)
//! * `perf/wal_append` — durable provenance: one record appended to the WAL
//! * `perf/snapshot_write` — durable provenance: 10k-run snapshot image
//!   serialization (fsync/rename excluded as environment noise)
//! * `perf/replay_10k` — durable provenance: full 10k-frame crash recovery
//! * `perf/ddt_find_one` — DDT end-to-end on a synthetic pipeline
//! * `perf/ddt_find_one_pruned` — the same scenario with bound-guided
//!   pruning explicitly enabled

use bugdoc_bench::perf;
use criterion::{BenchResult, Criterion};

/// Extracts `(id, median_ns)` pairs from the JSON this binary writes. The
/// format is fixed (see `criterion::results_json`), so a line scan is
/// enough — no JSON dependency needed offline.
fn parse_medians(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(rest) = line.trim().strip_prefix('"') else {
            continue;
        };
        let Some((id, rest)) = rest.split_once('"') else {
            continue;
        };
        let Some(value) = rest
            .split("\"median_ns\":")
            .nth(1)
            .and_then(|v| v.trim().split([',', '}']).next())
            .and_then(|v| v.trim().parse::<f64>().ok())
        else {
            continue;
        };
        out.push((id.to_string(), value));
    }
    out
}

/// Compares fresh results against a baseline: entries whose median regressed
/// more than `tolerance_pct` percent. Rate entries are skipped (percent
/// scale, larger is better).
fn regressions(
    results: &[BenchResult],
    baseline: &[(String, f64)],
    tolerance_pct: f64,
) -> Vec<(String, f64, f64)> {
    let mut bad = Vec::new();
    for r in results {
        if r.id.contains("_rate_") {
            continue;
        }
        let Some((_, old)) = baseline.iter().find(|(id, _)| *id == r.id) else {
            continue;
        };
        if *old > 0.0 && r.median_ns > old * (1.0 + tolerance_pct / 100.0) {
            bad.push((r.id.clone(), *old, r.median_ns));
        }
    }
    bad
}

const USAGE: &str = "usage: bench [--out PATH] [--baseline PATH] [--tolerance PCT]";

fn main() {
    let mut out = String::from("BENCH_engine.json");
    let mut baseline: Option<String> = None;
    let mut tolerance_pct = 25.0f64;
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("{} needs a value ({USAGE})", argv[*i - 1]);
            std::process::exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => out = value(&mut i),
            "--baseline" => baseline = Some(value(&mut i)),
            "--tolerance" => {
                let v = value(&mut i);
                tolerance_pct = v.parse().unwrap_or_else(|_| {
                    eprintln!("--tolerance needs a number, got {v:?} ({USAGE})");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?} ({USAGE})");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut c = Criterion::default();
    perf::bench_hot_paths(&mut c);
    perf::bench_telemetry(&mut c);
    let hit_rates = perf::bench_bounded_cache(&mut c);
    perf::bench_persistence(&mut c);
    perf::bench_ddt_end_to_end(&mut c);

    let mut results = c.take_results();
    perf::normalize_contention_result(&mut results);
    // Per-conjunction figures: these scenarios time all 1k at once.
    for r in &mut results {
        if r.id.ends_with("satisfied_by_1k")
            || r.id.ends_with("satisfied_by_many_8x1k")
            || r.id.ends_with("bounds_query_1k")
        {
            r.median_ns /= 1_000.0;
            for s in &mut r.samples_ns {
                *s /= 1_000.0;
            }
        }
    }
    // Companion hit-rate entries: the value is a percentage, carried in the
    // median field so one JSON shape serves the whole file.
    for (id, pct) in hit_rates {
        results.push(BenchResult {
            id,
            median_ns: pct,
            samples_ns: vec![pct],
            iters_per_sample: 1,
        });
    }

    let json = criterion::results_json(&results);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("\nwrote {out}:\n{json}");

    if let Some(path) = baseline {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let bad = regressions(&results, &parse_medians(&text), tolerance_pct);
        if bad.is_empty() {
            println!("no regression beyond {tolerance_pct}% vs {path}");
        } else {
            for (id, old, new) in &bad {
                eprintln!(
                    "REGRESSION {id}: {old:.1} -> {new:.1} ns ({:+.0}%)",
                    (new / old - 1.0) * 100.0
                );
            }
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(id: &str, median_ns: f64) -> BenchResult {
        BenchResult {
            id: id.into(),
            median_ns,
            samples_ns: vec![median_ns],
            iters_per_sample: 1,
        }
    }

    #[test]
    fn parses_the_emitted_json_shape() {
        let json = criterion::results_json(&[result("perf/a", 12.5), result("perf/b", 3.0)]);
        assert_eq!(
            parse_medians(&json),
            vec![("perf/a".to_string(), 12.5), ("perf/b".to_string(), 3.0)]
        );
    }

    #[test]
    fn flags_only_real_regressions() {
        let baseline = vec![
            ("perf/a".to_string(), 10.0),
            ("perf/b".to_string(), 10.0),
            ("perf/cache_hit_rate_pct_25".to_string(), 99.0),
        ];
        let fresh = [
            result("perf/a", 12.0),                    // +20% — within 25%
            result("perf/b", 14.0),                    // +40% — regression
            result("perf/cache_hit_rate_pct_25", 1.0), // rate: excluded
            result("perf/new_entry", 999.0),           // not in baseline: skipped
        ];
        let bad = regressions(&fresh, &baseline, 25.0);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, "perf/b");
    }
}
