//! Reproduces the DBSherlock holdout-accuracy claim (paper §5.3): "we create
//! a 25% holdout to assess the accuracy of BugDoc's minimal root causes as a
//! classifier to predict when a pipeline instance will fail ... This method
//! is accurate 98% of the time."
//!
//! Usage: `dbsherlock_accuracy [--seed S]`.

use bugdoc_algorithms::{diagnose, BugDocConfig};
use bugdoc_bench::BenchArgs;
use bugdoc_engine::{Executor, ExecutorConfig, Pipeline};
use bugdoc_eval::{classify_holdout, TextTable};
use bugdoc_pipelines::{DbSherlockConfig, DbSherlockDataset};
use std::sync::Arc;

fn main() {
    let args = BenchArgs::parse(10);
    let dataset = DbSherlockDataset::generate(&DbSherlockConfig {
        seed: args.seed,
        ..DbSherlockConfig::default()
    });

    println!("== DBSherlock | holdout accuracy of asserted causes as a failure classifier ==");
    let mut table = TextTable::new(&[
        "anomaly class",
        "holdout size",
        "TP",
        "TN",
        "FP",
        "FN",
        "accuracy",
    ]);
    let mut total_correct = 0usize;
    let mut total = 0usize;
    for class in 0..dataset.n_classes().min(args.pipelines) {
        let problem = dataset.problem(class);
        let exec = Executor::with_provenance(
            Arc::new(problem.historical_pipeline()) as Arc<dyn Pipeline>,
            ExecutorConfig {
                workers: 5,
                budget: None,
                ..Default::default()
            },
            problem.initial_provenance(),
        );
        let causes = match diagnose(&exec, &BugDocConfig::default()) {
            Ok(d) => d.causes.conjuncts().to_vec(),
            Err(_) => Vec::new(),
        };
        let report = classify_holdout(&causes, &problem.holdout);
        total_correct += report.true_positives + report.true_negatives;
        total += report.total();
        table.row(vec![
            class.to_string(),
            report.total().to_string(),
            report.true_positives.to_string(),
            report.true_negatives.to_string(),
            report.false_positives.to_string(),
            report.false_negatives.to_string(),
            format!("{:.1}%", report.accuracy() * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Overall accuracy: {:.1}% (paper reports 98%)",
        100.0 * total_correct as f64 / total.max(1) as f64
    );
}
