//! Reproduces Figure 2 (paper §5.1): FindOne precision, recall, and
//! F-measure for the three root-cause scenarios — single triple (row 1),
//! single conjunction (row 2), disjunction of conjunctions (row 3) — with
//! each method granted the instance budget of the corresponding BugDoc
//! algorithm (groups: Shortcut / Stacked Shortcut / DDT).
//!
//! Usage: `fig2 [--pipelines N] [--seed S] [--full]`.

use bugdoc_bench::BenchArgs;
use bugdoc_eval::{
    run_scenario, BudgetGroup, ExperimentConfig, Goal, Method, TextTable,
};
use bugdoc_synth::{CauseScenario, SynthConfig};

fn main() {
    let args = BenchArgs::parse(12);
    let (n_params, n_values) = args.synth_ranges();
    for (label, scenario) in [
        ("single parameter-comparator-value (Figures 2a-2c)", CauseScenario::SingleTriple),
        ("single conjunction (Figures 2d-2f)", CauseScenario::SingleConjunction),
        (
            "disjunction of conjunctions (Figures 2g-2i)",
            CauseScenario::DisjunctionOfConjunctions,
        ),
    ] {
        let config = ExperimentConfig {
            n_pipelines: args.pipelines,
            seed: args.seed,
            synth: SynthConfig {
                scenario,
                n_params,
                n_values,
                ..SynthConfig::default()
            },
            ..ExperimentConfig::new(scenario, Goal::FindOne)
        };
        let results = run_scenario(&config);

        println!("== Figure 2 | FindOne | root cause: {label} ==");
        let mut table = TextTable::new(&[
            "budget group",
            "mean budget",
            "method",
            "precision",
            "recall",
            "F-measure",
        ]);
        for group in &results.groups {
            for &method in &Method::ALL {
                let m = group.metrics(method, Goal::FindOne);
                table.row(vec![
                    budget_label(group.group),
                    format!("{:.1}", group.mean_budget),
                    method.label().to_string(),
                    format!("{:.3}", m.precision),
                    format!("{:.3}", m.recall),
                    format!("{:.3}", m.f_measure),
                ]);
            }
        }
        println!("{}", table.render());
    }
}

fn budget_label(group: BudgetGroup) -> String {
    group.label().to_string()
}
