//! Reproduces Figure 3 (paper §5.1): FindAll precision, recall, and
//! F-measure when the root cause is a disjunction of conjunctions, with
//! budget-matched methods.
//!
//! Usage: `fig3 [--pipelines N] [--seed S] [--full]`.

use bugdoc_bench::BenchArgs;
use bugdoc_eval::{run_scenario, ExperimentConfig, Goal, Method, TextTable};
use bugdoc_synth::{CauseScenario, SynthConfig};

fn main() {
    let args = BenchArgs::parse(12);
    let (n_params, n_values) = args.synth_ranges();
    let scenario = CauseScenario::DisjunctionOfConjunctions;
    let config = ExperimentConfig {
        n_pipelines: args.pipelines,
        seed: args.seed,
        synth: SynthConfig {
            scenario,
            n_params,
            n_values,
            ..SynthConfig::default()
        },
        ..ExperimentConfig::new(scenario, Goal::FindAll)
    };
    let results = run_scenario(&config);

    println!("== Figure 3 | FindAll | root cause: disjunction of conjunctions ==");
    let mut table = TextTable::new(&[
        "budget group",
        "mean budget",
        "method",
        "precision",
        "recall",
        "F-measure",
    ]);
    for group in &results.groups {
        for &method in &Method::ALL {
            let m = group.metrics(method, Goal::FindAll);
            table.row(vec![
                group.group.label().to_string(),
                format!("{:.1}", group.mean_budget),
                method.label().to_string(),
                format!("{:.3}", m.precision),
                format!("{:.3}", m.recall),
                format!("{:.3}", m.f_measure),
            ]);
        }
    }
    println!("{}", table.render());
}
