//! Reproduces Figure 4 (paper §5.1): conciseness of explanations —
//! (a) average number of parameters per asserted root cause, and
//! (b) average log10 of asserted causes per actual definitive root cause —
//! for each method, on the disjunction scenario.
//!
//! Usage: `fig4 [--pipelines N] [--seed S] [--full]`.

use bugdoc_bench::BenchArgs;
use bugdoc_eval::{run_scenario, ExperimentConfig, Goal, TextTable};
use bugdoc_synth::{CauseScenario, SynthConfig};

fn main() {
    let args = BenchArgs::parse(12);
    let (n_params, n_values) = args.synth_ranges();
    let scenario = CauseScenario::DisjunctionOfConjunctions;
    let config = ExperimentConfig {
        n_pipelines: args.pipelines,
        seed: args.seed,
        synth: SynthConfig {
            scenario,
            n_params,
            n_values,
            ..SynthConfig::default()
        },
        ..ExperimentConfig::new(scenario, Goal::FindAll)
    };
    let results = run_scenario(&config);

    println!("== Figure 4 | Conciseness of explanations ==");
    let mut table = TextTable::new(&[
        "method",
        "params per asserted cause (4a)",
        "log10 asserted per actual (4b)",
    ]);
    for (method, c) in results.conciseness_table() {
        table.row(vec![
            method.label().to_string(),
            format!("{:.2}", c.params_per_cause),
            format!("{:.3}", c.log_asserted_per_actual),
        ]);
    }
    println!("{}", table.render());
}
