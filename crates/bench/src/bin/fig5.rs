//! Reproduces Figure 5 (paper §5.2): instances required by each algorithm as
//! a function of the number of pipeline parameters. Shortcut and Stacked
//! Shortcut grow linearly; DDT grows faster (worst-case exponential).
//!
//! Usage: `fig5 [--pipelines N] [--seed S]` (N = repeats per point).

use bugdoc_bench::BenchArgs;
use bugdoc_eval::{instances_vs_params, TextTable};

fn main() {
    let args = BenchArgs::parse(5);
    let param_counts: Vec<usize> = (3..=15).step_by(2).collect();
    let points = instances_vs_params(&param_counts, args.pipelines, args.seed);

    println!("== Figure 5 | Instances executed vs number of parameters ==");
    let mut table = TextTable::new(&["#params", "Shortcut", "Stacked Shortcut", "DDT"]);
    for p in &points {
        table.row(vec![
            p.n_params.to_string(),
            format!("{:.1}", p.shortcut),
            format!("{:.1}", p.stacked),
            format!("{:.1}", p.ddt),
        ]);
    }
    println!("{}", table.render());

    // Linear-fit slope sanity lines (the paper's claim: shortcut family is
    // linear in |P|).
    let slope = |f: fn(&bugdoc_eval::InstanceCount) -> f64| {
        let first = &points[0];
        let last = &points[points.len() - 1];
        (f(last) - f(first)) / (last.n_params - first.n_params) as f64
    };
    println!(
        "slopes (instances per extra parameter): shortcut {:.2}, stacked {:.2}, ddt {:.2}",
        slope(|p| p.shortcut),
        slope(|p| p.stacked),
        slope(|p| p.ddt)
    );
}
