//! Reproduces Figure 6 (paper §5.2): scalability of Debugging Decision Trees
//! (FindAll) as execution workers are added. The virtual clock measures the
//! makespan of the verification batches at a fixed 20-minute instance cost,
//! so the speedup reflects exactly what the paper's multi-core experiment
//! measured on slow real pipelines.
//!
//! Usage: `fig6 [--pipelines N] [--seed S]` (N = repeats per point).

use bugdoc_bench::BenchArgs;
use bugdoc_eval::{ddt_speedup, TextTable};

fn main() {
    let args = BenchArgs::parse(4);
    let worker_counts = [1, 2, 4, 8, 16];
    let points = ddt_speedup(&worker_counts, args.pipelines, args.seed);

    println!("== Figure 6 | DDT FindAll scalability vs worker count ==");
    let mut table = TextTable::new(&[
        "workers",
        "virtual hours",
        "instances",
        "instances/core",
        "speedup",
    ]);
    for p in &points {
        table.row(vec![
            p.workers.to_string(),
            format!("{:.1}", p.sim_time_secs / 3600.0),
            format!("{:.1}", p.instances),
            format!("{:.1}", p.instances_per_core),
            format!("{:.2}x", p.speedup),
        ]);
    }
    println!("{}", table.render());
}
