//! Reproduces Figure 7 (paper §5.3): precision and recall of BugDoc (Stacked
//! Shortcut + Debugging Decision Trees combined), Data X-Ray, and Explanation
//! Tables on the real-world pipelines — Data Polygamy (crash analysis), GAN
//! training (FID/mode collapse), and the DBSherlock anomaly classes
//! (historical replay).
//!
//! Usage: `fig7 [--seed S] [--pipelines N]` (N = DBSherlock classes scored).

use bugdoc_algorithms::{diagnose, BugDocConfig};
use bugdoc_baselines::{dataxray, exptables};
use bugdoc_bench::{real_world_comparison, BenchArgs, RealWorldScores};
use bugdoc_engine::{Executor, ExecutorConfig, Pipeline};
use bugdoc_eval::{find_all_metrics, score_assertions, PipelineScore, TextTable};
use bugdoc_pipelines::{DataPolygamyPipeline, DbSherlockConfig, DbSherlockDataset, GanPipeline};
use std::sync::Arc;

fn main() {
    let args = BenchArgs::parse(4);
    let mut all: Vec<RealWorldScores> = Vec::new();

    // Data Polygamy and GAN: executable simulators.
    let dp = Arc::new(DataPolygamyPipeline::new());
    let dp_truth = dp.truth().clone();
    all.push(real_world_comparison(
        "Data Polygamy",
        dp,
        &dp_truth,
        args.seed.wrapping_add(1),
    ));
    let gan = Arc::new(GanPipeline::new());
    let gan_truth = gan.truth().clone();
    all.push(real_world_comparison(
        "GAN Training",
        gan,
        &gan_truth,
        args.seed.wrapping_add(2),
    ));

    // DBSherlock: historical replay, one problem per anomaly class.
    let dataset = DbSherlockDataset::generate(&DbSherlockConfig {
        seed: args.seed,
        ..DbSherlockConfig::default()
    });
    for class in 0..args.pipelines.min(dataset.n_classes()) {
        all.push(dbsherlock_class(&dataset, class));
    }

    println!("== Figure 7 | Real-world pipelines ==");
    let mut table = TextTable::new(&[
        "pipeline",
        "method",
        "actual",
        "asserted",
        "correct",
        "BugDoc instances",
    ]);
    for s in &all {
        for (method, score) in [
            ("BugDoc", &s.bugdoc),
            ("DataXRay", &s.dataxray),
            ("ExpTables", &s.exptables),
        ] {
            table.row(vec![
                s.name.clone(),
                method.to_string(),
                score.n_actual.to_string(),
                score.n_asserted.to_string(),
                score.n_correct.to_string(),
                if method == "BugDoc" {
                    s.new_executions.to_string()
                } else {
                    "-".to_string()
                },
            ]);
        }
    }
    println!("{}", table.render());

    // Aggregate precision/recall across all real-world pipelines (the bar
    // heights of Figure 7).
    println!("Aggregate (FindAll formulas over all real-world pipelines):");
    let mut agg = TextTable::new(&["method", "precision", "recall", "F-measure"]);
    for (label, pick) in [
        ("BugDoc", 0usize),
        ("DataXRay", 1),
        ("ExpTables", 2),
    ] {
        let scores: Vec<PipelineScore> = all
            .iter()
            .map(|s| match pick {
                0 => s.bugdoc,
                1 => s.dataxray,
                _ => s.exptables,
            })
            .collect();
        let m = find_all_metrics(&scores);
        agg.row(vec![
            label.to_string(),
            format!("{:.3}", m.precision),
            format!("{:.3}", m.recall),
            format!("{:.3}", m.f_measure),
        ]);
    }
    println!("{}", agg.render());

    for s in &all {
        println!("{} — BugDoc causes:", s.name);
        for c in &s.bugdoc_causes {
            println!("  {c}");
        }
    }
}

/// Runs one DBSherlock anomaly-class problem: historical replay with the
/// 50% training provenance and the 25% budget pool.
fn dbsherlock_class(dataset: &DbSherlockDataset, class: usize) -> RealWorldScores {
    let problem = dataset.problem(class);
    let space = problem.space.clone();
    let exec = Executor::with_provenance(
        Arc::new(problem.historical_pipeline()) as Arc<dyn Pipeline>,
        ExecutorConfig {
            workers: 5,
            budget: None,
            ..Default::default()
        },
        problem.initial_provenance(),
    );
    let diag = diagnose(&exec, &BugDocConfig::default());
    let bugdoc_causes = match diag {
        Ok(d) => d.causes.conjuncts().to_vec(),
        Err(_) => Vec::new(),
    };
    let new_executions = exec.stats().new_executions;
    let prov = exec.provenance();
    let xray = dataxray::explain(&prov, &Default::default());
    let et = exptables::explain(&prov, &Default::default());
    RealWorldScores {
        name: format!("DBSherlock class {class}"),
        bugdoc: score_assertions(&space, &problem.truth, &bugdoc_causes),
        dataxray: score_assertions(&space, &problem.truth, &xray),
        exptables: score_assertions(&space, &problem.truth, &et),
        bugdoc_causes: bugdoc_causes
            .iter()
            .map(|c| c.display(&space).to_string())
            .collect(),
        new_executions,
    }
}
