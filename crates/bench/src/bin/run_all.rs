//! Runs every table/figure reproduction in sequence — the one-shot target
//! behind `EXPERIMENTS.md`. Each section is also available as its own
//! binary (`table1_2`, `fig2` … `dbsherlock_accuracy`, `ablations`).
//!
//! Usage: `run_all [--pipelines N] [--seed S] [--full]` — the flags are
//! forwarded to each reproduction via the environment-free `BenchArgs`
//! convention (they all parse the same argv).

use std::process::Command;

fn main() {
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    let exe = std::env::current_exe().expect("current exe");
    let bin_dir = exe.parent().expect("bin dir");

    for target in [
        "table1_2",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "dbsherlock_accuracy",
        "ablations",
    ] {
        println!("\n################ {target} ################\n");
        let status = Command::new(bin_dir.join(target))
            .args(&forwarded)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {target}: {e}"));
        if !status.success() {
            eprintln!("{target} exited with {status}");
            std::process::exit(1);
        }
    }
}
