//! Reproduces Tables 1 and 2 (paper §4.1, Example 1): the initial
//! classification-pipeline history, the Shortcut walk, and the asserted
//! minimal definitive root cause `Library Version = 2`.

use bugdoc_algorithms::{shortcut, ShortcutConfig};
use bugdoc_engine::{Executor, ExecutorConfig, Pipeline};
use bugdoc_pipelines::MlPipeline;
use std::sync::Arc;

fn main() {
    let pipeline = Arc::new(MlPipeline::new());
    let space = pipeline.space().clone();
    let table1 = pipeline.table1_history();

    println!("Table 1: An initial (given) set of classification pipeline instances");
    println!("{}", table1.to_tsv());

    let exec = Executor::with_provenance(
        pipeline.clone() as Arc<dyn Pipeline>,
        ExecutorConfig::default(),
        table1,
    );

    // Example 1's CP_f and CP_g: the only failing instance and its only
    // disjoint success.
    let cp_f = exec
        .with_provenance_ref(|p| p.first_failing().cloned())
        .expect("Table 1 contains a failing instance");
    let cp_g = exec
        .with_provenance_ref(|p| p.disjoint_successes(&cp_f).next().cloned())
        .expect("Table 1 contains a disjoint success");
    println!("CP_f = {}", cp_f.display(&space));
    println!("CP_g = {}\n", cp_g.display(&space));

    let report = shortcut(&exec, &cp_f, &cp_g, &ShortcutConfig::default())
        .expect("Shortcut runs on Example 1");

    println!(
        "Table 2: instances after Shortcut (new instances created: {})",
        report.new_executions
    );
    println!("{}", exec.provenance().to_tsv());

    match report.cause {
        Some(cause) => println!(
            "Asserted minimal definitive root cause: {}",
            cause.display(&space)
        ),
        None => println!("Shortcut refuted its assertion (unexpected for Example 1)"),
    }
}
