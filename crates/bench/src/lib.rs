//! # bugdoc-bench
//!
//! The benchmark harness: one binary per table/figure of the paper's
//! evaluation (run them with `cargo run --release -p bugdoc-bench --bin
//! <name>`), plus Criterion timing benches under `benches/`.
//!
//! | target | reproduces |
//! |---|---|
//! | `table1_2` | §4.1 Tables 1 and 2 (Shortcut on the Figure-1 pipeline) |
//! | `fig2` | §5.1 Figure 2 — FindOne metrics, three cause scenarios |
//! | `fig3` | §5.1 Figure 3 — FindAll metrics, disjunction scenario |
//! | `fig4` | §5.1 Figure 4 — conciseness of explanations |
//! | `fig5` | §5.2 Figure 5 — instances vs number of parameters |
//! | `fig6` | §5.2 Figure 6 — DDT speedup vs worker count |
//! | `fig7` | §5.3 Figure 7 — real-world pipelines |
//! | `dbsherlock_accuracy` | §5.3 — 98% holdout accuracy claim |
//! | `ablations` | DESIGN.md §6 — design-choice ablations |
//! | `run_all` | everything above, in sequence |

#![warn(missing_docs)]

pub mod perf;

use bugdoc_algorithms::{diagnose, BugDocConfig};
use bugdoc_baselines::{dataxray, exptables};
use bugdoc_core::{Conjunction, EvalResult, Outcome, ParamSpace, ProvenanceStore, Value};
use bugdoc_engine::{Executor, ExecutorConfig, Pipeline};
use bugdoc_eval::{score_assertions, PipelineScore};
use bugdoc_synth::Truth;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Tiny CLI parsing shared by the figure binaries: `--pipelines N`,
/// `--seed S`, `--full` (paper-scale parameter ranges).
#[derive(Debug, Clone, Copy)]
pub struct BenchArgs {
    /// Number of synthetic pipelines per scenario.
    pub pipelines: usize,
    /// Base seed.
    pub seed: u64,
    /// Use the paper's full parameter ranges (slower).
    pub full: bool,
}

impl BenchArgs {
    /// Parses `std::env::args`, with the given default pipeline count.
    pub fn parse(default_pipelines: usize) -> Self {
        let mut args = BenchArgs {
            pipelines: default_pipelines,
            seed: 0,
            full: false,
        };
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--pipelines" => {
                    i += 1;
                    args.pipelines = argv[i].parse().expect("--pipelines takes a number");
                }
                "--seed" => {
                    i += 1;
                    args.seed = argv[i].parse().expect("--seed takes a number");
                }
                "--full" => args.full = true,
                other => panic!("unknown argument {other:?}"),
            }
            i += 1;
        }
        args
    }

    /// Synthetic generator ranges: compact for quick runs, the paper's 3–15
    /// params × 5–30 values under `--full`.
    pub fn synth_ranges(&self) -> ((usize, usize), (usize, usize)) {
        if self.full {
            ((3, 15), (5, 30))
        } else {
            ((3, 8), (5, 12))
        }
    }
}

/// Seeds an executor history for a real-world pipeline: random probing until
/// the history holds `n_fail` failing and `n_succeed` succeeding instances
/// (ground-truth witnesses guarantee termination).
pub fn seeded_executor(
    pipeline: Arc<dyn Pipeline>,
    truth: &Truth,
    n_fail: usize,
    n_succeed: usize,
    workers: usize,
    seed: u64,
) -> Executor {
    let space = pipeline.space().clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut prov = ProvenanceStore::new(space.clone());
    let mut guard = 0;
    // Stratified across the planted causes so the history witnesses each
    // failure kind at least once — the realistic "we have seen several
    // distinct bad runs" starting point.
    let n_causes = truth.len().max(1);
    while prov.num_failing() < n_fail && guard < 500 {
        let cause_idx = guard % n_causes;
        guard += 1;
        if let Some(inst) = truth.sample_failing_cause(&space, cause_idx, &mut rng) {
            if prov.lookup(&inst).is_none() {
                let eval = pipeline.execute(&inst).expect("simulators always run");
                prov.record(inst, eval);
            }
        } else {
            break;
        }
    }
    let mut guard = 0;
    while prov.num_succeeding() < n_succeed && guard < 500 {
        guard += 1;
        if let Some(inst) = truth.sample_succeeding(&space, &mut rng) {
            if prov.lookup(&inst).is_none() {
                let eval = pipeline.execute(&inst).expect("simulators always run");
                prov.record(inst, eval);
            }
        } else {
            break;
        }
    }
    Executor::with_provenance(
        pipeline,
        ExecutorConfig {
            workers,
            budget: None,
            ..Default::default()
        },
        prov,
    )
}

/// Per-method scores for one real-world pipeline (Figure 7's comparison).
pub struct RealWorldScores {
    /// Pipeline display name.
    pub name: String,
    /// BugDoc (Stacked Shortcut + DDT combined).
    pub bugdoc: PipelineScore,
    /// Data X-Ray on BugDoc's instances.
    pub dataxray: PipelineScore,
    /// Explanation Tables on BugDoc's instances.
    pub exptables: PipelineScore,
    /// BugDoc's asserted causes (rendered), for the report.
    pub bugdoc_causes: Vec<String>,
    /// New instances BugDoc executed.
    pub new_executions: usize,
}

/// Runs the Figure-7 comparison on one executable pipeline: combined BugDoc,
/// then the explainers on BugDoc's provenance (the paper omits the SMAC
/// configurations for the real-world cases).
pub fn real_world_comparison(
    name: &str,
    pipeline: Arc<dyn Pipeline>,
    truth: &Truth,
    seed: u64,
) -> RealWorldScores {
    let space = pipeline.space().clone();
    let exec = seeded_executor(pipeline, truth, 3, 8, 5, seed);
    let diag = diagnose(&exec, &BugDocConfig::default()).expect("diagnosis runs");
    let bugdoc_causes: Vec<Conjunction> = diag.causes.conjuncts().to_vec();
    let prov = exec.provenance();
    let xray = dataxray::explain(&prov, &Default::default());
    let et = exptables::explain(&prov, &Default::default());
    RealWorldScores {
        name: name.to_string(),
        bugdoc: score_assertions(&space, truth, &bugdoc_causes),
        dataxray: score_assertions(&space, truth, &xray),
        exptables: score_assertions(&space, truth, &et),
        bugdoc_causes: bugdoc_causes
            .iter()
            .map(|c| c.display(&space).to_string())
            .collect(),
        new_executions: diag.new_executions,
    }
}

/// A uniformly random instance (used by ablation sweeps).
pub fn random_instance(space: &ParamSpace, rng: &mut StdRng) -> bugdoc_core::Instance {
    let values: Vec<Value> = space
        .ids()
        .map(|p| {
            let d = space.domain(p);
            d.value(rng.gen_range(0..d.len())).clone()
        })
        .collect();
    bugdoc_core::Instance::new(values)
}

/// Records `(instance, eval)` pairs into a fresh provenance store.
pub fn provenance_from(
    space: Arc<ParamSpace>,
    runs: impl IntoIterator<Item = (bugdoc_core::Instance, EvalResult)>,
) -> ProvenanceStore {
    let mut prov = ProvenanceStore::new(space);
    for (inst, eval) in runs {
        prov.record(inst, eval);
    }
    prov
}

/// Formats an outcome for table cells.
pub fn outcome_cell(outcome: Outcome) -> String {
    outcome.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_pipelines::MlPipeline;

    #[test]
    fn seeded_executor_has_both_outcomes() {
        let pipe = Arc::new(MlPipeline::new());
        let truth = pipe.truth().clone();
        let exec = seeded_executor(pipe, &truth, 2, 4, 2, 1);
        exec.with_provenance_ref(|p| {
            assert!(p.failing().count() >= 2);
            assert!(p.succeeding().count() >= 4);
        });
    }

    #[test]
    fn real_world_comparison_on_mlpipe() {
        let pipe = Arc::new(MlPipeline::new());
        let truth = pipe.truth().clone();
        let scores = real_world_comparison("ml", pipe, &truth, 3);
        // BugDoc should find at least one of the two causes on this small
        // pipeline, usually both.
        assert!(scores.bugdoc.n_correct >= 1, "causes: {:?}", scores.bugdoc_causes);
        assert!(scores.new_executions > 0);
    }
}
