//! Hot-path performance scenarios, shared by the Criterion benches and the
//! headless `bench` binary (which emits `BENCH_engine.json`).
//!
//! The scenarios track the in-memory costs BugDoc's cost model treats as
//! free — provenance cache probes, batch dispatch, predicate filtering over
//! the run log — so regressions on the diagnosis hot path are visible from
//! one PR to the next.

use bugdoc_algorithms::{debugging_decision_trees, DdtConfig};
use bugdoc_core::{
    Comparator, Conjunction, EvalResult, Instance, Outcome, ParamSpace, Predicate, ProvenanceStore,
    Value,
};
use bugdoc_engine::{Executor, ExecutorConfig, FnPipeline, MemoryBudget, Pipeline};
use bugdoc_synth::{CauseScenario, SynthConfig, SyntheticPipeline};
use criterion::Criterion;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// The perf space: 50 × 50 × 4 = 10 000 configurations, mixing ordinal and
/// categorical parameters so value hashing costs are realistic.
pub fn perf_space() -> Arc<ParamSpace> {
    ParamSpace::builder()
        .ordinal("a", (0..50).collect::<Vec<_>>())
        .ordinal("b", (0..50).collect::<Vec<_>>())
        .categorical("mode", ["baseline", "fast", "exact", "fused"])
        .build()
}

/// A pipeline over [`perf_space`] failing on a small corner of the space.
pub fn perf_pipeline(space: &Arc<ParamSpace>) -> Arc<dyn Pipeline> {
    let a = space.by_name("a").unwrap();
    Arc::new(FnPipeline::new(space.clone(), move |i: &Instance| {
        EvalResult::of(Outcome::from_check(i.get(a) != &Value::from(7)))
    }))
}

/// Every instance of the perf space, in enumeration order (10 000 of them).
pub fn perf_instances(space: &ParamSpace) -> Vec<Instance> {
    space.instances().collect()
}

/// A provenance store holding all 10 000 runs of the perf space.
pub fn provenance_10k(space: &Arc<ParamSpace>) -> ProvenanceStore {
    let a = space.by_name("a").unwrap();
    let mut prov = ProvenanceStore::new(space.clone());
    for inst in space.instances() {
        let outcome = Outcome::from_check(inst.get(a) != &Value::from(7));
        prov.record(inst, EvalResult::of(outcome));
    }
    prov
}

/// `n` random conjunctions of 1–3 predicates over a space — the candidate
/// causes a DDT/dedup pass filters the log with.
pub fn random_conjunctions(space: &ParamSpace, n: usize, seed: u64) -> Vec<Conjunction> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let n_preds = rng.gen_range(1..=3usize);
            let preds = (0..n_preds)
                .map(|_| {
                    let p = bugdoc_core::ParamId(rng.gen_range(0..space.len()) as u32);
                    let d = space.domain(p);
                    let v = d.value(rng.gen_range(0..d.len())).clone();
                    let cmp = if d.is_ordinal() {
                        Comparator::ALL[rng.gen_range(0..4usize)]
                    } else {
                        Comparator::CATEGORICAL[rng.gen_range(0..2usize)]
                    };
                    Predicate::new(p, cmp, v)
                })
                .collect();
            Conjunction::new(preds)
        })
        .collect()
}

/// Registers the engine/core hot-path benchmarks on `c`:
///
/// * `perf/evaluate_cold_32` — 32 fresh evaluations through a new executor;
/// * `perf/cache_hit_10k` — one cache-hit `evaluate` against a 10k-run history;
/// * `perf/batch_dispatch_128/5` — a 128-instance batch at the paper's 5 workers;
/// * `perf/concurrent_cache_hits_5w` — 5 threads × 200 cache-hit evaluations
///   (reported per evaluation), the lock-contention probe;
/// * `perf/satisfied_by_1k` — support counts for 1 000 candidate conjunctions
///   over the 10k-run log (reported per conjunction);
/// * `perf/satisfied_by_many_8x1k` — the same conjunctions through the
///   batched `support_many` entry point, 8 per call (per conjunction);
/// * `perf/bounds_query_1k` — the admissible `support_bounds` estimate for
///   the same 1 000 conjunctions (per conjunction); this is the cheap
///   bounds-before-exact gate, so its figure should sit well below
///   `satisfied_by_1k`;
/// * `perf/kernel_and_popcount_64k` — the raw fused AND+popcount kernel over
///   two 1 024-word operands.
pub fn bench_hot_paths(c: &mut Criterion) {
    let space = perf_space();

    let mut group = c.benchmark_group("perf");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));

    let cold_batch: Vec<Instance> = perf_instances(&space).into_iter().take(32).collect();
    group.bench_function("evaluate_cold_32", {
        let space = space.clone();
        let cold_batch = cold_batch.clone();
        move |b| {
            b.iter_with_setup(
                || Executor::new(perf_pipeline(&space), ExecutorConfig::default()),
                |exec| {
                    for i in &cold_batch {
                        exec.evaluate(i).unwrap();
                    }
                    exec
                },
            )
        }
    });

    // Store-level probe: the provenance map lookup itself, no executor around
    // it — the cost every cache probe in the diagnosis loop pays.
    let prov_lookup = provenance_10k(&space);
    group.bench_function("prov_lookup_10k", {
        let probes: Vec<Instance> = perf_instances(&space)
            .into_iter()
            .step_by(97)
            .take(64)
            .collect();
        let mut k = 0usize;
        move |b| {
            b.iter(|| {
                k = (k + 1) % probes.len();
                prov_lookup.lookup(&probes[k]).is_some()
            })
        }
    });

    group.bench_function("prov_insert_10k", {
        let space = space.clone();
        let instances = perf_instances(&space);
        move |b| {
            b.iter_with_setup(
                || (ProvenanceStore::new(space.clone()), instances.clone()),
                |(mut prov, instances)| {
                    for inst in instances {
                        prov.record(inst, EvalResult::of(Outcome::Succeed));
                    }
                    prov
                },
            )
        }
    });

    let exec_10k = Executor::with_provenance(
        perf_pipeline(&space),
        ExecutorConfig::default(),
        provenance_10k(&space),
    );
    let probes: Vec<Instance> = perf_instances(&space)
        .into_iter()
        .step_by(97)
        .take(64)
        .collect();
    group.bench_function("cache_hit_10k", {
        let probes = probes.clone();
        let mut k = 0usize;
        move |b| {
            b.iter(|| {
                k = (k + 1) % probes.len();
                exec_10k.evaluate(&probes[k]).unwrap()
            })
        }
    });

    let batch: Vec<Instance> = perf_instances(&space).into_iter().take(128).collect();
    group.bench_function("batch_dispatch_128/5", {
        let space = space.clone();
        move |b| {
            b.iter_with_setup(
                || {
                    Executor::new(
                        perf_pipeline(&space),
                        ExecutorConfig {
                            workers: 5,
                            budget: None,
                            ..Default::default()
                        },
                    )
                },
                |exec| {
                    exec.evaluate_batch(&batch);
                    exec
                },
            )
        }
    });

    // Contention probe: 5 worker threads each issue 200 cache-hit
    // evaluations against the shared executor; the reported time is per
    // evaluation (wall time / 1000), so serialization across workers shows
    // up directly.
    const CONTENTION_THREADS: usize = 5;
    const CONTENTION_OPS: usize = 200;
    group.bench_function("concurrent_cache_hits_5w", {
        let exec = Executor::with_provenance(
            perf_pipeline(&space),
            ExecutorConfig::default(),
            provenance_10k(&space),
        );
        let probes = probes.clone();
        move |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..CONTENTION_THREADS {
                        let exec = &exec;
                        let probes = &probes;
                        s.spawn(move || {
                            for k in 0..CONTENTION_OPS {
                                let probe = &probes[(t * 31 + k) % probes.len()];
                                exec.evaluate(probe).unwrap();
                            }
                        });
                    }
                });
            })
        }
    });

    let prov = provenance_10k(&space);
    let conjunctions = random_conjunctions(&space, 1_000, 17);
    let prov_many = prov.clone();
    let batches: Vec<Vec<Conjunction>> = conjunctions.chunks(8).map(<[_]>::to_vec).collect();
    group.bench_function("satisfied_by_1k", move |b| {
        b.iter(|| {
            let mut acc = (0usize, 0usize);
            for c in &conjunctions {
                let (f, s) = prov.support(c);
                acc.0 += f;
                acc.1 += s;
            }
            acc
        })
    });

    // The same 1k conjunctions through the batched entry point, 8 per
    // `support_many` call — the shape a DDT split evaluation presents
    // (reported per conjunction, like satisfied_by_1k). The win over the
    // one-at-a-time figure is the amortized per-epoch block walk.
    group.bench_function("satisfied_by_many_8x1k", move |b| {
        b.iter(|| {
            let mut acc = (0usize, 0usize);
            for batch in &batches {
                for (f, s) in prov_many.support_many(batch) {
                    acc.0 += f;
                    acc.1 += s;
                }
            }
            acc
        })
    });

    // The admissible bounds estimate for the same 1k conjunctions — the
    // integer-arithmetic gate every exact query now sits behind (reported
    // per conjunction, like satisfied_by_1k).
    let prov_bounds = provenance_10k(&space);
    let bound_conjunctions = random_conjunctions(&space, 1_000, 17);
    group.bench_function("bounds_query_1k", move |b| {
        b.iter(|| {
            let mut acc = (0usize, 0usize);
            for c in &bound_conjunctions {
                let bounds = prov_bounds.support_bounds(c);
                acc.0 += bounds.fail_hi;
                acc.1 += bounds.succeed_hi;
            }
            acc
        })
    });

    // Raw kernel probe: fused AND+popcount over two 1 024-word (64k-bit)
    // operands — the widest single primitive the epoch scans and outcome
    // counts lean on, measured without any index structure around it.
    let ka: Vec<u64> = (0..1024u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    let kb: Vec<u64> = (0..1024u64)
        .map(|i| (i ^ 0x5bf0_3635).wrapping_mul(0xc2b2_ae3d_27d4_eb4f))
        .collect();
    group.bench_function("kernel_and_popcount_64k", move |b| {
        b.iter(|| bugdoc_core::kernels::and_popcount(&ka, &kb))
    });
    group.finish();
}

/// Registers the memory-bounded cache scenarios on `c` and returns the
/// measured hit rates:
///
/// * `perf/cache_hit_budget_100|50|25` — one `evaluate` against the 10k-run
///   history while sweeping the whole working set, with the CLOCK cache
///   budgeted at 100%/50%/25% of it (ns/op; misses re-derive from the
///   provenance log, so the delta over `cache_hit_10k` is the price of
///   eviction, not of re-execution);
/// * the returned `(id, percent)` pairs are the shard-cache hit rates of
///   each scenario (`perf/cache_hit_rate_pct_*`), for the headless runner to
///   emit alongside the timings.
pub fn bench_bounded_cache(c: &mut Criterion) -> Vec<(String, f64)> {
    let space = perf_space();
    let all = perf_instances(&space);
    // A skewed access schedule — 60% of probes from a 1 000-instance hot
    // set, 40% uniform over all 10 000 (footprint ≈ the full working set) —
    // the locality real diagnosis loops exhibit. (A pure cyclic sweep is
    // CLOCK's adversarial case: it evicts exactly what the sweep needs next
    // and measures nothing but misses; a footprint smaller than the budget
    // measures nothing but hits.)
    let schedule: Vec<usize> = {
        let mut rng = StdRng::seed_from_u64(23);
        (0..32_768)
            .map(|_| {
                if rng.gen_range(0..100) < 60 {
                    rng.gen_range(0..1_000usize) * 7 % all.len() // hot set
                } else {
                    rng.gen_range(0..all.len())
                }
            })
            .collect()
    };
    let mut rates = Vec::new();
    let mut group = c.benchmark_group("perf");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(200));
    for (pct, budget) in [(100usize, 10_000usize), (50, 5_000), (25, 2_500)] {
        let exec = Executor::with_provenance(
            perf_pipeline(&space),
            ExecutorConfig {
                workers: 5,
                budget: None,
                memory: MemoryBudget::Entries(budget),
                ..Default::default()
            },
            provenance_10k(&space),
        );
        let mut k = 0usize;
        group.bench_function(format!("cache_hit_budget_{pct}"), |b| {
            b.iter(|| {
                k = (k + 1) % schedule.len();
                exec.evaluate(&all[schedule[k]]).unwrap()
            })
        });
        let stats = exec.stats();
        let total = stats.cache_hits.max(1);
        rates.push((
            format!("perf/cache_hit_rate_pct_{pct}"),
            100.0 * (total - stats.log_rederivations) as f64 / total as f64,
        ));
    }
    group.finish();
    rates
}

/// Registers the telemetry-overhead probe on `c`:
///
/// * `perf/telemetry_record` — one histogram sample through the wait-free
///   record path (log₂ bucketing plus three relaxed `fetch_add`s) — the
///   unit cost every always-on instrumentation site pays, so the figure
///   bounds what any probe can add to the paths it observes.
pub fn bench_telemetry(c: &mut Criterion) {
    let hist = bugdoc_telemetry::histogram(
        "bugdoc_bench_record_probe_ns",
        "Bench-only histogram exercising the record path",
    );
    let mut group = c.benchmark_group("perf");
    group
        .sample_size(15)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(200));
    // An LCG walk over the sample values so every bucket (and the branchless
    // bucket math) is exercised, not one cache-warm bucket word.
    let mut v = 1u64;
    group.bench_function("telemetry_record", move |b| {
        b.iter(|| {
            v = v
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            hist.record(v >> 16);
            v
        })
    });
    group.finish();
}

/// Registers the durable-provenance scenarios on `c`:
///
/// * `perf/wal_append` — one run record appended to the write-ahead log
///   (frame encode + CRC32 + buffered file write; the cost persistence adds
///   to each *new* execution — cache hits never touch it);
/// * `perf/snapshot_write` — serializing a 10k-run store into its snapshot
///   image (the CPU side of the `snapshot_every` amortized cost; the
///   fsync+rename tail that `DurableStore::snapshot` also performs is
///   excluded — fsync latency is environment noise, with transient 20×
///   stalls, and would make the regression gate meaningless);
/// * `perf/replay_10k` — full crash recovery of a 10k-frame WAL into a
///   fresh `ProvenanceStore` (the worst-case warm-start latency; snapshots
///   exist to keep the common case far below this).
pub fn bench_persistence(c: &mut Criterion) {
    use bugdoc_store::{DurableStore, PersistConfig};

    let space = perf_space();
    let root = std::env::temp_dir().join(format!("bugdoc-bench-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let mut group = c.benchmark_group("perf");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(200));

    // Append: one open log, cycling through realistic records. Appending a
    // record twice is fine at the WAL layer (dedup is the store's job), so
    // the log just grows and rolls segments as it would in a long run.
    {
        let prov = provenance_10k(&space);
        let runs = prov.runs();
        let config = PersistConfig::new(root.join("append"));
        let (_, mut durable, _) = DurableStore::open(&space, &config).expect("open WAL");
        let mut k = 0usize;
        group.bench_function("wal_append", |b| {
            b.iter(|| {
                k = (k + 1) % runs.len();
                durable.append(&runs[k], &space).expect("append")
            })
        });
    }

    // Snapshot: serialize the full 10k-run store each iteration. The
    // serialization layer is driven directly, skipping the fsync+rename
    // tail — see the function docs.
    {
        let prov = provenance_10k(&space);
        let digest = bugdoc_store::space_digest(&space);
        let pos = bugdoc_store::WalPosition { segment: 1, offset: 16 };
        group.bench_function("snapshot_write", |b| {
            b.iter(|| bugdoc_store::snapshot::snapshot_bytes(digest, &prov, pos))
        });
    }

    // Replay: recover a 10k-frame, snapshot-free log from scratch.
    {
        let config = PersistConfig::new(root.join("replay"));
        let prov = provenance_10k(&space);
        let (_, mut durable, _) = DurableStore::open(&space, &config).expect("open WAL");
        for run in prov.runs() {
            durable.append(run, &space).expect("append");
        }
        drop(durable);
        group.bench_function("replay_10k", |b| {
            b.iter(|| {
                let (store, _, recovery) = DurableStore::open(&space, &config).expect("recover");
                assert_eq!(recovery.runs, 10_000);
                store
            })
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&root);
}

/// Registers the end-to-end DDT benchmarks on `c`:
///
/// * `perf/ddt_find_one` — the algorithm-level integral over all the hot
///   paths above, under the default executor config (bounds pruning on by
///   default since PR 7);
/// * `perf/ddt_find_one_pruned` — the same scenario with bounds pruning
///   *explicitly* enabled, so the pruned path stays pinned and comparable
///   even if the default ever flips.
pub fn bench_ddt_end_to_end(c: &mut Criterion) {
    let pipe = Arc::new(SyntheticPipeline::generate(
        &SynthConfig {
            scenario: CauseScenario::SingleConjunction,
            n_params: (6, 6),
            n_values: (5, 8),
            ..SynthConfig::default()
        },
        11,
    ));
    let mut group = c.benchmark_group("perf");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(200));
    let run_ddt = {
        let pipe = pipe.clone();
        move |bounds: bool| {
            let seeds = pipe.seed_history(2, 6, 7);
            let mut prov = ProvenanceStore::new(Pipeline::space(pipe.as_ref()).clone());
            for (inst, eval) in &seeds {
                prov.record(inst.clone(), *eval);
            }
            let exec = Executor::with_provenance(
                pipe.clone() as Arc<dyn Pipeline>,
                ExecutorConfig {
                    workers: 4,
                    budget: None,
                    bounds,
                    ..Default::default()
                },
                prov,
            );
            debugging_decision_trees(&exec, &DdtConfig::default())
        }
    };
    group.bench_function("ddt_find_one", {
        let run_ddt = run_ddt.clone();
        move |b| b.iter(|| run_ddt(ExecutorConfig::default().bounds))
    });
    group.bench_function("ddt_find_one_pruned", move |b| b.iter(|| run_ddt(true)));
    group.finish();
}

/// Divides the per-iteration time of `concurrent_cache_hits_5w` (which times
/// a whole 5×200-op round) down to a per-operation figure, in place.
pub fn normalize_contention_result(results: &mut [criterion::BenchResult]) {
    for r in results {
        if r.id.ends_with("concurrent_cache_hits_5w") {
            let ops = 1000.0;
            r.median_ns /= ops;
            for s in &mut r.samples_ns {
                *s /= ops;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_space_has_10k_configurations() {
        let s = perf_space();
        assert_eq!(s.total_configurations(), 10_000);
        assert_eq!(provenance_10k(&s).len(), 10_000);
    }

    #[test]
    fn random_conjunctions_are_well_formed() {
        let s = perf_space();
        let cs = random_conjunctions(&s, 50, 3);
        assert_eq!(cs.len(), 50);
        assert!(cs.iter().all(|c| (1..=3).contains(&c.len())));
    }
}
