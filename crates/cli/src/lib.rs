//! # bugdoc-cli
//!
//! The `bugdoc` command-line tool: point it at a *spec file* describing a
//! parameter space, a command to execute per configuration, and an
//! evaluation procedure, plus (optionally) a provenance TSV of runs you
//! already have — and it executes the instances BugDoc's algorithms need and
//! prints the minimal definitive root causes of failure.
//!
//! ```text
//! bugdoc diagnose --spec pipeline.spec [--provenance runs.tsv]
//!                 [--algorithm combined|stacked|ddt] [--mode one|all]
//!                 [--seed N] [--save-provenance out.tsv] [--metrics]
//! bugdoc explain  --spec pipeline.spec --provenance runs.tsv
//!                 [--method dataxray|exptables]     # analysis only, no runs
//! bugdoc serve    --socket PATH         # long-lived diagnosis daemon
//! bugdoc connect  --socket PATH --spec pipeline.spec
//!                 [--algorithm ...] [--mode ...] [--seed N] [--reserve N]
//!                 [--stats] [--metrics]
//! ```
//!
//! `serve` hosts concurrent diagnosis sessions over one shared executor per
//! spec (see the `bugdoc-serve` crate and `docs/SERVING.md`); `connect`
//! runs one diagnosis against a daemon — same report, shared executions.

#![warn(missing_docs)]

pub mod spec;

use bugdoc_algorithms::{diagnose, BugDocConfig, DdtMode, Strategy};
use bugdoc_baselines::{dataxray, exptables};
use bugdoc_core::ProvenanceStore;
use bugdoc_engine::{CommandPipeline, Executor, ExecutorConfig, Pipeline};
use spec::Spec;
use std::fmt::Write as _;
use std::sync::Arc;

/// Parsed command-line request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run the debugging algorithms (may execute new instances).
    Diagnose {
        /// Spec file path.
        spec: String,
        /// Optional provenance TSV path.
        provenance: Option<String>,
        /// Algorithm selection.
        strategy: Strategy,
        /// FindOne or FindAll.
        mode: DdtMode,
        /// RNG seed.
        seed: u64,
        /// Write the final provenance here.
        save_provenance: Option<String>,
        /// Append the process-wide telemetry exposition to the report.
        metrics: bool,
    },
    /// Run a baseline explainer on existing provenance (no executions).
    Explain {
        /// Spec file path.
        spec: String,
        /// Provenance TSV path.
        provenance: String,
        /// `dataxray` or `exptables`.
        method: String,
    },
    /// Run the diagnosis service daemon until `SIGTERM` (or a client's
    /// `SHUTDOWN`).
    Serve {
        /// Unix-domain-socket path to listen on.
        socket: String,
    },
    /// Run one diagnosis as a session against a `serve` daemon.
    Connect {
        /// Unix-domain-socket path of the daemon.
        socket: String,
        /// Spec file path (sent to the daemon verbatim).
        spec: String,
        /// Algorithm selection.
        strategy: Strategy,
        /// FindOne or FindAll.
        mode: DdtMode,
        /// RNG seed.
        seed: u64,
        /// Executions to reserve from the daemon's shared budget (0: none).
        reserve: usize,
        /// Print every `STATS` counter the daemon reports, not the summary.
        stats: bool,
        /// Append the daemon's `METRICS` exposition to the report.
        metrics: bool,
    },
    /// Print usage.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
bugdoc — find minimal definitive root causes of pipeline failures

USAGE:
  bugdoc diagnose --spec FILE [--provenance FILE] [--algorithm combined|stacked|ddt]
                  [--mode one|all] [--seed N] [--save-provenance FILE] [--metrics]
  bugdoc explain  --spec FILE --provenance FILE [--method dataxray|exptables]
  bugdoc serve    --socket PATH
  bugdoc connect  --socket PATH --spec FILE [--algorithm combined|stacked|ddt]
                  [--mode one|all] [--seed N] [--reserve N] [--stats] [--metrics]
  bugdoc help

--metrics appends the telemetry counters/histograms (Prometheus text): the
local process's for diagnose, the daemon's for connect. connect --stats
prints every session and shared counter the daemon's STATS command reports.

The spec file declares parameters, the command template, and the evaluation:
  param feed categorical internal acme datastream
  param window ordinal 3 6 12
  command ./run.sh --feed {feed} --window {window}
  eval stdout_le 0.15      # or: exit_code | stdout_ge <t>
  workers 5
  budget 200
  cache_entries 4096       # or: cache_bytes <n> — bound the result cache
  persist_dir .bugdoc      # durable provenance: killed runs warm-start here
  snapshot_every 512       # recovery snapshot cadence (with persist_dir)
  bounds off               # disable bound-guided pruning (default: on)
";

/// Parses argv (without the program name).
pub fn parse_args(args: &[String]) -> Result<Request, String> {
    let Some(cmd) = args.first() else {
        return Ok(Request::Help);
    };
    let mut spec = None;
    let mut provenance = None;
    let mut strategy = Strategy::Combined;
    let mut mode = DdtMode::FindAll;
    let mut seed = 0u64;
    let mut save_provenance = None;
    let mut method = "dataxray".to_string();
    let mut socket = None;
    let mut reserve = 0usize;
    let mut stats = false;
    let mut metrics = false;

    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--spec" => spec = Some(value(&mut i)?),
            "--provenance" => provenance = Some(value(&mut i)?),
            "--save-provenance" => save_provenance = Some(value(&mut i)?),
            "--seed" => {
                seed = value(&mut i)?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?
            }
            "--algorithm" => {
                strategy = match value(&mut i)?.as_str() {
                    "combined" => Strategy::Combined,
                    "stacked" => Strategy::StackedShortcutOnly,
                    "ddt" => Strategy::DdtOnly,
                    other => return Err(format!("unknown algorithm {other:?}")),
                }
            }
            "--mode" => {
                mode = match value(&mut i)?.as_str() {
                    "one" => DdtMode::FindOne,
                    "all" => DdtMode::FindAll,
                    other => return Err(format!("unknown mode {other:?}")),
                }
            }
            "--method" => method = value(&mut i)?,
            "--socket" => socket = Some(value(&mut i)?),
            "--reserve" => {
                reserve = value(&mut i)?
                    .parse()
                    .map_err(|_| "--reserve needs an integer".to_string())?
            }
            "--stats" => stats = true,
            "--metrics" => metrics = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }

    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Request::Help),
        "diagnose" => Ok(Request::Diagnose {
            spec: spec.ok_or("diagnose needs --spec")?,
            provenance,
            strategy,
            mode,
            seed,
            save_provenance,
            metrics,
        }),
        "explain" => Ok(Request::Explain {
            spec: spec.ok_or("explain needs --spec")?,
            provenance: provenance.ok_or("explain needs --provenance")?,
            method,
        }),
        "serve" => Ok(Request::Serve {
            socket: socket.ok_or("serve needs --socket")?,
        }),
        "connect" => Ok(Request::Connect {
            socket: socket.ok_or("connect needs --socket")?,
            spec: spec.ok_or("connect needs --spec")?,
            strategy,
            mode,
            seed,
            reserve,
            stats,
            metrics,
        }),
        other => Err(format!("unknown command {other:?} (try `bugdoc help`)")),
    }
}

/// Builds an executor from raw spec text — the factory `bugdoc serve`
/// injects into its session manager. It is the exact parse + build path the
/// one-shot `diagnose` command uses, which is one half of why a served
/// diagnosis is bit-identical to a one-shot run (the other half being
/// `BugDocConfig::front_end`). Specs with `persist_dir` give the daemon a
/// durable shared store: the first session warm-starts it, `SIGTERM`
/// snapshots and releases it.
pub fn executor_factory() -> Box<bugdoc_serve::ExecutorFactory> {
    Box::new(|text: &str| {
        let spec = spec::parse_spec(text).map_err(|e| e.to_string())?;
        let pipeline = CommandPipeline::new(
            spec.space.clone(),
            spec.command.clone(),
            spec.eval.clone(),
        );
        Executor::try_with_provenance(
            Arc::new(pipeline) as Arc<dyn Pipeline>,
            ExecutorConfig {
                workers: spec.workers,
                budget: spec.budget,
                memory: spec.memory,
                persist: spec.persist.clone(),
                bounds: spec.bounds,
            },
            ProvenanceStore::new(spec.space.clone()),
        )
        .map_err(|e| e.to_string())
    })
}

/// The daemon's shutdown flag, flipped by `SIGTERM`/`SIGINT`.
static TERM: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn note_term(_signum: i32) {
    // Only an atomic store: everything else (draining handlers, snapshotting
    // durable stores, releasing locks) happens on the daemon thread once it
    // observes the flag.
    TERM.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Routes `SIGTERM` and `SIGINT` to the daemon's shutdown flag and returns
/// the flag. Uses the raw libc `signal` entry point: the store above is
/// async-signal-safe, and the workspace builds offline without a signal
/// crate.
fn install_term_handler() -> &'static std::sync::atomic::AtomicBool {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, note_term as extern "C" fn(i32) as usize);
        signal(SIGINT, note_term as extern "C" fn(i32) as usize);
    }
    &TERM
}

fn load_spec(path: &str) -> Result<Spec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    spec::parse_spec(&text).map_err(|e| e.to_string())
}

fn load_provenance(spec: &Spec, path: Option<&str>) -> Result<ProvenanceStore, String> {
    match path {
        None => Ok(ProvenanceStore::new(spec.space.clone())),
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            ProvenanceStore::from_tsv(spec.space.clone(), &text).map_err(|e| e.to_string())
        }
    }
}

/// Executes a request, returning the report text to print.
pub fn run(request: Request) -> Result<String, String> {
    match request {
        Request::Help => Ok(USAGE.to_string()),
        Request::Diagnose {
            spec,
            provenance,
            strategy,
            mode,
            seed,
            save_provenance,
            metrics,
        } => {
            let spec = load_spec(&spec)?;
            let prov = load_provenance(&spec, provenance.as_deref())?;
            let pipeline = CommandPipeline::new(
                spec.space.clone(),
                spec.command.clone(),
                spec.eval.clone(),
            );
            // With `persist_dir` set this is the warm-start path: history
            // already in the directory is recovered and seeds the executor
            // (recovered runs are cache hits, exactly like --provenance
            // seeds), and every new execution is teed to the WAL.
            let exec = Executor::try_with_provenance(
                Arc::new(pipeline) as Arc<dyn Pipeline>,
                ExecutorConfig {
                    workers: spec.workers,
                    budget: spec.budget,
                    memory: spec.memory,
                    persist: spec.persist.clone(),
                    bounds: spec.bounds,
                },
                prov,
            )
            .map_err(|e| e.to_string())?;
            let config = BugDocConfig::front_end(strategy, mode, seed);
            let diagnosis = diagnose(&exec, &config).map_err(|e| e.to_string())?;

            let mut out = diagnosis.render_causes(&spec.space);
            let stats = exec.stats();
            let _ = writeln!(
                out,
                "instances executed: {} new, {} answered from provenance",
                stats.new_executions, stats.cache_hits
            );
            // Memory-bounded runs are observable without a debugger: report
            // what the CLOCK cache evicted and how often the provenance log
            // had to re-derive an answer.
            if spec.memory != bugdoc_engine::MemoryBudget::Unbounded
                || stats.evictions > 0
                || stats.log_rederivations > 0
            {
                let _ = writeln!(
                    out,
                    "result cache: {} evictions, {} log re-derivations",
                    stats.evictions, stats.log_rederivations
                );
            }
            // Bound-guided pruning is exact-preserving, so the only visible
            // trace of it working is this line: how much search the
            // admissible bounds decided without an exact scan.
            if stats.bounds_pruned_subtrees > 0
                || stats.bounds_short_circuits > 0
                || stats.bounds_fallthroughs > 0
            {
                let _ = writeln!(
                    out,
                    "bounds pruning: {} subtrees pruned, {} queries short-circuited, \
                     {} fell through to exact scans",
                    stats.bounds_pruned_subtrees,
                    stats.bounds_short_circuits,
                    stats.bounds_fallthroughs
                );
            }
            // Recovery exists only when the spec asked for persistence, so
            // destructuring both (rather than expecting) stays panic-free.
            if let (Some(recovery), Some(persist)) = (exec.recovery(), spec.persist.as_ref()) {
                let _ = writeln!(
                    out,
                    "durable provenance: {} runs warm-started from {} \
                     ({} from snapshot, {} replayed from the log{}), new runs appended",
                    recovery.runs,
                    persist.dir.display(),
                    recovery.snapshot_runs,
                    recovery.replayed_frames,
                    if recovery.truncated_bytes > 0 {
                        format!("; {} torn bytes discarded", recovery.truncated_bytes)
                    } else {
                        String::new()
                    },
                );
            }
            if let Some(path) = save_provenance {
                std::fs::write(&path, exec.provenance().to_tsv())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                let _ = writeln!(out, "provenance written to {path}");
            }
            if metrics {
                // Rendered after the diagnosis so the histograms carry this
                // run's store and re-derivation latencies.
                let _ = writeln!(out, "\n# telemetry (this process)");
                out.push_str(&bugdoc_telemetry::render());
                // Same scrape-time bridge the daemon uses: the executor's
                // counters live on ExecStats atomics, so a one-shot run
                // exposes them under the daemon's metric names too (here
                // there is exactly one executor to "sum" over).
                for (name, value) in stats.counter_fields() {
                    let _ = writeln!(
                        out,
                        "# HELP bugdoc_executor_{name}_total ExecStats::{name} for this run"
                    );
                    let _ = writeln!(out, "# TYPE bugdoc_executor_{name}_total counter");
                    let _ = writeln!(out, "bugdoc_executor_{name}_total {value}");
                }
            }
            Ok(out)
        }
        Request::Serve { socket } => {
            // A socket file left by a dead daemon would fail the bind; the
            // durable stores' own directory locks are what protect against
            // a *live* daemon on the same pipelines.
            let _ = std::fs::remove_file(&socket);
            let listener = std::os::unix::net::UnixListener::bind(&socket)
                .map_err(|e| format!("cannot bind {socket}: {e}"))?;
            let manager = Arc::new(bugdoc_serve::SessionManager::new(executor_factory()));
            let daemon = bugdoc_serve::Daemon::over(listener, manager);
            let summary = daemon.run(install_term_handler())?;
            let _ = std::fs::remove_file(&socket);
            Ok(format!(
                "bugdoc serve: {} connection(s) served, {} durable store(s) closed\n",
                summary.connections, summary.executors_closed
            ))
        }
        Request::Connect {
            socket,
            spec,
            strategy,
            mode,
            seed,
            reserve,
            stats,
            metrics,
        } => {
            let text = std::fs::read_to_string(&spec)
                .map_err(|e| format!("cannot read {spec}: {e}"))?;
            let mut client = bugdoc_serve::Client::connect(std::path::Path::new(&socket))?;
            let id = client.session_new()?;
            let ack = client.spec(&text, reserve)?;
            let report = client.diagnose(bugdoc_serve::DiagnoseParams {
                strategy,
                mode,
                seed,
            })?;
            let counters = client.stats()?;
            let exposition = if metrics {
                Some(client.metrics()?)
            } else {
                None
            };
            // One-shot connects don't linger: release the session (and any
            // reservation). The shared executor stays warm in the daemon.
            client.request("CLOSE")?;
            let field = |key: &str| {
                counters
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| *v)
                    .unwrap_or(0)
            };
            let mut out = report;
            let _ = writeln!(
                out,
                "instances executed: {} new, {} answered from provenance",
                field("session.new_executions"),
                field("session.cache_hits")
            );
            let _ = writeln!(
                out,
                "daemon session {id} ({ack}): shared executor holds {} runs",
                field("shared.provenance_runs")
            );
            if stats {
                let _ = writeln!(out, "\n# daemon stats");
                for (key, value) in &counters {
                    let _ = writeln!(out, "{key} {value}");
                }
            }
            if let Some(lines) = exposition {
                let _ = writeln!(out, "\n# daemon telemetry");
                for line in lines {
                    let _ = writeln!(out, "{line}");
                }
            }
            Ok(out)
        }
        Request::Explain {
            spec,
            provenance,
            method,
        } => {
            let spec = load_spec(&spec)?;
            let prov = load_provenance(&spec, Some(&provenance))?;
            let causes = match method.as_str() {
                "dataxray" => dataxray::explain(&prov, &Default::default()),
                "exptables" => exptables::explain(&prov, &Default::default()),
                other => return Err(format!("unknown method {other:?}")),
            };
            let mut out = String::new();
            let _ = writeln!(out, "{method} explanation(s) over {} runs:", prov.len());
            if causes.is_empty() {
                let _ = writeln!(out, "  (none)");
            }
            for cause in &causes {
                let _ = writeln!(out, "  {}", cause.display(&spec.space));
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_diagnose_defaults() {
        let req = parse_args(&s(&["diagnose", "--spec", "p.spec"])).unwrap();
        match req {
            Request::Diagnose {
                spec,
                strategy,
                mode,
                ..
            } => {
                assert_eq!(spec, "p.spec");
                assert_eq!(strategy, Strategy::Combined);
                assert_eq!(mode, DdtMode::FindAll);
            }
            _ => panic!("wrong request"),
        }
    }

    #[test]
    fn parse_all_flags() {
        let req = parse_args(&s(&[
            "diagnose",
            "--spec",
            "p.spec",
            "--provenance",
            "runs.tsv",
            "--algorithm",
            "ddt",
            "--mode",
            "one",
            "--seed",
            "7",
            "--save-provenance",
            "out.tsv",
        ]))
        .unwrap();
        match req {
            Request::Diagnose {
                provenance,
                strategy,
                mode,
                seed,
                save_provenance,
                ..
            } => {
                assert_eq!(provenance.as_deref(), Some("runs.tsv"));
                assert_eq!(strategy, Strategy::DdtOnly);
                assert_eq!(mode, DdtMode::FindOne);
                assert_eq!(seed, 7);
                assert_eq!(save_provenance.as_deref(), Some("out.tsv"));
            }
            _ => panic!("wrong request"),
        }
    }

    #[test]
    fn parse_observability_flags() {
        let req = parse_args(&s(&["diagnose", "--spec", "p.spec", "--metrics"])).unwrap();
        match req {
            Request::Diagnose { metrics, .. } => assert!(metrics),
            _ => panic!("wrong request"),
        }
        let req = parse_args(&s(&[
            "connect", "--socket", "s.sock", "--spec", "p.spec", "--stats", "--metrics",
        ]))
        .unwrap();
        match req {
            Request::Connect { stats, metrics, .. } => {
                assert!(stats);
                assert!(metrics);
            }
            _ => panic!("wrong request"),
        }
        // The flags are boolean: absent means off.
        let req = parse_args(&s(&["connect", "--socket", "s.sock", "--spec", "p.spec"])).unwrap();
        match req {
            Request::Connect { stats, metrics, .. } => {
                assert!(!stats);
                assert!(!metrics);
            }
            _ => panic!("wrong request"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&s(&["diagnose"])).is_err());
        assert!(parse_args(&s(&["explain", "--spec", "x"])).is_err());
        assert!(parse_args(&s(&["diagnose", "--spec", "x", "--algorithm", "magic"])).is_err());
        assert!(parse_args(&s(&["frobnicate"])).is_err());
        assert!(parse_args(&s(&["diagnose", "--spec"])).is_err());
    }

    #[test]
    fn help_paths() {
        assert!(matches!(parse_args(&[]).unwrap(), Request::Help));
        assert!(matches!(
            parse_args(&s(&["help"])).unwrap(),
            Request::Help
        ));
        assert!(run(Request::Help).unwrap().contains("USAGE"));
    }
}
