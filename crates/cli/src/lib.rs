//! # bugdoc-cli
//!
//! The `bugdoc` command-line tool: point it at a *spec file* describing a
//! parameter space, a command to execute per configuration, and an
//! evaluation procedure, plus (optionally) a provenance TSV of runs you
//! already have — and it executes the instances BugDoc's algorithms need and
//! prints the minimal definitive root causes of failure.
//!
//! ```text
//! bugdoc diagnose --spec pipeline.spec [--provenance runs.tsv]
//!                 [--algorithm combined|stacked|ddt] [--mode one|all]
//!                 [--seed N] [--save-provenance out.tsv]
//! bugdoc explain  --spec pipeline.spec --provenance runs.tsv
//!                 [--method dataxray|exptables]     # analysis only, no runs
//! ```

#![warn(missing_docs)]

pub mod spec;

use bugdoc_algorithms::{diagnose, BugDocConfig, DdtConfig, DdtMode, StackedConfig, Strategy};
use bugdoc_baselines::{dataxray, exptables};
use bugdoc_core::ProvenanceStore;
use bugdoc_engine::{CommandPipeline, Executor, ExecutorConfig, Pipeline};
use spec::Spec;
use std::fmt::Write as _;
use std::sync::Arc;

/// Parsed command-line request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run the debugging algorithms (may execute new instances).
    Diagnose {
        /// Spec file path.
        spec: String,
        /// Optional provenance TSV path.
        provenance: Option<String>,
        /// Algorithm selection.
        strategy: Strategy,
        /// FindOne or FindAll.
        mode: DdtMode,
        /// RNG seed.
        seed: u64,
        /// Write the final provenance here.
        save_provenance: Option<String>,
    },
    /// Run a baseline explainer on existing provenance (no executions).
    Explain {
        /// Spec file path.
        spec: String,
        /// Provenance TSV path.
        provenance: String,
        /// `dataxray` or `exptables`.
        method: String,
    },
    /// Print usage.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
bugdoc — find minimal definitive root causes of pipeline failures

USAGE:
  bugdoc diagnose --spec FILE [--provenance FILE] [--algorithm combined|stacked|ddt]
                  [--mode one|all] [--seed N] [--save-provenance FILE]
  bugdoc explain  --spec FILE --provenance FILE [--method dataxray|exptables]
  bugdoc help

The spec file declares parameters, the command template, and the evaluation:
  param feed categorical internal acme datastream
  param window ordinal 3 6 12
  command ./run.sh --feed {feed} --window {window}
  eval stdout_le 0.15      # or: exit_code | stdout_ge <t>
  workers 5
  budget 200
  cache_entries 4096       # or: cache_bytes <n> — bound the result cache
  persist_dir .bugdoc      # durable provenance: killed runs warm-start here
  snapshot_every 512       # recovery snapshot cadence (with persist_dir)
  bounds off               # disable bound-guided pruning (default: on)
";

/// Parses argv (without the program name).
pub fn parse_args(args: &[String]) -> Result<Request, String> {
    let Some(cmd) = args.first() else {
        return Ok(Request::Help);
    };
    let mut spec = None;
    let mut provenance = None;
    let mut strategy = Strategy::Combined;
    let mut mode = DdtMode::FindAll;
    let mut seed = 0u64;
    let mut save_provenance = None;
    let mut method = "dataxray".to_string();

    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--spec" => spec = Some(value(&mut i)?),
            "--provenance" => provenance = Some(value(&mut i)?),
            "--save-provenance" => save_provenance = Some(value(&mut i)?),
            "--seed" => {
                seed = value(&mut i)?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?
            }
            "--algorithm" => {
                strategy = match value(&mut i)?.as_str() {
                    "combined" => Strategy::Combined,
                    "stacked" => Strategy::StackedShortcutOnly,
                    "ddt" => Strategy::DdtOnly,
                    other => return Err(format!("unknown algorithm {other:?}")),
                }
            }
            "--mode" => {
                mode = match value(&mut i)?.as_str() {
                    "one" => DdtMode::FindOne,
                    "all" => DdtMode::FindAll,
                    other => return Err(format!("unknown mode {other:?}")),
                }
            }
            "--method" => method = value(&mut i)?,
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }

    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Request::Help),
        "diagnose" => Ok(Request::Diagnose {
            spec: spec.ok_or("diagnose needs --spec")?,
            provenance,
            strategy,
            mode,
            seed,
            save_provenance,
        }),
        "explain" => Ok(Request::Explain {
            spec: spec.ok_or("explain needs --spec")?,
            provenance: provenance.ok_or("explain needs --provenance")?,
            method,
        }),
        other => Err(format!("unknown command {other:?} (try `bugdoc help`)")),
    }
}

fn load_spec(path: &str) -> Result<Spec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    spec::parse_spec(&text).map_err(|e| e.to_string())
}

fn load_provenance(spec: &Spec, path: Option<&str>) -> Result<ProvenanceStore, String> {
    match path {
        None => Ok(ProvenanceStore::new(spec.space.clone())),
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            ProvenanceStore::from_tsv(spec.space.clone(), &text).map_err(|e| e.to_string())
        }
    }
}

/// Executes a request, returning the report text to print.
pub fn run(request: Request) -> Result<String, String> {
    match request {
        Request::Help => Ok(USAGE.to_string()),
        Request::Diagnose {
            spec,
            provenance,
            strategy,
            mode,
            seed,
            save_provenance,
        } => {
            let spec = load_spec(&spec)?;
            let prov = load_provenance(&spec, provenance.as_deref())?;
            let pipeline = CommandPipeline::new(
                spec.space.clone(),
                spec.command.clone(),
                spec.eval.clone(),
            );
            // With `persist_dir` set this is the warm-start path: history
            // already in the directory is recovered and seeds the executor
            // (recovered runs are cache hits, exactly like --provenance
            // seeds), and every new execution is teed to the WAL.
            let exec = Executor::try_with_provenance(
                Arc::new(pipeline) as Arc<dyn Pipeline>,
                ExecutorConfig {
                    workers: spec.workers,
                    budget: spec.budget,
                    memory: spec.memory,
                    persist: spec.persist.clone(),
                    bounds: spec.bounds,
                },
                prov,
            )
            .map_err(|e| e.to_string())?;
            let config = BugDocConfig {
                strategy,
                mode,
                stacked: StackedConfig {
                    seed,
                    ..StackedConfig::default()
                },
                ddt: DdtConfig {
                    mode,
                    seed,
                    // The CLI may start from an empty history: probe harder
                    // so rare failure regions are still discovered.
                    enrich_initial: 32,
                    exploration_rounds: 3,
                    ..DdtConfig::default()
                },
            };
            let diagnosis = diagnose(&exec, &config).map_err(|e| e.to_string())?;

            let mut out = String::new();
            if diagnosis.causes.is_empty() {
                let _ = writeln!(out, "no definitive root cause asserted");
            } else {
                let _ = writeln!(out, "minimal definitive root cause(s):");
                for cause in diagnosis.causes.conjuncts() {
                    let _ = writeln!(out, "  {}", cause.display(&spec.space));
                }
            }
            let stats = exec.stats();
            let _ = writeln!(
                out,
                "instances executed: {} new, {} answered from provenance",
                stats.new_executions, stats.cache_hits
            );
            // Memory-bounded runs are observable without a debugger: report
            // what the CLOCK cache evicted and how often the provenance log
            // had to re-derive an answer.
            if spec.memory != bugdoc_engine::MemoryBudget::Unbounded
                || stats.evictions > 0
                || stats.log_rederivations > 0
            {
                let _ = writeln!(
                    out,
                    "result cache: {} evictions, {} log re-derivations",
                    stats.evictions, stats.log_rederivations
                );
            }
            // Bound-guided pruning is exact-preserving, so the only visible
            // trace of it working is this line: how much search the
            // admissible bounds decided without an exact scan.
            if stats.bounds_pruned_subtrees > 0
                || stats.bounds_short_circuits > 0
                || stats.bounds_fallthroughs > 0
            {
                let _ = writeln!(
                    out,
                    "bounds pruning: {} subtrees pruned, {} queries short-circuited, \
                     {} fell through to exact scans",
                    stats.bounds_pruned_subtrees,
                    stats.bounds_short_circuits,
                    stats.bounds_fallthroughs
                );
            }
            if let Some(recovery) = exec.recovery() {
                let persist = spec.persist.as_ref().expect("recovery implies persistence");
                let _ = writeln!(
                    out,
                    "durable provenance: {} runs warm-started from {} \
                     ({} from snapshot, {} replayed from the log{}), new runs appended",
                    recovery.runs,
                    persist.dir.display(),
                    recovery.snapshot_runs,
                    recovery.replayed_frames,
                    if recovery.truncated_bytes > 0 {
                        format!("; {} torn bytes discarded", recovery.truncated_bytes)
                    } else {
                        String::new()
                    },
                );
            }
            if let Some(path) = save_provenance {
                std::fs::write(&path, exec.provenance().to_tsv())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                let _ = writeln!(out, "provenance written to {path}");
            }
            Ok(out)
        }
        Request::Explain {
            spec,
            provenance,
            method,
        } => {
            let spec = load_spec(&spec)?;
            let prov = load_provenance(&spec, Some(&provenance))?;
            let causes = match method.as_str() {
                "dataxray" => dataxray::explain(&prov, &Default::default()),
                "exptables" => exptables::explain(&prov, &Default::default()),
                other => return Err(format!("unknown method {other:?}")),
            };
            let mut out = String::new();
            let _ = writeln!(out, "{method} explanation(s) over {} runs:", prov.len());
            if causes.is_empty() {
                let _ = writeln!(out, "  (none)");
            }
            for cause in &causes {
                let _ = writeln!(out, "  {}", cause.display(&spec.space));
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_diagnose_defaults() {
        let req = parse_args(&s(&["diagnose", "--spec", "p.spec"])).unwrap();
        match req {
            Request::Diagnose {
                spec,
                strategy,
                mode,
                ..
            } => {
                assert_eq!(spec, "p.spec");
                assert_eq!(strategy, Strategy::Combined);
                assert_eq!(mode, DdtMode::FindAll);
            }
            _ => panic!("wrong request"),
        }
    }

    #[test]
    fn parse_all_flags() {
        let req = parse_args(&s(&[
            "diagnose",
            "--spec",
            "p.spec",
            "--provenance",
            "runs.tsv",
            "--algorithm",
            "ddt",
            "--mode",
            "one",
            "--seed",
            "7",
            "--save-provenance",
            "out.tsv",
        ]))
        .unwrap();
        match req {
            Request::Diagnose {
                provenance,
                strategy,
                mode,
                seed,
                save_provenance,
                ..
            } => {
                assert_eq!(provenance.as_deref(), Some("runs.tsv"));
                assert_eq!(strategy, Strategy::DdtOnly);
                assert_eq!(mode, DdtMode::FindOne);
                assert_eq!(seed, 7);
                assert_eq!(save_provenance.as_deref(), Some("out.tsv"));
            }
            _ => panic!("wrong request"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&s(&["diagnose"])).is_err());
        assert!(parse_args(&s(&["explain", "--spec", "x"])).is_err());
        assert!(parse_args(&s(&["diagnose", "--spec", "x", "--algorithm", "magic"])).is_err());
        assert!(parse_args(&s(&["frobnicate"])).is_err());
        assert!(parse_args(&s(&["diagnose", "--spec"])).is_err());
    }

    #[test]
    fn help_paths() {
        assert!(matches!(parse_args(&[]).unwrap(), Request::Help));
        assert!(matches!(
            parse_args(&s(&["help"])).unwrap(),
            Request::Help
        ));
        assert!(run(Request::Help).unwrap().contains("USAGE"));
    }
}
