//! The `bugdoc` binary: see [`bugdoc_cli::USAGE`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match bugdoc_cli::parse_args(&args).and_then(bugdoc_cli::run) {
        Ok(report) => print!("{report}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}
