//! The pipeline spec file: a small line-based format describing the
//! parameter space, the command to execute per instance, and the evaluation
//! procedure.
//!
//! ```text
//! # sales forecast pipeline
//! param data_provider categorical internal acme_feed datastream
//! param feed_resolution categorical monthly weekly daily
//! param feature_window ordinal 3 6 12 24
//! param verbose boolean
//! command ./run_forecast.sh --provider {data_provider} --window {feature_window}
//! eval stdout_le 0.15
//! workers 5
//! budget 200
//! ```
//!
//! * `param <name> categorical <v>…` — unordered labels.
//! * `param <name> ordinal <v>…` — ordered values (ints, floats, or strings).
//! * `param <name> boolean` — shorthand for `ordinal false true`.
//! * `command <argv>…` — `{param}` placeholders are substituted; every
//!   parameter is also exported as `BUGDOC_<NAME>`.
//! * `eval exit_code` | `eval stdout_ge <t>` | `eval stdout_le <t>`.
//! * `workers <n>` (default 5), `budget <n>` (default unbounded).
//! * `cache_entries <n>` | `cache_bytes <n>` — bound the executor's
//!   in-memory result cache (default unbounded); evicted results are
//!   re-derived from the provenance log, never re-executed.
//! * `persist_dir <path>` — durable provenance: every execution is teed to
//!   a checksummed write-ahead log in this directory, and a rerun *warm
//!   starts* from whatever the directory already holds (a killed run
//!   resumes where it stopped, paying only for the lost tail).
//! * `snapshot_every <n>` — with `persist_dir`, write a recovery snapshot
//!   every `n` new executions (default 512) so reopening replays only the
//!   WAL tail.
//! * `bounds on` | `bounds off` — bound-guided pruning of provenance
//!   queries (default on). Pruning is exact-preserving (diagnosis outputs
//!   are bit-identical either way); `off` is the escape hatch for
//!   differential runs.

use bugdoc_core::{ParamSpace, Value};
use bugdoc_engine::{CommandEval, MemoryBudget, PersistConfig};
use std::fmt;
use std::sync::Arc;

/// A parsed spec.
#[derive(Debug, Clone)]
pub struct Spec {
    /// The parameter space.
    pub space: Arc<ParamSpace>,
    /// The command argv (with placeholders).
    pub command: Vec<String>,
    /// The evaluation procedure.
    pub eval: CommandEval,
    /// Execution workers.
    pub workers: usize,
    /// Optional new-instance budget.
    pub budget: Option<usize>,
    /// Bound on the executor's in-memory result cache.
    pub memory: MemoryBudget,
    /// Durable provenance (`persist_dir` / `snapshot_every`), if requested.
    pub persist: Option<PersistConfig>,
    /// Bound-guided pruning of provenance queries (`bounds on|off`,
    /// default on).
    pub bounds: bool,
}

/// A spec parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    /// 1-based line number (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "spec error: {}", self.message)
        } else {
            write!(f, "spec error (line {}): {}", self.line, self.message)
        }
    }
}

impl std::error::Error for SpecError {}

fn err(line: usize, message: impl Into<String>) -> SpecError {
    SpecError {
        line,
        message: message.into(),
    }
}

/// Parses a value literal: int, then float, then bool, then string.
pub fn parse_value(token: &str) -> Value {
    if let Ok(i) = token.parse::<i64>() {
        return Value::from(i);
    }
    if let Ok(x) = token.parse::<f64>() {
        if !x.is_nan() {
            return Value::float(x);
        }
    }
    match token {
        "true" => Value::from(true),
        "false" => Value::from(false),
        other => Value::str(other),
    }
}

/// A parsed `param` line, staged until the whole file is read so the space
/// is built in one place (and so duplicate names are *parse* errors with a
/// line number, not a panic from [`ParamSpace`]'s builder).
enum ParamDecl {
    Categorical(String, Vec<Value>),
    Ordinal(String, Vec<Value>),
    Boolean(String),
}

impl ParamDecl {
    fn name(&self) -> &str {
        match self {
            ParamDecl::Categorical(n, _) | ParamDecl::Ordinal(n, _) | ParamDecl::Boolean(n) => n,
        }
    }
}

/// Parses a spec from its text. Never panics: every malformed line —
/// including ones that would trip [`ParamSpace`]'s builder invariants, like
/// a duplicate parameter name — is a [`SpecError`] carrying its 1-based
/// line number.
pub fn parse_spec(text: &str) -> Result<Spec, SpecError> {
    let mut params: Vec<ParamDecl> = Vec::new();
    let mut command: Option<Vec<String>> = None;
    let mut eval: Option<CommandEval> = None;
    let mut workers = 5usize;
    let mut budget: Option<usize> = None;
    let mut memory = MemoryBudget::Unbounded;
    let mut persist_dir: Option<String> = None;
    let mut snapshot_every: Option<u64> = None;
    let mut bounds = true;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let Some(keyword) = tokens.next() else {
            continue;
        };
        let rest: Vec<&str> = tokens.collect();
        match keyword {
            "param" => {
                if rest.len() < 2 {
                    return Err(err(line_no, "param needs a name and a kind"));
                }
                let name = rest[0].to_string();
                if params.iter().any(|p| p.name() == name) {
                    return Err(err(line_no, format!("duplicate parameter name {name:?}")));
                }
                let kind = rest[1];
                let values: Vec<Value> = rest[2..].iter().map(|t| parse_value(t)).collect();
                params.push(match kind {
                    "categorical" => {
                        if values.len() < 2 {
                            return Err(err(line_no, "categorical needs at least 2 values"));
                        }
                        ParamDecl::Categorical(name, values)
                    }
                    "ordinal" => {
                        if values.len() < 2 {
                            return Err(err(line_no, "ordinal needs at least 2 values"));
                        }
                        ParamDecl::Ordinal(name, values)
                    }
                    "boolean" => {
                        if !values.is_empty() {
                            return Err(err(line_no, "boolean takes no values"));
                        }
                        ParamDecl::Boolean(name)
                    }
                    other => {
                        return Err(err(
                            line_no,
                            format!("unknown parameter kind {other:?} (categorical/ordinal/boolean)"),
                        ))
                    }
                });
            }
            "command" => {
                if rest.is_empty() {
                    return Err(err(line_no, "command needs a program"));
                }
                command = Some(rest.iter().map(|s| s.to_string()).collect());
            }
            "eval" => {
                eval = Some(match rest.as_slice() {
                    ["exit_code"] => CommandEval::ExitCode,
                    ["stdout_ge", t] => CommandEval::StdoutScoreAtLeast(
                        t.parse().map_err(|_| err(line_no, "stdout_ge needs a number"))?,
                    ),
                    ["stdout_le", t] => CommandEval::StdoutScoreAtMost(
                        t.parse().map_err(|_| err(line_no, "stdout_le needs a number"))?,
                    ),
                    _ => {
                        return Err(err(
                            line_no,
                            "eval must be: exit_code | stdout_ge <t> | stdout_le <t>",
                        ))
                    }
                });
            }
            "workers" => {
                workers = rest
                    .first()
                    .and_then(|t| t.parse().ok())
                    .filter(|&w: &usize| w >= 1)
                    .ok_or_else(|| err(line_no, "workers needs a positive integer"))?;
            }
            "budget" => {
                budget = Some(
                    rest.first()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(line_no, "budget needs an integer"))?,
                );
            }
            "cache_entries" => {
                memory = MemoryBudget::Entries(
                    rest.first()
                        .and_then(|t| t.parse().ok())
                        .filter(|&n: &usize| n >= 1)
                        .ok_or_else(|| err(line_no, "cache_entries needs a positive integer"))?,
                );
            }
            "cache_bytes" => {
                memory = MemoryBudget::Bytes(
                    rest.first()
                        .and_then(|t| t.parse().ok())
                        .filter(|&n: &usize| n >= 1)
                        .ok_or_else(|| err(line_no, "cache_bytes needs a positive integer"))?,
                );
            }
            "persist_dir" => {
                if rest.is_empty() {
                    return Err(err(line_no, "persist_dir needs a path"));
                }
                // Paths may contain spaces; the original spacing is not
                // recoverable from tokens, so single spaces are assumed.
                persist_dir = Some(rest.join(" "));
            }
            "snapshot_every" => {
                snapshot_every = Some(
                    rest.first()
                        .and_then(|t| t.parse().ok())
                        .filter(|&n: &u64| n >= 1)
                        .ok_or_else(|| err(line_no, "snapshot_every needs a positive integer"))?,
                );
            }
            "bounds" => {
                bounds = match rest.as_slice() {
                    ["on"] => true,
                    ["off"] => false,
                    _ => return Err(err(line_no, "bounds must be: on | off")),
                };
            }
            other => return Err(err(line_no, format!("unknown keyword {other:?}"))),
        }
    }

    if params.is_empty() {
        return Err(err(0, "spec declares no parameters"));
    }
    let command = command.ok_or_else(|| err(0, "spec has no command line"))?;
    let eval = eval.ok_or_else(|| err(0, "spec has no eval line"))?;
    // The per-line checks above (≥2 values, no duplicate names) are exactly
    // the builder's panic preconditions, so this build cannot abort.
    let mut builder = ParamSpace::builder();
    for decl in params {
        builder = match decl {
            ParamDecl::Categorical(name, values) => builder.categorical(name, values),
            ParamDecl::Ordinal(name, values) => builder.ordinal(name, values),
            ParamDecl::Boolean(name) => builder.boolean(name),
        };
    }
    let space = builder.build();
    let persist = match (persist_dir, snapshot_every) {
        (None, Some(_)) => {
            return Err(err(0, "snapshot_every requires persist_dir"));
        }
        (None, None) => None,
        (Some(dir), every) => Some(PersistConfig {
            snapshot_every: Some(every.unwrap_or(512)),
            ..PersistConfig::new(dir)
        }),
    };
    Ok(Spec {
        space,
        command,
        eval,
        workers,
        budget,
        memory,
        persist,
        bounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# demo
param provider categorical internal acme datastream
param window ordinal 3 6 12
param verbose boolean

command ./run.sh --p {provider} --w {window}
eval stdout_le 0.15
workers 3
budget 50
";

    #[test]
    fn parses_full_spec() {
        let spec = parse_spec(GOOD).unwrap();
        assert_eq!(spec.space.len(), 3);
        assert_eq!(spec.space.by_name("provider").map(|p| spec.space.domain(p).len()), Some(3));
        assert!(spec.space.domain(spec.space.by_name("window").unwrap()).is_ordinal());
        assert_eq!(spec.command, vec!["./run.sh", "--p", "{provider}", "--w", "{window}"]);
        assert_eq!(spec.eval, CommandEval::StdoutScoreAtMost(0.15));
        assert_eq!(spec.workers, 3);
        assert_eq!(spec.budget, Some(50));
    }

    #[test]
    fn defaults() {
        let spec = parse_spec(
            "param a boolean\nparam b ordinal 1 2\ncommand prog\neval exit_code\n",
        )
        .unwrap();
        assert_eq!(spec.workers, 5);
        assert_eq!(spec.budget, None);
        assert_eq!(spec.eval, CommandEval::ExitCode);
        assert_eq!(spec.memory, MemoryBudget::Unbounded);
    }

    #[test]
    fn memory_budget_keywords() {
        let base = "param a boolean\ncommand prog\neval exit_code\n";
        let spec = parse_spec(&format!("{base}cache_entries 128\n")).unwrap();
        assert_eq!(spec.memory, MemoryBudget::Entries(128));
        let spec = parse_spec(&format!("{base}cache_bytes 65536\n")).unwrap();
        assert_eq!(spec.memory, MemoryBudget::Bytes(65536));
        // The last directive wins, matching the other scalar keywords.
        let spec = parse_spec(&format!("{base}cache_entries 8\ncache_bytes 512\n")).unwrap();
        assert_eq!(spec.memory, MemoryBudget::Bytes(512));
        for bad in ["cache_entries 0\n", "cache_entries\n", "cache_bytes x\n"] {
            let e = parse_spec(&format!("{base}{bad}")).unwrap_err();
            assert!(e.message.contains("positive integer"), "{bad:?}: {e}");
        }
    }

    #[test]
    fn persist_keywords() {
        let base = "param a boolean\ncommand prog\neval exit_code\n";
        let spec = parse_spec(base).unwrap();
        assert_eq!(spec.persist, None);

        let spec = parse_spec(&format!("{base}persist_dir /tmp/bd runs\n")).unwrap();
        let persist = spec.persist.unwrap();
        assert_eq!(persist.dir, std::path::PathBuf::from("/tmp/bd runs"));
        assert_eq!(persist.snapshot_every, Some(512), "default cadence");

        let spec =
            parse_spec(&format!("{base}persist_dir /tmp/bd\nsnapshot_every 64\n")).unwrap();
        assert_eq!(spec.persist.unwrap().snapshot_every, Some(64));

        let e = parse_spec(&format!("{base}snapshot_every 64\n")).unwrap_err();
        assert!(e.message.contains("requires persist_dir"), "{e}");
        let e = parse_spec(&format!("{base}persist_dir\n")).unwrap_err();
        assert!(e.message.contains("needs a path"), "{e}");
        for bad in ["snapshot_every 0\n", "snapshot_every x\n"] {
            let e = parse_spec(&format!("{base}persist_dir /tmp/bd\n{bad}")).unwrap_err();
            assert!(e.message.contains("positive integer"), "{bad:?}: {e}");
        }
    }

    #[test]
    fn bounds_keyword() {
        let base = "param a boolean\ncommand prog\neval exit_code\n";
        assert!(parse_spec(base).unwrap().bounds, "bounds default on");
        assert!(!parse_spec(&format!("{base}bounds off\n")).unwrap().bounds);
        assert!(parse_spec(&format!("{base}bounds on\n")).unwrap().bounds);
        for bad in ["bounds\n", "bounds maybe\n", "bounds on off\n"] {
            let e = parse_spec(&format!("{base}{bad}")).unwrap_err();
            assert!(e.message.contains("on | off"), "{bad:?}: {e}");
        }
    }

    #[test]
    fn value_literal_parsing() {
        assert_eq!(parse_value("3"), Value::from(3));
        assert_eq!(parse_value("2.5"), Value::float(2.5));
        assert_eq!(parse_value("true"), Value::from(true));
        assert_eq!(parse_value("weekly"), Value::str("weekly"));
    }

    #[test]
    fn error_lines_are_reported() {
        let e = parse_spec("param x categorical a\ncommand p\neval exit_code\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("at least 2"));

        let e = parse_spec("param x boolean\nwat\n").unwrap_err();
        assert_eq!(e.line, 2);

        let e = parse_spec("param x boolean\ncommand p\neval sideways\n").unwrap_err();
        assert!(e.message.contains("eval must be"));
    }

    #[test]
    fn missing_sections() {
        assert!(parse_spec("command p\neval exit_code\n").unwrap_err().message.contains("no parameters"));
        assert!(parse_spec("param x boolean\neval exit_code\n").unwrap_err().message.contains("no command"));
        assert!(parse_spec("param x boolean\ncommand p\n").unwrap_err().message.contains("no eval"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let spec = parse_spec(
            "# c\n\nparam a boolean\n  # indented comment\ncommand p {a}\neval exit_code\n",
        )
        .unwrap();
        assert_eq!(spec.space.len(), 1);
    }
}
