//! End-to-end CLI test: a real shell script pipeline debugged through the
//! spec file, provenance TSV round-trip included.

use std::fs;
use std::path::PathBuf;

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bugdoc-cli-test-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A pipeline that fails exactly when the feed is acme at weekly resolution.
fn write_fixture(dir: &PathBuf) -> (String, String) {
    let script = dir.join("run.sh");
    fs::write(
        &script,
        "#!/bin/sh\nif [ \"$BUGDOC_FEED\" = acme ] && [ \"$BUGDOC_RESOLUTION\" = weekly ]; then exit 1; fi\nexit 0\n",
    )
    .unwrap();
    // Make it executable.
    use std::os::unix::fs::PermissionsExt;
    fs::set_permissions(&script, fs::Permissions::from_mode(0o755)).unwrap();

    let spec = dir.join("pipeline.spec");
    fs::write(
        &spec,
        format!(
            "param feed categorical internal acme datastream\n\
             param resolution categorical monthly weekly daily\n\
             param window ordinal 3 6 12\n\
             command {} \n\
             eval exit_code\n\
             workers 2\n",
            script.display()
        ),
    )
    .unwrap();
    (
        spec.display().to_string(),
        dir.join("out.tsv").display().to_string(),
    )
}

#[test]
fn diagnose_finds_the_planted_cause() {
    let dir = workdir("diagnose");
    let (spec, out_tsv) = write_fixture(&dir);
    let args: Vec<String> = [
        "diagnose",
        "--spec",
        &spec,
        "--save-provenance",
        &out_tsv,
        "--seed",
        "3",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let report = bugdoc_cli::run(bugdoc_cli::parse_args(&args).unwrap()).unwrap();
    assert!(
        report.contains("feed = acme") && report.contains("resolution = weekly"),
        "report:\n{report}"
    );
    // The saved provenance parses back and contains both outcomes.
    let text = fs::read_to_string(&out_tsv).unwrap();
    assert!(text.contains("succeed") && text.contains("fail"));

    // Explain mode runs on the saved provenance without executing anything.
    let args: Vec<String> = [
        "explain",
        "--spec",
        &spec,
        "--provenance",
        &out_tsv,
        "--method",
        "exptables",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let explain = bugdoc_cli::run(bugdoc_cli::parse_args(&args).unwrap()).unwrap();
    assert!(explain.contains("exptables explanation"), "{explain}");

    let _ = fs::remove_dir_all(&dir);
}

/// With `persist_dir` in the spec, reruns warm-start from the accumulated
/// WAL: every previously executed instance is recovered (never re-executed
/// — the warm-started count equals the sum of all earlier executions), and
/// the root cause stays identical from run to run.
#[test]
fn persist_dir_warm_starts_reruns() {
    let dir = workdir("persist");
    let (spec_path, _) = write_fixture(&dir);
    // Extend the spec with persistence keywords.
    let mut spec_text = fs::read_to_string(&spec_path).unwrap();
    spec_text.push_str(&format!(
        "persist_dir {}\nsnapshot_every 8\n",
        dir.join("prov").display()
    ));
    fs::write(&spec_path, spec_text).unwrap();

    let args: Vec<String> = ["diagnose", "--spec", &spec_path, "--seed", "3"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let new_count = |report: &str| -> usize {
        report
            .lines()
            .find(|l| l.starts_with("instances executed:"))
            .and_then(|l| l.split_whitespace().nth(2))
            .and_then(|n| n.parse().ok())
            .unwrap()
    };
    let warm_count = |report: &str| -> usize {
        report
            .lines()
            .find_map(|l| l.strip_prefix("durable provenance: "))
            .and_then(|l| l.split_whitespace().next())
            .and_then(|n| n.parse().ok())
            .unwrap_or(0)
    };

    let cold = bugdoc_cli::run(bugdoc_cli::parse_args(&args).unwrap()).unwrap();
    assert!(
        cold.contains("feed = acme") && cold.contains("resolution = weekly"),
        "cold report:\n{cold}"
    );
    assert!(new_count(&cold) > 0);
    assert_eq!(warm_count(&cold), 0, "nothing to recover on the first run");

    // Rerun until the history saturates: every run must (a) report the same
    // root cause, (b) warm-start *exactly* the runs all earlier invocations
    // executed — the ledger `warm_started_{k+1} = warm_started_k + new_k`
    // proves nothing is ever lost or re-executed.
    let mut expected_warm = new_count(&cold);
    for round in 0..3 {
        let warm = bugdoc_cli::run(bugdoc_cli::parse_args(&args).unwrap()).unwrap();
        assert!(
            warm.contains("feed = acme") && warm.contains("resolution = weekly"),
            "round {round} report:\n{warm}"
        );
        assert_eq!(
            warm_count(&warm),
            expected_warm,
            "round {round} lost history:\n{warm}"
        );
        expected_warm += new_count(&warm);
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bad_spec_is_reported_with_line() {
    let dir = workdir("badspec");
    let spec = dir.join("bad.spec");
    fs::write(&spec, "param x categorical onlyone\ncommand p\neval exit_code\n").unwrap();
    let args: Vec<String> = ["diagnose", "--spec", &spec.display().to_string()]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let err = bugdoc_cli::run(bugdoc_cli::parse_args(&args).unwrap()).unwrap_err();
    assert!(err.contains("line 1"), "{err}");
    let _ = fs::remove_dir_all(&dir);
}
