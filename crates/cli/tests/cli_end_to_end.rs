//! End-to-end CLI test: a real shell script pipeline debugged through the
//! spec file, provenance TSV round-trip included.

use std::fs;
use std::path::PathBuf;

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bugdoc-cli-test-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A pipeline that fails exactly when the feed is acme at weekly resolution.
fn write_fixture(dir: &PathBuf) -> (String, String) {
    let script = dir.join("run.sh");
    fs::write(
        &script,
        "#!/bin/sh\nif [ \"$BUGDOC_FEED\" = acme ] && [ \"$BUGDOC_RESOLUTION\" = weekly ]; then exit 1; fi\nexit 0\n",
    )
    .unwrap();
    // Make it executable.
    use std::os::unix::fs::PermissionsExt;
    fs::set_permissions(&script, fs::Permissions::from_mode(0o755)).unwrap();

    let spec = dir.join("pipeline.spec");
    fs::write(
        &spec,
        format!(
            "param feed categorical internal acme datastream\n\
             param resolution categorical monthly weekly daily\n\
             param window ordinal 3 6 12\n\
             command {} \n\
             eval exit_code\n\
             workers 2\n",
            script.display()
        ),
    )
    .unwrap();
    (
        spec.display().to_string(),
        dir.join("out.tsv").display().to_string(),
    )
}

#[test]
fn diagnose_finds_the_planted_cause() {
    let dir = workdir("diagnose");
    let (spec, out_tsv) = write_fixture(&dir);
    let args: Vec<String> = [
        "diagnose",
        "--spec",
        &spec,
        "--save-provenance",
        &out_tsv,
        "--seed",
        "3",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let report = bugdoc_cli::run(bugdoc_cli::parse_args(&args).unwrap()).unwrap();
    assert!(
        report.contains("feed = acme") && report.contains("resolution = weekly"),
        "report:\n{report}"
    );
    // The saved provenance parses back and contains both outcomes.
    let text = fs::read_to_string(&out_tsv).unwrap();
    assert!(text.contains("succeed") && text.contains("fail"));

    // Explain mode runs on the saved provenance without executing anything.
    let args: Vec<String> = [
        "explain",
        "--spec",
        &spec,
        "--provenance",
        &out_tsv,
        "--method",
        "exptables",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let explain = bugdoc_cli::run(bugdoc_cli::parse_args(&args).unwrap()).unwrap();
    assert!(explain.contains("exptables explanation"), "{explain}");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bad_spec_is_reported_with_line() {
    let dir = workdir("badspec");
    let spec = dir.join("bad.spec");
    fs::write(&spec, "param x categorical onlyone\ncommand p\neval exit_code\n").unwrap();
    let args: Vec<String> = ["diagnose", "--spec", &spec.display().to_string()]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let err = bugdoc_cli::run(bugdoc_cli::parse_args(&args).unwrap()).unwrap_err();
    assert!(err.contains("line 1"), "{err}");
    let _ = fs::remove_dir_all(&dir);
}
