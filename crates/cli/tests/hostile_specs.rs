//! Hostile-spec suite: every spec keyword's malformed forms, driven through
//! the CLI entry point (`parse_args` + `run`) the way a user would hit them.
//! The contract under test is that a hostile spec file is a reported
//! `spec error` with a line number — never a panic/abort.

use bugdoc_cli::{parse_args, run};
use std::fs;
use std::path::PathBuf;

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bugdoc-hostile-{}", std::process::id()));
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Writes `spec_text` to a file and runs `bugdoc diagnose --spec <file>`
/// end to end, returning the CLI's error message.
fn diagnose_error(name: &str, spec_text: &str) -> String {
    let path = workdir().join(format!("{name}.spec"));
    fs::write(&path, spec_text).unwrap();
    let args: Vec<String> = ["diagnose", "--spec", path.to_str().unwrap()]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let request = parse_args(&args).expect("argv itself is well-formed");
    match run(request) {
        Ok(report) => panic!("hostile spec {name:?} was accepted:\n{report}"),
        Err(message) => message,
    }
}

/// Every keyword's malformed forms: `(case name, spec text, expected
/// message fragment, expected 1-based line number — 0 for file-level)`.
/// A minimal valid prefix precedes the hostile line so the error is
/// attributable to it.
const CASES: &[(&str, &str, &str, usize)] = &[
    // param
    ("param_bare", "param\ncommand p\neval exit_code\n", "name and a kind", 1),
    ("param_no_kind", "param x\ncommand p\neval exit_code\n", "name and a kind", 1),
    (
        "param_unknown_kind",
        "param x fuzzy a b\ncommand p\neval exit_code\n",
        "unknown parameter kind",
        1,
    ),
    (
        "param_categorical_one_value",
        "param x categorical a\ncommand p\neval exit_code\n",
        "at least 2 values",
        1,
    ),
    (
        "param_categorical_no_values",
        "param x categorical\ncommand p\neval exit_code\n",
        "at least 2 values",
        1,
    ),
    (
        "param_ordinal_one_value",
        "param x ordinal 1\ncommand p\neval exit_code\n",
        "at least 2 values",
        1,
    ),
    (
        "param_boolean_with_values",
        "param x boolean yes no\ncommand p\neval exit_code\n",
        "boolean takes no values",
        1,
    ),
    (
        "param_duplicate_name",
        "param x boolean\nparam x categorical a b\ncommand p\neval exit_code\n",
        "duplicate parameter name",
        2,
    ),
    (
        "param_duplicate_boolean",
        "param x boolean\nparam x boolean\ncommand p\neval exit_code\n",
        "duplicate parameter name",
        2,
    ),
    // command
    ("command_empty", "param x boolean\ncommand\neval exit_code\n", "needs a program", 2),
    // eval
    ("eval_empty", "param x boolean\ncommand p\neval\n", "eval must be", 3),
    ("eval_unknown", "param x boolean\ncommand p\neval sideways\n", "eval must be", 3),
    (
        "eval_stdout_ge_missing_threshold",
        "param x boolean\ncommand p\neval stdout_ge\n",
        "eval must be",
        3,
    ),
    (
        "eval_stdout_ge_non_numeric",
        "param x boolean\ncommand p\neval stdout_ge lots\n",
        "stdout_ge needs a number",
        3,
    ),
    (
        "eval_stdout_le_non_numeric",
        "param x boolean\ncommand p\neval stdout_le () {{ :; }}\n",
        "eval must be",
        3,
    ),
    (
        "eval_stdout_le_nanlike",
        "param x boolean\ncommand p\neval stdout_le 0.1.5\n",
        "stdout_le needs a number",
        3,
    ),
    // workers
    (
        "workers_missing_value",
        "param x boolean\ncommand p\neval exit_code\nworkers\n",
        "positive integer",
        4,
    ),
    (
        "workers_zero",
        "param x boolean\ncommand p\neval exit_code\nworkers 0\n",
        "positive integer",
        4,
    ),
    (
        "workers_non_numeric",
        "param x boolean\ncommand p\neval exit_code\nworkers many\n",
        "positive integer",
        4,
    ),
    (
        "workers_negative",
        "param x boolean\ncommand p\neval exit_code\nworkers -3\n",
        "positive integer",
        4,
    ),
    // budget
    (
        "budget_missing_value",
        "param x boolean\ncommand p\neval exit_code\nbudget\n",
        "needs an integer",
        4,
    ),
    (
        "budget_non_numeric",
        "param x boolean\ncommand p\neval exit_code\nbudget unlimited\n",
        "needs an integer",
        4,
    ),
    // cache_entries / cache_bytes
    (
        "cache_entries_missing_value",
        "param x boolean\ncommand p\neval exit_code\ncache_entries\n",
        "positive integer",
        4,
    ),
    (
        "cache_entries_zero",
        "param x boolean\ncommand p\neval exit_code\ncache_entries 0\n",
        "positive integer",
        4,
    ),
    (
        "cache_entries_non_numeric",
        "param x boolean\ncommand p\neval exit_code\ncache_entries big\n",
        "positive integer",
        4,
    ),
    (
        "cache_bytes_missing_value",
        "param x boolean\ncommand p\neval exit_code\ncache_bytes\n",
        "positive integer",
        4,
    ),
    (
        "cache_bytes_overflowing",
        "param x boolean\ncommand p\neval exit_code\ncache_bytes 99999999999999999999999999\n",
        "positive integer",
        4,
    ),
    // persist_dir / snapshot_every
    (
        "persist_dir_missing_path",
        "param x boolean\ncommand p\neval exit_code\npersist_dir\n",
        "needs a path",
        4,
    ),
    (
        "snapshot_every_without_persist",
        "param x boolean\ncommand p\neval exit_code\nsnapshot_every 64\n",
        "requires persist_dir",
        0,
    ),
    (
        "snapshot_every_missing_value",
        "param x boolean\ncommand p\neval exit_code\npersist_dir /tmp/x\nsnapshot_every\n",
        "positive integer",
        5,
    ),
    (
        "snapshot_every_zero",
        "param x boolean\ncommand p\neval exit_code\npersist_dir /tmp/x\nsnapshot_every 0\n",
        "positive integer",
        5,
    ),
    (
        "snapshot_every_non_numeric",
        "param x boolean\ncommand p\neval exit_code\npersist_dir /tmp/x\nsnapshot_every often\n",
        "positive integer",
        5,
    ),
    // bounds
    (
        "bounds_missing_value",
        "param x boolean\ncommand p\neval exit_code\nbounds\n",
        "on | off",
        4,
    ),
    (
        "bounds_unknown_value",
        "param x boolean\ncommand p\neval exit_code\nbounds maybe\n",
        "on | off",
        4,
    ),
    // structure
    ("unknown_keyword", "param x boolean\nwat is this\ncommand p\neval exit_code\n", "unknown keyword", 2),
    ("empty_file", "", "no parameters", 0),
    ("comments_only", "# nothing here\n\n# still nothing\n", "no parameters", 0),
    ("no_params", "command p\neval exit_code\n", "no parameters", 0),
    ("no_command", "param x boolean\neval exit_code\n", "no command", 0),
    ("no_eval", "param x boolean\ncommand p\n", "no eval", 0),
];

#[test]
fn every_keywords_malformed_form_is_an_error_not_a_panic() {
    for (name, text, fragment, line) in CASES {
        let message = diagnose_error(name, text);
        assert!(
            message.contains(fragment),
            "{name}: error {message:?} does not mention {fragment:?}"
        );
        assert!(
            message.starts_with("spec error"),
            "{name}: not routed through SpecError: {message:?}"
        );
        if *line > 0 {
            let tag = format!("(line {line})");
            assert!(
                message.contains(&tag),
                "{name}: error {message:?} does not carry {tag:?}"
            );
        }
    }
}

/// Binary garbage and pathological token shapes must also come back as
/// parse errors (first bogus keyword), not aborts.
#[test]
fn garbage_input_is_rejected_gracefully() {
    let message = diagnose_error("binaryish", "\u{0}\u{1}\u{2} x y\nparam x boolean\n");
    assert!(message.starts_with("spec error"), "{message:?}");
    let long_token = "A".repeat(1 << 16);
    let message = diagnose_error(
        "long_token",
        &format!("param {long_token} boolean\ncommand p\neval exit_code\nworkers {long_token}\n"),
    );
    assert!(message.contains("positive integer"), "{message:?}");
}

/// A spec file that does not exist is an I/O error message, not a panic.
#[test]
fn missing_spec_file_is_reported() {
    let args: Vec<String> = ["diagnose", "--spec", "/nonexistent/bugdoc.spec"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let request = parse_args(&args).unwrap();
    let message = run(request).unwrap_err();
    assert!(message.contains("cannot read"), "{message:?}");
}
