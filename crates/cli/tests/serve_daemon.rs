//! End-to-end daemon test against the real `bugdoc` binary: `serve` a real
//! shell-script pipeline with durable provenance, `connect` sessions to it,
//! then `SIGTERM` it and prove the shutdown was graceful — provenance
//! snapshotted, directory lock released, warm start clean.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bugdoc-serve-e2e-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The `cli_end_to_end` fixture: fails exactly when the feed is acme at
/// weekly resolution. The spec persists provenance under the workdir.
fn write_fixture(dir: &Path) -> String {
    let script = dir.join("run.sh");
    fs::write(
        &script,
        "#!/bin/sh\nif [ \"$BUGDOC_FEED\" = acme ] && [ \"$BUGDOC_RESOLUTION\" = weekly ]; then exit 1; fi\nexit 0\n",
    )
    .unwrap();
    use std::os::unix::fs::PermissionsExt;
    fs::set_permissions(&script, fs::Permissions::from_mode(0o755)).unwrap();

    let spec = dir.join("pipeline.spec");
    fs::write(
        &spec,
        format!(
            "param feed categorical internal acme datastream\n\
             param resolution categorical monthly weekly daily\n\
             param window ordinal 3 6 12\n\
             command {} \n\
             eval exit_code\n\
             workers 2\n\
             persist_dir {}\n\
             snapshot_every 8\n",
            script.display(),
            dir.join("prov").display()
        ),
    )
    .unwrap();
    spec.display().to_string()
}

fn bugdoc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bugdoc"))
}

fn wait_for_socket(socket: &Path, daemon: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !socket.exists() {
        if let Some(status) = daemon.try_wait().unwrap() {
            panic!("daemon exited early: {status}");
        }
        assert!(Instant::now() < deadline, "daemon never bound {socket:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn connect_report(socket: &Path, spec: &str, extra: &[&str]) -> String {
    let output = bugdoc()
        .args([
            "connect",
            "--socket",
            &socket.display().to_string(),
            "--spec",
            spec,
            "--seed",
            "3",
        ])
        .args(extra)
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "connect failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).unwrap()
}

/// One raw `METRICS` scrape over the wire, as an operator's collector would
/// issue it: no session, one command line, a counted reply block.
fn scrape_metrics(socket: &Path) -> Vec<String> {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    let mut stream = UnixStream::connect(socket).unwrap();
    stream.write_all(b"METRICS\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    reader.read_line(&mut head).unwrap();
    let n: usize = head
        .trim()
        .strip_prefix("OK metrics ")
        .unwrap_or_else(|| panic!("bad METRICS head {head:?}"))
        .parse()
        .unwrap();
    (0..n)
        .map(|_| {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line.trim_end().to_string()
        })
        .collect()
}

/// `(name, value)` pairs of the monotone counter samples (`*_total` /
/// `*_count` families) in an exposition, with any label set kept as part of
/// the name so per-executor series compare like-for-like.
fn counter_samples(lines: &[String]) -> Vec<(String, f64)> {
    lines
        .iter()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| l.rsplit_once(' '))
        .filter(|(name, _)| {
            let bare = name.split('{').next().unwrap_or(name);
            bare.ends_with("_total") || bare.ends_with("_count")
        })
        .map(|(name, value)| (name.to_string(), value.parse().unwrap()))
        .collect()
}

#[test]
fn daemon_serves_shares_and_survives_sigterm() {
    let dir = workdir("sigterm");
    let spec = write_fixture(&dir);
    let socket = dir.join("bugdoc.sock");

    let mut daemon = bugdoc()
        .args(["serve", "--socket", &socket.display().to_string()])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    wait_for_socket(&socket, &mut daemon);

    // First session pays for the executions; the second shares them.
    let first = connect_report(&socket, &spec, &[]);
    assert!(
        first.contains("feed = acme") && first.contains("resolution = weekly"),
        "first report:\n{first}"
    );
    // Scrape between the sessions, exactly as a collector would.
    let scrape1 = scrape_metrics(&socket);
    let second = connect_report(&socket, &spec, &["--stats", "--metrics"]);
    assert!(
        second.contains("feed = acme") && second.contains("resolution = weekly"),
        "second report:\n{second}"
    );
    // The passthrough flags surface the daemon's counters and exposition
    // without hand-crafting protocol lines.
    assert!(second.contains("# daemon stats"), "{second}");
    assert!(second.contains("shared.new_executions "), "{second}");
    assert!(
        second.contains("bugdoc_serve_sessions_created_total"),
        "{second}"
    );
    let scrape2 = scrape_metrics(&socket);

    // The exposition parses: every line is a HELP/TYPE comment or a
    // `name[{labels}] value` sample with a finite value, and every sample
    // name was introduced by a TYPE comment earlier in the scrape.
    let mut typed: Vec<String> = Vec::new();
    for line in &scrape2 {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            typed.push(rest.split_whitespace().next().unwrap().to_string());
            continue;
        }
        if line.starts_with('#') {
            assert!(line.starts_with("# HELP "), "malformed comment {line:?}");
            continue;
        }
        let (name, value) = line.rsplit_once(' ').unwrap();
        let value: f64 = value.parse().unwrap_or_else(|_| panic!("bad sample {line:?}"));
        assert!(value.is_finite(), "{line:?}");
        let bare = name.split(['{', ' ']).next().unwrap();
        assert!(
            typed.iter().any(|t| bare.starts_with(t.as_str())),
            "sample {bare} has no TYPE comment: {line:?}"
        );
    }
    // Counters are monotone across the two scrapes, and the connect in
    // between moved at least one of them.
    let before = counter_samples(&scrape1);
    let after = counter_samples(&scrape2);
    let mut grew = false;
    for (name, v1) in &before {
        let Some((_, v2)) = after.iter().find(|(n, _)| n == name) else {
            panic!("counter {name} vanished between scrapes");
        };
        assert!(v2 >= v1, "counter {name} went backwards: {v1} -> {v2}");
        grew |= v2 > v1;
    }
    assert!(grew, "no counter moved across a diagnosis:\n{scrape2:?}");
    // The durable store behind this daemon records WAL append latencies.
    assert!(
        scrape2
            .iter()
            .any(|l| l.starts_with("bugdoc_store_wal_append_ns_count")),
        "{scrape2:?}"
    );
    // The served cause sections are byte-identical between sessions.
    let causes = |report: &str| {
        report
            .lines()
            .take_while(|l| !l.starts_with("instances executed:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(causes(&first), causes(&second));
    let new_of = |report: &str| -> usize {
        report
            .lines()
            .find(|l| l.starts_with("instances executed:"))
            .and_then(|l| l.split_whitespace().nth(2))
            .and_then(|n| n.parse().ok())
            .unwrap()
    };
    assert!(new_of(&first) > 0, "first session must execute:\n{first}");
    assert!(
        new_of(&second) < new_of(&first),
        "second session did not share the first's executions:\n{second}"
    );

    // SIGTERM (not SIGKILL): the daemon must drain, snapshot the durable
    // store, release its lock, and exit cleanly.
    let pid = daemon.id().to_string();
    let killed = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .unwrap();
    assert!(killed.success());
    let deadline = Instant::now() + Duration::from_secs(20);
    let status = loop {
        if let Some(status) = daemon.try_wait().unwrap() {
            break status;
        }
        assert!(Instant::now() < deadline, "daemon ignored SIGTERM");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(status.success(), "daemon exited with {status}");
    assert!(!socket.exists(), "socket file not removed on exit");

    let prov = dir.join("prov");
    assert!(
        !prov.join("lock").exists(),
        "durable store lock not released on SIGTERM"
    );
    assert!(
        fs::read_dir(&prov)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().starts_with("snap-")),
        "no shutdown snapshot written"
    );

    // The persist dir warm-starts a one-shot run: same cause, and every
    // run the daemon executed is recovered rather than re-executed.
    let output = bugdoc()
        .args(["diagnose", "--spec", &spec, "--seed", "3"])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "warm start failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let warm = String::from_utf8(output.stdout).unwrap();
    assert!(
        warm.contains("feed = acme") && warm.contains("resolution = weekly"),
        "warm report:\n{warm}"
    );
    let warm_started: usize = warm
        .lines()
        .find_map(|l| l.strip_prefix("durable provenance: "))
        .and_then(|l| l.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no warm-start line:\n{warm}"));
    assert!(warm_started > 0, "nothing recovered from the daemon's store");

    let _ = fs::remove_dir_all(&dir);
}
