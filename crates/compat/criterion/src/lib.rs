//! Offline compat subset of `criterion`: a measuring benchmark harness with
//! the same bench-definition API (`criterion_group!`, `benchmark_group`,
//! `Bencher::iter*`) but a much simpler engine — warm-up, fixed sample count,
//! median-of-samples reporting, no statistical analysis or plots.
//!
//! Results are printed per benchmark and collected in-process; a runner can
//! drain them with [`Criterion::take_results`] (the headless `bench` binary
//! in `bugdoc-bench` uses this to emit `BENCH_engine.json`), and standalone
//! bench binaries write JSON to the path named by the `CRITERION_JSON`
//! environment variable when it is set.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity; re-export of `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/name` (plus `/param` for parameterized benches).
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Per-sample nanoseconds per iteration.
    pub samples_ns: Vec<f64>,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// A parameterized benchmark name: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Per-benchmark measurement settings.
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
    results: Vec<BenchResult>,
    quiet: bool,
}

impl Criterion {
    /// Suppresses per-benchmark stdout lines (used by embedding runners).
    pub fn quiet(mut self, quiet: bool) -> Self {
        self.quiet = quiet;
        self
    }

    /// Overrides the default sample count for subsequently created groups.
    pub fn with_sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n;
        self
    }

    /// Overrides the default measurement time for subsequently created groups.
    pub fn with_measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings.clone(),
            criterion: self,
        }
    }

    /// Drains the results collected so far.
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    /// All results collected so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Serializes results as a JSON object `{id: median_ns}` plus samples.
    pub fn results_json(&self) -> String {
        results_json(&self.results)
    }
}

/// Serializes results as JSON (stable key order: insertion order).
pub fn results_json(results: &[BenchResult]) -> String {
    let mut out = String::from("{\n");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  \"{}\": {{\"median_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
            r.id.replace('"', "'"),
            r.median_ns,
            r.samples_ns.len(),
            r.iters_per_sample
        ));
    }
    out.push_str("\n}\n");
    out
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    settings: Settings,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Sets the time budget spread over the samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Sets the warm-up time before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Measures one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name.into());
        self.run(id, &mut f);
        self
    }

    /// Measures one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.id);
        self.run(id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            settings: self.settings.clone(),
            samples_ns: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut bencher);
        let mut sorted = bencher.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let median_ns = if sorted.is_empty() {
            f64::NAN
        } else {
            sorted[sorted.len() / 2]
        };
        if !self.criterion.quiet {
            // lint: allow(W006, reason = "this crate is a criterion stand-in; printing per-bench timings to the terminal is its reporting contract, gated by --quiet")
            println!("{id:60} time: {:>12.1} ns/iter", median_ns);
        }
        self.criterion.results.push(BenchResult {
            id,
            median_ns,
            samples_ns: bencher.samples_ns,
            iters_per_sample: bencher.iters_per_sample,
        });
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(&mut self) {}
}

/// The measurement driver handed to each benchmark closure.
pub struct Bencher {
    settings: Settings,
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up + cost estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.settings.warm_up_time || warm_iters == 0 {
            std_black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(0.5);
        let sample_budget_ns =
            self.settings.measurement_time.as_nanos() as f64 / self.settings.sample_size as f64;
        let iters = ((sample_budget_ns / est_ns) as u64).clamp(1, 100_000_000);
        self.iters_per_sample = iters;
        for _ in 0..self.settings.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Times `routine` only, running `setup` before every invocation.
    pub fn iter_with_setup<S, O, Setup, R>(&mut self, mut setup: Setup, mut routine: R)
    where
        Setup: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        // Warm-up: a few untimed runs.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut est_ns = 0.0f64;
        while warm_start.elapsed() < self.settings.warm_up_time || warm_iters == 0 {
            let input = setup();
            let t = Instant::now();
            std_black_box(routine(input));
            est_ns += t.elapsed().as_nanos() as f64;
            warm_iters += 1;
            if warm_iters >= 100_000 {
                break;
            }
        }
        est_ns = (est_ns / warm_iters as f64).max(0.5);
        let sample_budget_ns =
            self.settings.measurement_time.as_nanos() as f64 / self.settings.sample_size as f64;
        let iters = ((sample_budget_ns / est_ns) as u64).clamp(1, 10_000_000);
        self.iters_per_sample = iters;
        for _ in 0..self.settings.sample_size {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                std_black_box(routine(input));
                elapsed += t.elapsed();
            }
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

/// Writes collected results to `$CRITERION_JSON` if set; called by
/// `criterion_main!` after all groups run.
pub fn finalize(c: &mut Criterion) {
    let results = c.take_results();
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            if let Err(e) = std::fs::write(&path, results_json(&results)) {
                // lint: allow(W006, reason = "bench harness teardown has no caller to return to; surfacing the JSON-export failure on stderr beats swallowing it")
                eprintln!("criterion: failed to write {path}: {e}");
            }
        }
    }
}

/// Declares a group-runner function executing the listed bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main` running the listed groups, then finalizing JSON output.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            $crate::finalize(&mut c);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports_median() {
        let mut c = Criterion::default().quiet(true).with_sample_size(5);
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5)
                .measurement_time(Duration::from_millis(50))
                .warm_up_time(Duration::from_millis(5));
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("param", 3), &3usize, |b, &n| {
                b.iter(|| n * 2)
            });
            g.finish();
        }
        let results = c.take_results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].id, "g/noop");
        assert_eq!(results[1].id, "g/param/3");
        assert!(results[0].median_ns.is_finite() && results[0].median_ns >= 0.0);
        assert_eq!(results[0].samples_ns.len(), 5);
    }

    #[test]
    fn iter_with_setup_times_routine_only() {
        let mut c = Criterion::default().quiet(true);
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3)
                .measurement_time(Duration::from_millis(30))
                .warm_up_time(Duration::from_millis(1));
            g.bench_function("setup", |b| {
                b.iter_with_setup(|| vec![1u8; 16], |v| v.len())
            });
        }
        assert_eq!(c.results().len(), 1);
    }

    #[test]
    fn json_shape() {
        let json = results_json(&[BenchResult {
            id: "a/b".into(),
            median_ns: 12.5,
            samples_ns: vec![12.5],
            iters_per_sample: 100,
        }]);
        assert!(json.contains("\"a/b\""));
        assert!(json.contains("\"median_ns\": 12.5"));
    }
}
