//! Offline compat subset of `crossbeam`: scoped threads over
//! `std::thread::scope` (stable since Rust 1.63, which is why the real crate
//! is no longer needed for this workspace's usage).
//!
//! Behavioural difference: `std::thread::scope` re-raises a child panic when
//! the scope exits, so this `scope` only ever returns `Ok` — callers that
//! `.expect(..)` the result observe the child's panic message instead of the
//! `expect` message. The workspace treats worker panics as fatal either way.

use std::any::Any;
use std::thread::{Scope as StdScope, ScopedJoinHandle};

/// A scope handle passed to the closure given to [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope StdScope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives a unit placeholder where
    /// crossbeam passes a nested scope (the workspace never uses it).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(()))
    }
}

/// Runs a closure with a thread scope; all spawned threads are joined before
/// this returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all() {
        let counter = AtomicUsize::new(0);
        let result = super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            42
        });
        assert_eq!(result.unwrap(), 42);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn scope_borrows_stack_data() {
        let data = vec![1, 2, 3];
        let sum = super::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }
}
