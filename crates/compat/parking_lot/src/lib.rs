//! Offline compat subset of `parking_lot`: `Mutex` and `RwLock` with the
//! poison-free API, implemented over `std::sync`. A poisoned std lock (a
//! panic while held) is recovered rather than propagated, matching
//! parking_lot's behaviour of not poisoning at all.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
