//! Offline compat subset of `proptest`: the strategy combinators and macros
//! the workspace's property tests use.
//!
//! Differences from the real crate:
//! * **no shrinking** — a failing case reports its case number and message,
//!   not a minimized counterexample;
//! * deterministic seeding — each test derives its RNG from the test's case
//!   index, so failures reproduce exactly across runs;
//! * only the strategies the workspace uses are implemented (integer and
//!   float ranges, `any` for primitives, `Just`, tuples, `collection::vec`,
//!   `prop_map`, `prop_flat_map`).

use std::fmt;

/// Deterministic generator for test-case production (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        (((self.next_u64() as u128) * (span as u128)) >> 64) as u64
    }
}

/// Why a property-test case failed; carried by `prop_assert*` rejections.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A strategy producing one fixed value (cloned per case).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                // Inclusive span may be 2^64 for the full u64 range; the
                // workspace never uses that, so saturate instead.
                (lo as i128 + rng.below(span.saturating_add(1)) as i128) as $t
            }
        }
    )*};
}

impl_int_strategies!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! impl_tuple_strategies {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Types with a canonical whole-domain strategy; see [`any`].
pub trait Arbitrary: Sized {
    /// Draws a uniform sample of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy covering the whole domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive size window for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The common imports: strategies, config, and the test macros.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: {} == {}",
                    stringify!($left),
                    stringify!($right)
                )
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)+)
            }
        }
    };
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: {} != {}",
                    stringify!($left),
                    stringify!($right)
                )
            }
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strategy:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                // Per-test deterministic seed: derived from the test name so
                // distinct tests explore distinct streams.
                let __test_seed: u64 = {
                    let mut h: u64 = 0xcbf29ce484222325;
                    for b in stringify!($name).bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x100000001b3);
                    }
                    h
                };
                let __strategy = ( $($strategy,)+ );
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::seed(
                        __test_seed ^ (__case as u64).wrapping_mul(0x9E3779B97F4A7C15),
                    );
                    let ( $($pat,)+ ) =
                        $crate::Strategy::new_value(&__strategy, &mut __rng);
                    let __outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                            __e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = crate::TestRng::seed(1);
        for _ in 0..200 {
            let v = (2usize..=5).new_value(&mut rng);
            assert!((2..=5).contains(&v));
            let w = (0i64..4).new_value(&mut rng);
            assert!((0..4).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let s = crate::collection::vec(0usize..10, 1..32);
        let mut rng = crate::TestRng::seed(2);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((1..32).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let s = (1usize..4).prop_flat_map(|n| {
            crate::collection::vec(0usize..10, n..=n).prop_map(move |v| (n, v))
        });
        let mut rng = crate::TestRng::seed(3);
        for _ in 0..50 {
            let (n, v) = s.new_value(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, tuple patterns, and prop_assert forms.
        #[test]
        fn macro_end_to_end(
            (a, b) in (0usize..10, 0usize..10),
            flip in any::<bool>(),
        ) {
            prop_assert!(a < 10);
            prop_assert_eq!(a + b, b + a, "commutativity {} {}", a, b);
            if flip {
                return Ok(());
            }
            prop_assert_ne!(a, a + b + 1);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_panics_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(x in 0usize..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
