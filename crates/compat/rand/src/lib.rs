//! Offline compat subset of the `rand` crate.
//!
//! Provides deterministic, seedable random number generation with the API
//! shape the workspace uses: [`rngs::StdRng`], the [`Rng`] and [`SeedableRng`]
//! traits, and [`seq::SliceRandom`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — *not* the upstream ChaCha-based `StdRng`, so streams differ
//! from the real crate (they are still deterministic per seed, which is all
//! the workspace relies on).

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling methods, available on any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }

    /// A sample of the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a canonical "uniform over the whole type" distribution.
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one sample from the range. Panics on empty ranges.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

/// Uniform integer in `[0, span)` by widening multiply (Lemire's method,
/// without the rejection step — the bias is < 2^-64, irrelevant here).
fn uniform_u128<R: RngCore>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128) * span) >> 64
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded through SplitMix64 so low-entropy seeds still produce
    /// well-mixed state.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut word = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [word(), word(), word(), word()],
            }
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "20 elements should not shuffle to identity");
    }

    #[test]
    fn gen_standard_types() {
        let mut rng = StdRng::seed_from_u64(5);
        let _: u64 = rng.gen();
        let _: bool = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
