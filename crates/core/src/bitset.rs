//! A dense bitset over run indices — the backbone of the provenance store's
//! inverted index.
//!
//! Each `RunSet` is a vector of 64-bit words; run `i` lives at bit
//! `i % 64` of word `i / 64`. Predicate evaluation over the run log becomes
//! bitwise AND/OR + popcount over these words instead of per-run
//! interpretation (see `provenance.rs` for the index layout). The word
//! loops are the chunked kernels of [`crate::kernels`], shared with the
//! provenance store's epoch scans.

use crate::kernels;

/// A growable bitset of run indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunSet {
    words: Vec<u64>,
}

impl RunSet {
    /// The empty set.
    pub fn new() -> Self {
        RunSet::default()
    }

    /// The set `{0, 1, .., n-1}`.
    pub fn full(n: usize) -> Self {
        let mut set = RunSet {
            words: vec![u64::MAX; n.div_ceil(64)],
        };
        let tail = n % 64;
        if tail != 0 {
            if let Some(last) = set.words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        set
    }

    /// Adds run `i`, growing as needed.
    pub fn insert(&mut self, i: usize) {
        let word = i / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (i % 64);
    }

    /// True if run `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w >> (i % 64) & 1 == 1)
    }

    /// Intersects in place (`self &= other`). Words beyond `other`'s length
    /// are cleared.
    pub fn and_assign(&mut self, other: &RunSet) {
        let n = self.words.len().min(other.words.len());
        let (head, tail) = self.words.split_at_mut(n);
        kernels::and_into(head, &other.words);
        tail.fill(0);
    }

    /// Unions in place (`self |= other`).
    pub fn or_assign(&mut self, other: &RunSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        kernels::or_into(&mut self.words, &other.words);
    }

    /// Empties the set, keeping capacity.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Number of runs in the set.
    pub fn count(&self) -> usize {
        kernels::popcount(&self.words)
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        kernels::is_zero(&self.words)
    }

    /// `|self ∩ other|` without allocating.
    pub fn intersection_count(&self, other: &RunSet) -> usize {
        kernels::and_popcount(&self.words, &other.words)
    }

    /// True if the sets share any run.
    pub fn intersects(&self, other: &RunSet) -> bool {
        kernels::and_any(&self.words, &other.words)
    }

    /// True if every run of `self` is also in `other`.
    pub fn is_subset_of(&self, other: &RunSet) -> bool {
        !kernels::and_not_any(&self.words, &other.words)
    }

    /// ORs `bits` into word `word_idx` (covering runs
    /// `word_idx*64 .. word_idx*64+64`), growing as needed. This is how the
    /// provenance store's epoch-segmented query path splices a per-epoch
    /// word block into a global result set.
    pub fn or_word(&mut self, word_idx: usize, bits: u64) {
        if bits == 0 {
            return;
        }
        if word_idx >= self.words.len() {
            self.words.resize(word_idx + 1, 0);
        }
        self.words[word_idx] |= bits;
    }

    /// Word `word_idx` of the backing storage (0 past the end).
    pub fn word(&self, word_idx: usize) -> u64 {
        self.words.get(word_idx).copied().unwrap_or(0)
    }

    /// The backing words (64 runs per word; the last word may be partial).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// ORs a whole word block in at `word_offset` — a single vectorizable
    /// pass, where a per-word [`or_word`](Self::or_word) loop would pay a
    /// growth-and-zero check on every word. Callers pre-size the set (see
    /// [`grow_words`](Self::grow_words)): a `src` that overruns the
    /// destination capacity is a caller bug, debug-asserted rather than
    /// silently absorbed — release builds still grow rather than drop bits.
    pub fn or_words_at(&mut self, word_offset: usize, src: &[u64]) {
        let end = word_offset + src.len();
        debug_assert!(
            end <= self.words.len(),
            "or_words_at overrun: {} words from offset {word_offset} into a {}-word set \
             (pre-size with grow_words)",
            src.len(),
            self.words.len()
        );
        if end > self.words.len() {
            self.words.resize(end, 0);
        }
        kernels::or_into(&mut self.words[word_offset..end], src);
    }

    /// Grows the backing storage to at least `words` zero-filled words
    /// (never shrinks), so subsequent [`or_words_at`](Self::or_words_at)
    /// splices and direct word writes stay in capacity.
    pub fn grow_words(&mut self, words: usize) {
        if words > self.words.len() {
            self.words.resize(words, 0);
        }
    }

    /// Mutable view of the backing words (see [`words`](Self::words)).
    /// Internal: the epoch query paths write per-epoch accumulator results
    /// straight into their disjoint word ranges.
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Iterates set members in increasing order.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over the members of a [`RunSet`]; see [`RunSet::ones`].
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = RunSet::new();
        assert!(s.is_empty());
        for i in [0usize, 63, 64, 130] {
            s.insert(i);
        }
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(130));
        assert!(!s.contains(1) && !s.contains(129) && !s.contains(1000));
        assert_eq!(s.count(), 4);
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![0, 63, 64, 130]);
    }

    #[test]
    fn full_has_exact_tail() {
        for n in [0usize, 1, 63, 64, 65, 130] {
            let s = RunSet::full(n);
            assert_eq!(s.count(), n, "n={n}");
            assert_eq!(s.ones().collect::<Vec<_>>(), (0..n).collect::<Vec<_>>());
            assert!(!s.contains(n));
        }
    }

    #[test]
    fn and_or_intersection() {
        let mut a = RunSet::new();
        let mut b = RunSet::new();
        for i in 0..100 {
            if i % 2 == 0 {
                a.insert(i);
            }
            if i % 3 == 0 {
                b.insert(i);
            }
        }
        assert_eq!(a.intersection_count(&b), 17); // multiples of 6 in 0..100
        assert!(a.intersects(&b));
        let mut c = a.clone();
        c.and_assign(&b);
        assert_eq!(c.count(), 17);
        let mut d = a.clone();
        d.or_assign(&b);
        assert_eq!(d.count(), 50 + 34 - 17);
    }

    #[test]
    fn and_with_shorter_clears_tail() {
        let mut a = RunSet::new();
        a.insert(10);
        a.insert(100);
        let mut b = RunSet::new();
        b.insert(10);
        a.and_assign(&b);
        assert_eq!(a.ones().collect::<Vec<_>>(), vec![10]);
    }

    #[test]
    fn subset_checks() {
        let mut a = RunSet::new();
        let mut b = RunSet::new();
        for i in [3usize, 64, 129] {
            a.insert(i);
            b.insert(i);
        }
        b.insert(200);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a), "bit past a's storage");
        a.insert(5);
        assert!(!a.is_subset_of(&b));
        assert!(RunSet::new().is_subset_of(&a));
    }

    #[test]
    fn or_words_at_within_presized_capacity() {
        let mut s = RunSet::new();
        s.grow_words(4);
        s.or_words_at(1, &[0b101, u64::MAX]);
        assert_eq!(s.ones().collect::<Vec<_>>().len(), 2 + 64);
        assert!(s.contains(64) && s.contains(66) && s.contains(128 + 63));
        // grow_words never shrinks.
        s.grow_words(1);
        assert_eq!(s.words().len(), 4);
    }

    #[test]
    fn disjoint_sets_do_not_intersect() {
        let mut a = RunSet::new();
        let mut b = RunSet::new();
        a.insert(1);
        b.insert(2);
        assert!(!a.intersects(&b));
        assert_eq!(a.intersection_count(&b), 0);
    }
}
