//! Root causes: conjunctions and disjunctions of predicate triples, plus the
//! *canonical product form* used for semantic reasoning.
//!
//! A hypothetical root cause of failure is a Boolean conjunction of
//! parameter-comparator-value triples (paper §3, Def. 3). It is *definitive*
//! if no succeeding instance satisfies it (Def. 4), and *minimal* if no proper
//! subset is definitive (Def. 5). Debugging Decision Trees additionally
//! discovers *disjunctions* of conjunctions (§4.2), represented here as
//! [`Dnf`].
//!
//! Over a finite parameter space, a conjunction denotes a *product set*: for
//! each parameter, the subset of its domain the conjunction allows. Two
//! conjunctions are semantically equal iff they denote the same product set.
//! [`CanonicalCause`] materializes that form; the evaluation harness uses it
//! to match asserted causes against ground truth exactly, and the
//! Quine–McCluskey crate uses it as its cube representation.

use crate::instance::Instance;
use crate::param::{Domain, DomainKind, ParamId, ParamSpace};
use crate::predicate::{Comparator, Predicate};
use std::collections::BTreeMap;
use std::fmt;

/// A Boolean conjunction of predicate triples. The empty conjunction is
/// `true` (satisfied by every instance).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Conjunction {
    preds: Vec<Predicate>,
}

impl Conjunction {
    /// The always-true conjunction.
    pub fn top() -> Self {
        Conjunction::default()
    }

    /// Builds a conjunction, sorting and deduplicating the triples so that
    /// syntactically equal conjunctions compare equal.
    pub fn new(mut preds: Vec<Predicate>) -> Self {
        preds.sort();
        preds.dedup();
        Conjunction { preds }
    }

    /// A conjunction of equality triples taken from an instance's
    /// parameter-value pairs — the form Shortcut asserts (`D ⊆ CP_f`).
    pub fn of_equalities<'a>(pairs: impl IntoIterator<Item = (ParamId, &'a crate::value::Value)>) -> Self {
        Conjunction::new(
            pairs
                .into_iter()
                .map(|(p, v)| Predicate::eq(p, v.clone()))
                .collect(),
        )
    }

    /// The triples, in sorted order.
    pub fn predicates(&self) -> &[Predicate] {
        &self.preds
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True for the always-true conjunction.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// True if the instance satisfies every triple.
    pub fn satisfied_by(&self, instance: &Instance) -> bool {
        self.preds.iter().all(|p| p.satisfied_by(instance))
    }

    /// A new conjunction with one triple removed (by position). Used when
    /// searching for minimal definitive root causes (Def. 5).
    pub fn without(&self, idx: usize) -> Conjunction {
        let mut preds = self.preds.clone();
        preds.remove(idx);
        Conjunction { preds }
    }

    /// A new conjunction extended with an extra triple.
    pub fn and(&self, pred: Predicate) -> Conjunction {
        let mut preds = self.preds.clone();
        preds.push(pred);
        Conjunction::new(preds)
    }

    /// True if `self`'s triple set is a subset of `other`'s (syntactic — for
    /// the semantic version canonicalize both sides).
    pub fn is_syntactic_subset_of(&self, other: &Conjunction) -> bool {
        self.preds.iter().all(|p| other.preds.contains(p))
    }

    /// The canonical product form over a concrete space.
    pub fn canonicalize(&self, space: &ParamSpace) -> CanonicalCause {
        let mut allowed: BTreeMap<ParamId, Vec<bool>> = BTreeMap::new();
        for pred in &self.preds {
            let domain = space.domain(pred.param);
            let mask = allowed
                .entry(pred.param)
                .or_insert_with(|| vec![true; domain.len()]);
            for (i, m) in mask.iter_mut().enumerate() {
                *m = *m && pred.cmp.apply(domain.value(i), &pred.value);
            }
        }
        // Drop unconstrained parameters (full masks): they carry no
        // information and their absence is what makes the form canonical.
        allowed.retain(|_, mask| mask.iter().any(|&m| !m));
        CanonicalCause { allowed }
    }

    /// Renders the conjunction with parameter names, e.g.
    /// `Library Version = 2 ∧ Estimator = Gradient Boosting`.
    pub fn display<'a>(&'a self, space: &'a ParamSpace) -> ConjunctionDisplay<'a> {
        ConjunctionDisplay { conj: self, space }
    }
}

/// Named rendering of a [`Conjunction`]; see [`Conjunction::display`].
pub struct ConjunctionDisplay<'a> {
    conj: &'a Conjunction,
    space: &'a ParamSpace,
}

impl fmt::Display for ConjunctionDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conj.is_empty() {
            return write!(f, "⊤");
        }
        for (i, p) in self.conj.preds.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{}", p.display(self.space))?;
        }
        Ok(())
    }
}

/// A disjunction of conjunctions (disjunctive normal form) — the shape of
/// complex root causes found by Debugging Decision Trees, e.g.
/// `(p1 = 4) ∨ (p2 < 3 ∧ p3 ≠ "p34")` (paper §5.1, Example 4).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Dnf {
    conjuncts: Vec<Conjunction>,
}

impl Dnf {
    /// The always-false DNF (no disjuncts).
    pub fn bottom() -> Self {
        Dnf::default()
    }

    /// Builds a DNF from conjuncts, deduplicating syntactically.
    pub fn new(conjuncts: Vec<Conjunction>) -> Self {
        let mut out: Vec<Conjunction> = Vec::with_capacity(conjuncts.len());
        for c in conjuncts {
            if !out.contains(&c) {
                out.push(c);
            }
        }
        Dnf { conjuncts: out }
    }

    /// The disjuncts.
    pub fn conjuncts(&self) -> &[Conjunction] {
        &self.conjuncts
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.conjuncts.len()
    }

    /// True for the always-false DNF.
    pub fn is_empty(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// True if any disjunct is satisfied.
    pub fn satisfied_by(&self, instance: &Instance) -> bool {
        self.conjuncts.iter().any(|c| c.satisfied_by(instance))
    }

    /// Adds a disjunct (no-op if syntactically present).
    pub fn push(&mut self, c: Conjunction) {
        if !self.conjuncts.contains(&c) {
            self.conjuncts.push(c);
        }
    }

    /// Renders with parameter names, disjuncts parenthesized.
    pub fn display<'a>(&'a self, space: &'a ParamSpace) -> DnfDisplay<'a> {
        DnfDisplay { dnf: self, space }
    }
}

impl FromIterator<Conjunction> for Dnf {
    fn from_iter<T: IntoIterator<Item = Conjunction>>(iter: T) -> Self {
        Dnf::new(iter.into_iter().collect())
    }
}

/// Named rendering of a [`Dnf`]; see [`Dnf::display`].
pub struct DnfDisplay<'a> {
    dnf: &'a Dnf,
    space: &'a ParamSpace,
}

impl fmt::Display for DnfDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dnf.is_empty() {
            return write!(f, "⊥");
        }
        for (i, c) in self.dnf.conjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "({})", c.display(self.space))?;
        }
        Ok(())
    }
}

/// The canonical product form of a conjunction over a concrete space: for
/// each *constrained* parameter, the boolean mask of allowed domain indices.
///
/// Semantic facts read directly off this form:
/// * equality of product sets ⇔ structural equality of `CanonicalCause`s,
/// * implication (`self ⊨ other`) ⇔ per-parameter mask inclusion,
/// * unsatisfiability ⇔ some mask is all-false.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalCause {
    /// Constrained parameters only; each mask has the domain's length and at
    /// least one `false` entry.
    allowed: BTreeMap<ParamId, Vec<bool>>,
}

impl CanonicalCause {
    /// The canonical form of `true` (no constraints).
    pub fn top() -> Self {
        CanonicalCause {
            allowed: BTreeMap::new(),
        }
    }

    /// Builds directly from per-parameter masks (used by the minimizer).
    /// Masks that allow everything are dropped; masks must match domain sizes.
    pub fn from_masks(space: &ParamSpace, masks: BTreeMap<ParamId, Vec<bool>>) -> Self {
        let mut allowed = masks;
        for (p, mask) in &allowed {
            assert_eq!(
                mask.len(),
                space.domain(*p).len(),
                "mask length mismatch for {}",
                space.param(*p).name()
            );
        }
        allowed.retain(|_, mask| mask.iter().any(|&m| !m));
        CanonicalCause { allowed }
    }

    /// The constrained parameters and their masks.
    pub fn masks(&self) -> &BTreeMap<ParamId, Vec<bool>> {
        &self.allowed
    }

    /// The mask for one parameter (`None` = unconstrained).
    pub fn mask(&self, p: ParamId) -> Option<&[bool]> {
        self.allowed.get(&p).map(|m| m.as_slice())
    }

    /// True if no constrained parameter exists — the cause is a tautology.
    pub fn is_top(&self) -> bool {
        self.allowed.is_empty()
    }

    /// True if some parameter has an all-false mask — no instance satisfies
    /// the cause.
    pub fn is_unsatisfiable(&self) -> bool {
        self.allowed.values().any(|m| m.iter().all(|&x| !x))
    }

    /// True if the instance lies in the product set.
    pub fn satisfied_by(&self, instance: &Instance, space: &ParamSpace) -> bool {
        self.allowed.iter().all(|(p, mask)| {
            space
                .domain(*p)
                .index_of(instance.get(*p))
                .map(|i| mask[i])
                .unwrap_or(false)
        })
    }

    /// Semantic implication: every instance satisfying `self` satisfies
    /// `other` (`self ⊨ other`). Unsatisfiable causes imply everything.
    pub fn implies(&self, other: &CanonicalCause) -> bool {
        if self.is_unsatisfiable() {
            return true;
        }
        other.allowed.iter().all(|(p, other_mask)| {
            match self.allowed.get(p) {
                // `self` unconstrained on p: implication needs other's mask full,
                // but full masks are dropped at construction, so it fails.
                None => false,
                Some(self_mask) => self_mask
                    .iter()
                    .zip(other_mask.iter())
                    .all(|(&a, &b)| !a || b),
            }
        })
    }

    /// Number of instances in the product set, over the given space.
    /// Saturates at `u128::MAX`.
    pub fn count_instances(&self, space: &ParamSpace) -> u128 {
        space
            .ids()
            .map(|p| match self.allowed.get(&p) {
                Some(mask) => mask.iter().filter(|&&m| m).count() as u128,
                None => space.domain(p).len() as u128,
            })
            .try_fold(1u128, |acc, n| acc.checked_mul(n))
            .unwrap_or(u128::MAX)
    }

    /// Converts back to the *shortest* predicate conjunction denoting the
    /// same product set. For each parameter the encoder tries, in order:
    /// nothing (full mask — cannot happen here), a single `=`, a single `≤`
    /// (prefix) or `>` (suffix) on ordinal domains, a single `≠`
    /// (complement-of-one), a two-triple range `> lo ∧ ≤ hi`, a range with
    /// excluded points, and finally one `≠` per excluded value — which can
    /// express any subset, so the encoding is total.
    pub fn to_conjunction(&self, space: &ParamSpace) -> Conjunction {
        let mut preds = Vec::new();
        for (&p, mask) in &self.allowed {
            preds.extend(encode_mask(p, space.domain(p), mask));
        }
        Conjunction::new(preds)
    }
}

/// Shortest predicate encoding of one parameter's allowed mask. See
/// [`CanonicalCause::to_conjunction`].
fn encode_mask(p: ParamId, domain: &Domain, mask: &[bool]) -> Vec<Predicate> {
    let n = mask.len();
    let allowed: Vec<usize> = (0..n).filter(|&i| mask[i]).collect();
    let excluded: Vec<usize> = (0..n).filter(|&i| !mask[i]).collect();
    debug_assert!(!excluded.is_empty(), "full masks are dropped at construction");

    // Unsatisfiable mask: denote with `= v ∧ ≠ v` on the first domain value —
    // a two-triple contradiction (callers normally never emit these).
    if allowed.is_empty() {
        let v = domain.value(0).clone();
        return vec![
            Predicate::new(p, Comparator::Eq, v.clone()),
            Predicate::new(p, Comparator::Neq, v),
        ];
    }

    // Single value: `= v`.
    if allowed.len() == 1 {
        return vec![Predicate::eq(p, domain.value(allowed[0]).clone())];
    }

    // Complement of a single value: `≠ v`.
    if excluded.len() == 1 {
        return vec![Predicate::new(
            p,
            Comparator::Neq,
            domain.value(excluded[0]).clone(),
        )];
    }

    if domain.kind() == DomainKind::Ordinal {
        let lo = allowed[0];
        let hi = *allowed.last().unwrap();
        let contiguous = allowed.len() == hi - lo + 1;
        if contiguous {
            if lo == 0 {
                // Prefix: `≤ dom[hi]`.
                return vec![Predicate::new(p, Comparator::Le, domain.value(hi).clone())];
            }
            if hi == n - 1 {
                // Suffix: `> dom[lo-1]`.
                return vec![Predicate::new(
                    p,
                    Comparator::Gt,
                    domain.value(lo - 1).clone(),
                )];
            }
            // Interior range: `> dom[lo-1] ∧ ≤ dom[hi]`.
            return vec![
                Predicate::new(p, Comparator::Gt, domain.value(lo - 1).clone()),
                Predicate::new(p, Comparator::Le, domain.value(hi).clone()),
            ];
        }
        // Non-contiguous ordinal set: range bounds plus interior exclusions,
        // if that is shorter than excluding everything.
        let interior_excluded: Vec<usize> = excluded
            .iter()
            .copied()
            .filter(|&i| i > lo && i < hi)
            .collect();
        let mut ranged = Vec::new();
        if lo > 0 {
            ranged.push(Predicate::new(
                p,
                Comparator::Gt,
                domain.value(lo - 1).clone(),
            ));
        }
        if hi < n - 1 {
            ranged.push(Predicate::new(p, Comparator::Le, domain.value(hi).clone()));
        }
        for i in &interior_excluded {
            ranged.push(Predicate::new(p, Comparator::Neq, domain.value(*i).clone()));
        }
        if ranged.len() < excluded.len() {
            return ranged;
        }
    }

    // Fallback, total for any domain kind: one `≠` per excluded value.
    excluded
        .iter()
        .map(|&i| Predicate::new(p, Comparator::Neq, domain.value(i).clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamSpace;
    use crate::value::Value;
    use std::sync::Arc;

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .ordinal("n", [1, 2, 3, 4, 5])
            .categorical("color", ["red", "green", "blue"])
            .ordinal("v", [1.0, 2.0])
            .build()
    }

    fn inst(s: &ParamSpace, n: i64, color: &str, v: f64) -> Instance {
        Instance::from_pairs(
            s,
            [("n", n.into()), ("color", color.into()), ("v", v.into())],
        )
    }

    #[test]
    fn conjunction_satisfaction_and_top() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let c = Conjunction::new(vec![
            Predicate::new(n, Comparator::Gt, 2),
            Predicate::new(n, Comparator::Le, 4),
        ]);
        assert!(c.satisfied_by(&inst(&s, 3, "red", 1.0)));
        assert!(!c.satisfied_by(&inst(&s, 5, "red", 1.0)));
        assert!(Conjunction::top().satisfied_by(&inst(&s, 5, "red", 1.0)));
    }

    #[test]
    fn conjunction_sorted_dedup_equality() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let color = s.by_name("color").unwrap();
        let a = Conjunction::new(vec![
            Predicate::eq(color, "red"),
            Predicate::new(n, Comparator::Gt, 2),
        ]);
        let b = Conjunction::new(vec![
            Predicate::new(n, Comparator::Gt, 2),
            Predicate::eq(color, "red"),
            Predicate::eq(color, "red"),
        ]);
        assert_eq!(a, b);
    }

    #[test]
    fn canonical_semantic_equality() {
        let s = space();
        let n = s.by_name("n").unwrap();
        // Over {1..5}: (n > 4) ≡ (n = 5).
        let a = Conjunction::new(vec![Predicate::new(n, Comparator::Gt, 4)]);
        let b = Conjunction::new(vec![Predicate::eq(n, 5)]);
        assert_ne!(a, b);
        assert_eq!(a.canonicalize(&s), b.canonicalize(&s));
        // (n ≤ 5) ≡ ⊤.
        let t = Conjunction::new(vec![Predicate::new(n, Comparator::Le, 5)]);
        assert!(t.canonicalize(&s).is_top());
    }

    #[test]
    fn canonical_unsat_detection() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let c = Conjunction::new(vec![
            Predicate::new(n, Comparator::Le, 2),
            Predicate::new(n, Comparator::Gt, 3),
        ]);
        assert!(c.canonicalize(&s).is_unsatisfiable());
    }

    #[test]
    fn canonical_implication() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let color = s.by_name("color").unwrap();
        let narrow = Conjunction::new(vec![
            Predicate::eq(n, 5),
            Predicate::eq(color, "red"),
        ])
        .canonicalize(&s);
        let wide = Conjunction::new(vec![Predicate::new(n, Comparator::Gt, 3)]).canonicalize(&s);
        assert!(narrow.implies(&wide));
        assert!(!wide.implies(&narrow));
        // Everything implies top; top implies nothing constrained.
        assert!(narrow.implies(&CanonicalCause::top()));
        assert!(!CanonicalCause::top().implies(&narrow));
    }

    #[test]
    fn canonical_count_instances() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let c = Conjunction::new(vec![Predicate::new(n, Comparator::Le, 2)]).canonicalize(&s);
        // n ∈ {1,2} × 3 colors × 2 versions = 12.
        assert_eq!(c.count_instances(&s), 12);
        assert_eq!(CanonicalCause::top().count_instances(&s), 30);
    }

    #[test]
    fn encode_roundtrip_shapes() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let color = s.by_name("color").unwrap();

        // Prefix -> single ≤.
        let c = Conjunction::new(vec![Predicate::new(n, Comparator::Le, 3)]);
        let round = c.canonicalize(&s).to_conjunction(&s);
        assert_eq!(round.predicates().len(), 1);
        assert_eq!(round.canonicalize(&s), c.canonicalize(&s));

        // Suffix expressed awkwardly -> single >.
        let c = Conjunction::new(vec![
            Predicate::new(n, Comparator::Neq, 1),
            Predicate::new(n, Comparator::Neq, 2),
        ]);
        let round = c.canonicalize(&s).to_conjunction(&s);
        assert_eq!(round.predicates().len(), 1);
        assert_eq!(round.predicates()[0].cmp, Comparator::Gt);

        // Interior range -> two triples.
        let c = Conjunction::new(vec![
            Predicate::new(n, Comparator::Gt, 1),
            Predicate::new(n, Comparator::Le, 4),
        ]);
        let round = c.canonicalize(&s).to_conjunction(&s);
        assert_eq!(round.predicates().len(), 2);
        assert_eq!(round.canonicalize(&s), c.canonicalize(&s));

        // Categorical complement-of-one -> single ≠.
        let c = Conjunction::new(vec![Predicate::new(color, Comparator::Neq, "blue")]);
        let round = c.canonicalize(&s).to_conjunction(&s);
        assert_eq!(round.predicates().len(), 1);
        assert_eq!(round.canonicalize(&s), c.canonicalize(&s));

        // Categorical single value -> single =.
        let c = Conjunction::new(vec![
            Predicate::new(color, Comparator::Neq, "blue"),
            Predicate::new(color, Comparator::Neq, "green"),
        ]);
        let round = c.canonicalize(&s).to_conjunction(&s);
        assert_eq!(round.predicates().len(), 1);
        assert_eq!(round.predicates()[0].cmp, Comparator::Eq);
    }

    #[test]
    fn encode_noncontiguous_ordinal() {
        let s = space();
        let n = s.by_name("n").unwrap();
        // Allowed {2,4}: range (1,4] minus {3} -> Gt 1, Le 4, Neq 3.
        let c = Conjunction::new(vec![
            Predicate::new(n, Comparator::Gt, 1),
            Predicate::new(n, Comparator::Le, 4),
            Predicate::new(n, Comparator::Neq, 3),
        ]);
        let canon = c.canonicalize(&s);
        let round = canon.to_conjunction(&s);
        assert_eq!(round.canonicalize(&s), canon);
        assert!(round.predicates().len() <= 3);
    }

    #[test]
    fn dnf_dedup_and_satisfaction() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let color = s.by_name("color").unwrap();
        let c1 = Conjunction::new(vec![Predicate::eq(n, 4)]);
        let c2 = Conjunction::new(vec![
            Predicate::new(n, Comparator::Le, 2),
            Predicate::new(color, Comparator::Neq, "blue"),
        ]);
        let dnf = Dnf::new(vec![c1.clone(), c2.clone(), c1.clone()]);
        assert_eq!(dnf.len(), 2);
        assert!(dnf.satisfied_by(&inst(&s, 4, "blue", 1.0)));
        assert!(dnf.satisfied_by(&inst(&s, 1, "red", 1.0)));
        assert!(!dnf.satisfied_by(&inst(&s, 1, "blue", 1.0)));
        assert!(!Dnf::bottom().satisfied_by(&inst(&s, 4, "blue", 1.0)));
    }

    #[test]
    fn display_formats() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let c = Conjunction::new(vec![Predicate::new(n, Comparator::Gt, 2)]);
        assert_eq!(c.display(&s).to_string(), "n > 2");
        assert_eq!(Conjunction::top().display(&s).to_string(), "⊤");
        let dnf = Dnf::new(vec![c.clone(), Conjunction::new(vec![Predicate::eq(n, 1)])]);
        assert_eq!(dnf.display(&s).to_string(), "(n > 2) ∨ (n = 1)");
        assert_eq!(Dnf::bottom().display(&s).to_string(), "⊥");
    }

    #[test]
    fn example_from_paper_definition() {
        // Paper §3: Cf = (A > 5 ∧ B = 7); instance A=15, B=7 satisfies it.
        let s = ParamSpace::builder()
            .ordinal("A", [5, 15])
            .ordinal("B", [6, 7])
            .build();
        let a = s.by_name("A").unwrap();
        let b = s.by_name("B").unwrap();
        let cf = Conjunction::new(vec![
            Predicate::new(a, Comparator::Gt, 5),
            Predicate::eq(b, 7),
        ]);
        let i = Instance::from_pairs(&s, [("A", 15.into()), ("B", 7.into())]);
        assert!(cf.satisfied_by(&i));
    }

    #[test]
    fn satisfied_by_canonical_matches_syntactic() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let color = s.by_name("color").unwrap();
        let c = Conjunction::new(vec![
            Predicate::new(n, Comparator::Gt, 2),
            Predicate::new(color, Comparator::Neq, "red"),
        ]);
        let canon = c.canonicalize(&s);
        for nn in [1i64, 3, 5] {
            for col in ["red", "green"] {
                let i = inst(&s, nn, col, 1.0);
                assert_eq!(c.satisfied_by(&i), canon.satisfied_by(&i, &s));
            }
        }
    }

    #[test]
    fn from_masks_drops_full_and_checks_len() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let mut masks = BTreeMap::new();
        masks.insert(n, vec![true; 5]);
        let c = CanonicalCause::from_masks(&s, masks);
        assert!(c.is_top());
    }

    #[test]
    fn value_type_compat() {
        // Mixed Int literals against a Float domain canonicalize correctly.
        let s = space();
        let v = s.by_name("v").unwrap();
        let c = Conjunction::new(vec![Predicate::new(v, Comparator::Eq, Value::float(2.0))]);
        let canon = c.canonicalize(&s);
        assert_eq!(canon.mask(v), Some(&[false, true][..]));
    }
}
