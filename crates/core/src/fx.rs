//! A fast, non-cryptographic hasher (the FxHash algorithm from rustc) for
//! the hot-path maps keyed by dense instance encodings.
//!
//! The std `RandomState`/SipHash default is DoS-resistant but costs ~10x more
//! per small key; provenance keys are short `u32` sequences derived from
//! trusted in-process data, so the cheap multiply-xor hash is the right
//! trade. Exposed publicly so the engine's sharded read cache can share the
//! same hashing.

use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash mixing constant (64-bit golden-ratio multiplier).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash state. Use via [`FxBuildHasher`] in `HashMap`/`HashSet`.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// One-shot FxHash of a dense instance key (used for shard selection and the
/// provenance key index; consumers verify key bytes on fingerprint matches,
/// so hash quality affects probing cost only, never correctness).
#[inline]
pub fn hash_dense_key(key: &[u32]) -> u64 {
    let mut h = FxHasher::default();
    for &k in key {
        h.add_to_hash(k as u64);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_dense_key(&[1, 2, 3]), hash_dense_key(&[1, 2, 3]));
        assert_ne!(hash_dense_key(&[1, 2, 3]), hash_dense_key(&[3, 2, 1]));
        assert_ne!(hash_dense_key(&[1]), hash_dense_key(&[1, 1]));
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: HashMap<Box<[u32]>, usize, FxBuildHasher> = HashMap::default();
        m.insert(vec![1, 2].into_boxed_slice(), 7);
        assert_eq!(m.get(&[1u32, 2][..]), Some(&7));
        assert_eq!(m.get(&[2u32, 1][..]), None);
    }
}
