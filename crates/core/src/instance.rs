//! Pipeline instances: complete parameter-value assignments.
//!
//! An instance `CP_i` assigns one value to every parameter (paper §3 Def. 1,
//! `CP_i[p] = v`). Instances are the unit of cost in BugDoc: the problem's
//! cost measure is "the number of executed pipeline instances beyond any
//! given, previously run, instances".

use crate::param::{ParamId, ParamSpace};
use crate::value::Value;
use std::fmt;

/// A complete assignment of values to parameters, stored densely by
/// [`ParamId`] index.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Instance {
    values: Box<[Value]>,
}

impl Instance {
    /// Creates an instance from dense values (one per parameter, in id order).
    pub fn new(values: Vec<Value>) -> Self {
        Instance {
            values: values.into_boxed_slice(),
        }
    }

    /// Creates an instance from `(name, value)` pairs against a space. Every
    /// parameter must be assigned exactly once and every value must belong to
    /// the parameter's universe; anything else is a caller bug and panics.
    pub fn from_pairs<'a>(
        space: &ParamSpace,
        pairs: impl IntoIterator<Item = (&'a str, Value)>,
    ) -> Self {
        let mut slots: Vec<Option<Value>> = vec![None; space.len()];
        for (name, v) in pairs {
            let id = space
                .by_name(name)
                .unwrap_or_else(|| panic!("unknown parameter {name:?}"));
            assert!(
                space.domain(id).contains(&v),
                "value {v} outside the universe of parameter {name:?}"
            );
            assert!(
                slots[id.index()].replace(v).is_none(),
                "parameter {name:?} assigned twice"
            );
        }
        let values: Vec<Value> = slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.unwrap_or_else(|| panic!("parameter index {i} not assigned")))
            .collect();
        Instance::new(values)
    }

    /// Number of parameters assigned.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for the zero-parameter instance.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value assigned to a parameter: `CP_i[p]`.
    pub fn get(&self, p: ParamId) -> &Value {
        &self.values[p.index()]
    }

    /// All values in id order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Returns a copy with parameter `p` reassigned to `v` — the elementary
    /// move of the Shortcut algorithm (`CP_current'[p] ← CP_g[p]`).
    pub fn with(&self, p: ParamId, v: Value) -> Self {
        let mut values = self.values.to_vec();
        values[p.index()] = v;
        Instance::new(values)
    }

    /// True if the two instances disagree on *every* parameter — the paper's
    /// Disjointness Condition (Def. 6): `CP_x[p] ≠ CP_y[p] ∀p`.
    pub fn is_disjoint_from(&self, other: &Instance) -> bool {
        debug_assert_eq!(self.len(), other.len());
        self.values
            .iter()
            .zip(other.values.iter())
            .all(|(a, b)| a != b)
    }

    /// Number of parameters on which the two instances differ. The
    /// "most-different" heuristic (used when the Disjointness Condition cannot
    /// be met, paper §4.1) maximizes this.
    pub fn hamming_distance(&self, other: &Instance) -> usize {
        debug_assert_eq!(self.len(), other.len());
        self.values
            .iter()
            .zip(other.values.iter())
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Parameters on which the two instances agree, with the shared value —
    /// the intersection `CP_current ∩ CP_f` computed at the end of Shortcut.
    pub fn shared_pairs<'a>(
        &'a self,
        other: &'a Instance,
    ) -> impl Iterator<Item = (ParamId, &'a Value)> + 'a {
        debug_assert_eq!(self.len(), other.len());
        self.values
            .iter()
            .zip(other.values.iter())
            .enumerate()
            .filter(|(_, (a, b))| a == b)
            .map(|(i, (a, _))| (ParamId(i as u32), a))
    }

    /// Renders the instance with parameter names, e.g.
    /// `{Dataset=Iris, Estimator=Gradient Boosting, Library Version=2}`.
    pub fn display<'a>(&'a self, space: &'a ParamSpace) -> InstanceDisplay<'a> {
        InstanceDisplay {
            instance: self,
            space,
        }
    }
}

/// Named rendering of an [`Instance`]; see [`Instance::display`].
pub struct InstanceDisplay<'a> {
    instance: &'a Instance,
    space: &'a ParamSpace,
}

impl fmt::Display for InstanceDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (id, def)) in self.space.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", def.name(), self.instance.get(id))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamSpace;

    fn space3() -> std::sync::Arc<ParamSpace> {
        ParamSpace::builder()
            .categorical("Dataset", ["Iris", "Digits", "Images"])
            .categorical("Estimator", ["LR", "DT", "GB"])
            .ordinal("Version", [1, 2])
            .build()
    }

    #[test]
    fn from_pairs_roundtrip() {
        let s = space3();
        let i = Instance::from_pairs(
            &s,
            [
                ("Version", Value::from(2)),
                ("Dataset", Value::from("Iris")),
                ("Estimator", Value::from("GB")),
            ],
        );
        assert_eq!(i.get(s.by_name("Dataset").unwrap()), &Value::from("Iris"));
        assert_eq!(i.get(s.by_name("Version").unwrap()), &Value::from(2));
        assert_eq!(
            i.display(&s).to_string(),
            "{Dataset=Iris, Estimator=GB, Version=2}"
        );
    }

    #[test]
    #[should_panic(expected = "not assigned")]
    fn from_pairs_missing_param_panics() {
        let s = space3();
        let _ = Instance::from_pairs(&s, [("Dataset", Value::from("Iris"))]);
    }

    #[test]
    #[should_panic(expected = "outside the universe")]
    fn from_pairs_unknown_value_panics() {
        let s = space3();
        let _ = Instance::from_pairs(
            &s,
            [
                ("Dataset", Value::from("Wine")),
                ("Estimator", Value::from("GB")),
                ("Version", Value::from(1)),
            ],
        );
    }

    #[test]
    fn disjointness_and_hamming() {
        let s = space3();
        let f = Instance::from_pairs(
            &s,
            [
                ("Dataset", "Iris".into()),
                ("Estimator", "GB".into()),
                ("Version", 2.into()),
            ],
        );
        let g = Instance::from_pairs(
            &s,
            [
                ("Dataset", "Digits".into()),
                ("Estimator", "DT".into()),
                ("Version", 1.into()),
            ],
        );
        assert!(f.is_disjoint_from(&g));
        assert_eq!(f.hamming_distance(&g), 3);
        let h = g.with(s.by_name("Version").unwrap(), 2.into());
        assert!(!f.is_disjoint_from(&h));
        assert_eq!(f.hamming_distance(&h), 2);
    }

    #[test]
    fn shared_pairs_is_intersection() {
        let s = space3();
        let a = Instance::from_pairs(
            &s,
            [
                ("Dataset", "Iris".into()),
                ("Estimator", "GB".into()),
                ("Version", 2.into()),
            ],
        );
        let b = a.with(s.by_name("Dataset").unwrap(), "Digits".into());
        let shared: Vec<_> = a.shared_pairs(&b).collect();
        assert_eq!(shared.len(), 2);
        assert_eq!(shared[0].0, s.by_name("Estimator").unwrap());
        assert_eq!(shared[1].1, &Value::from(2));
    }

    #[test]
    fn with_does_not_mutate_original() {
        let s = space3();
        let a = Instance::from_pairs(
            &s,
            [
                ("Dataset", "Iris".into()),
                ("Estimator", "GB".into()),
                ("Version", 2.into()),
            ],
        );
        let b = a.with(s.by_name("Version").unwrap(), 1.into());
        assert_eq!(a.get(s.by_name("Version").unwrap()), &Value::from(2));
        assert_eq!(b.get(s.by_name("Version").unwrap()), &Value::from(1));
    }
}
