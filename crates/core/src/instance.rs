//! Pipeline instances: complete parameter-value assignments.
//!
//! An instance `CP_i` assigns one value to every parameter (paper §3 Def. 1,
//! `CP_i[p] = v`). Instances are the unit of cost in BugDoc: the problem's
//! cost measure is "the number of executed pipeline instances beyond any
//! given, previously run, instances".

use crate::param::{ParamId, ParamSpace};
use crate::value::Value;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A complete assignment of values to parameters, stored densely by
/// [`ParamId`] index.
///
/// Space-aware constructors ([`Instance::from_pairs`],
/// [`ParamSpace::instance_from_indices`], [`ParamSpace::instances`]) also
/// attach the instance's **dense encoding** — one domain index (`u32`) per
/// parameter — which the provenance store uses as its canonical hash key and
/// the instance comparisons below use as a fast path. Instances built with
/// [`Instance::new`] carry no encoding and fall back to value comparisons;
/// equality and hashing are always defined over the values, so the two kinds
/// interoperate.
#[derive(Debug, Clone)]
pub struct Instance {
    values: Box<[Value]>,
    /// Per-parameter domain indices w.r.t. the space the instance was built
    /// against. Not part of `Eq`/`Hash` (it is derived data); comparisons may
    /// use it as a shortcut only where both operands come from one space.
    dense: Option<Box<[u32]>>,
    /// `hash_dense_key(dense)`, precomputed at construction so hot-path
    /// probes skip the hash chain. Meaningful only when `dense` is `Some`.
    fingerprint: u64,
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.values == other.values
    }
}

impl Eq for Instance {}

impl Hash for Instance {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.values.hash(state);
    }
}

impl Instance {
    /// Creates an instance from dense values (one per parameter, in id order).
    pub fn new(values: Vec<Value>) -> Self {
        Instance {
            values: values.into_boxed_slice(),
            dense: None,
            fingerprint: 0,
        }
    }

    /// Creates an instance carrying its dense encoding (crate-internal; the
    /// public space-aware entry point is [`ParamSpace::instance_from_indices`]).
    pub(crate) fn new_with_dense(values: Vec<Value>, dense: Vec<u32>) -> Self {
        debug_assert_eq!(values.len(), dense.len());
        let fingerprint = crate::fx::hash_dense_key(&dense);
        Instance {
            values: values.into_boxed_slice(),
            dense: Some(dense.into_boxed_slice()),
            fingerprint,
        }
    }

    /// The dense encoding (domain index per parameter), if this instance was
    /// built against a space. See the type-level docs for the caveats.
    #[inline]
    pub fn dense_key(&self) -> Option<&[u32]> {
        self.dense.as_deref()
    }

    /// The precomputed [`hash_dense_key`](crate::hash_dense_key) fingerprint
    /// of the dense encoding, when one is present.
    #[inline]
    pub fn dense_fingerprint(&self) -> Option<u64> {
        self.dense.as_ref().map(|_| self.fingerprint)
    }

    /// Attaches a dense encoding computed after construction (used by the
    /// provenance store when it encodes a key-less instance on record).
    pub(crate) fn set_dense(&mut self, dense: Box<[u32]>) {
        debug_assert_eq!(self.values.len(), dense.len());
        self.fingerprint = crate::fx::hash_dense_key(&dense);
        self.dense = Some(dense);
    }

    /// Creates an instance from `(name, value)` pairs against a space. Every
    /// parameter must be assigned exactly once and every value must belong to
    /// the parameter's universe; anything else is a caller bug and panics.
    /// Values are normalized to the domain's stored representation (an `Int`
    /// literal against a float domain becomes the domain's `Float`), so equal
    /// assignments compare equal regardless of literal spelling.
    pub fn from_pairs<'a>(
        space: &ParamSpace,
        pairs: impl IntoIterator<Item = (&'a str, Value)>,
    ) -> Self {
        let mut slots: Vec<Option<u32>> = vec![None; space.len()];
        for (name, v) in pairs {
            let id = space
                .by_name(name)
                .unwrap_or_else(|| panic!("unknown parameter {name:?}"));
            let idx = space.domain(id).index_of(&v).unwrap_or_else(|| {
                panic!("value {v} outside the universe of parameter {name:?}")
            });
            assert!(
                slots[id.index()].replace(idx as u32).is_none(),
                "parameter {name:?} assigned twice"
            );
        }
        let dense: Vec<u32> = slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.unwrap_or_else(|| panic!("parameter index {i} not assigned")))
            .collect();
        space.instance_from_indices(&dense)
    }

    /// Number of parameters assigned.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for the zero-parameter instance.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value assigned to a parameter: `CP_i[p]`.
    pub fn get(&self, p: ParamId) -> &Value {
        &self.values[p.index()]
    }

    /// All values in id order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Returns a copy with parameter `p` reassigned to `v` — the elementary
    /// move of the Shortcut algorithm (`CP_current'[p] ← CP_g[p]`). The copy
    /// loses the dense encoding (the new value's domain index is unknown
    /// without a space); prefer [`Instance::with_from`] when the replacement
    /// value comes from another instance.
    pub fn with(&self, p: ParamId, v: Value) -> Self {
        let mut values = self.values.to_vec();
        values[p.index()] = v;
        Instance::new(values)
    }

    /// Returns a copy with parameter `p` reassigned to `donor`'s value for
    /// `p`, preserving the dense encoding when both instances carry one —
    /// the zero-re-encoding form of the Shortcut substitution step.
    pub fn with_from(&self, p: ParamId, donor: &Instance) -> Self {
        let mut values = self.values.to_vec();
        values[p.index()] = donor.get(p).clone();
        match (&self.dense, &donor.dense) {
            (Some(a), Some(b)) => {
                let mut dense = a.to_vec();
                dense[p.index()] = b[p.index()];
                Instance::new_with_dense(values, dense)
            }
            _ => Instance::new(values),
        }
    }

    /// True if the two instances disagree on *every* parameter — the paper's
    /// Disjointness Condition (Def. 6): `CP_x[p] ≠ CP_y[p] ∀p`. When both
    /// sides carry dense encodings (necessarily from the same space, since
    /// they assign the same parameters), the check compares indices only.
    pub fn is_disjoint_from(&self, other: &Instance) -> bool {
        debug_assert_eq!(self.len(), other.len());
        if let (Some(a), Some(b)) = (&self.dense, &other.dense) {
            return a.iter().zip(b.iter()).all(|(x, y)| x != y);
        }
        self.values
            .iter()
            .zip(other.values.iter())
            .all(|(a, b)| a != b)
    }

    /// Number of parameters on which the two instances differ. The
    /// "most-different" heuristic (used when the Disjointness Condition cannot
    /// be met, paper §4.1) maximizes this.
    pub fn hamming_distance(&self, other: &Instance) -> usize {
        debug_assert_eq!(self.len(), other.len());
        if let (Some(a), Some(b)) = (&self.dense, &other.dense) {
            return a.iter().zip(b.iter()).filter(|(x, y)| x != y).count();
        }
        self.values
            .iter()
            .zip(other.values.iter())
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Parameters on which the two instances agree, with the shared value —
    /// the intersection `CP_current ∩ CP_f` computed at the end of Shortcut.
    pub fn shared_pairs<'a>(
        &'a self,
        other: &'a Instance,
    ) -> impl Iterator<Item = (ParamId, &'a Value)> + 'a {
        debug_assert_eq!(self.len(), other.len());
        self.values
            .iter()
            .zip(other.values.iter())
            .enumerate()
            .filter(|(_, (a, b))| a == b)
            .map(|(i, (a, _))| (ParamId(i as u32), a))
    }

    /// Renders the instance with parameter names, e.g.
    /// `{Dataset=Iris, Estimator=Gradient Boosting, Library Version=2}`.
    pub fn display<'a>(&'a self, space: &'a ParamSpace) -> InstanceDisplay<'a> {
        InstanceDisplay {
            instance: self,
            space,
        }
    }
}

/// Named rendering of an [`Instance`]; see [`Instance::display`].
pub struct InstanceDisplay<'a> {
    instance: &'a Instance,
    space: &'a ParamSpace,
}

impl fmt::Display for InstanceDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (id, def)) in self.space.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", def.name(), self.instance.get(id))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamSpace;

    fn space3() -> std::sync::Arc<ParamSpace> {
        ParamSpace::builder()
            .categorical("Dataset", ["Iris", "Digits", "Images"])
            .categorical("Estimator", ["LR", "DT", "GB"])
            .ordinal("Version", [1, 2])
            .build()
    }

    #[test]
    fn from_pairs_roundtrip() {
        let s = space3();
        let i = Instance::from_pairs(
            &s,
            [
                ("Version", Value::from(2)),
                ("Dataset", Value::from("Iris")),
                ("Estimator", Value::from("GB")),
            ],
        );
        assert_eq!(i.get(s.by_name("Dataset").unwrap()), &Value::from("Iris"));
        assert_eq!(i.get(s.by_name("Version").unwrap()), &Value::from(2));
        assert_eq!(
            i.display(&s).to_string(),
            "{Dataset=Iris, Estimator=GB, Version=2}"
        );
    }

    #[test]
    #[should_panic(expected = "not assigned")]
    fn from_pairs_missing_param_panics() {
        let s = space3();
        let _ = Instance::from_pairs(&s, [("Dataset", Value::from("Iris"))]);
    }

    #[test]
    #[should_panic(expected = "outside the universe")]
    fn from_pairs_unknown_value_panics() {
        let s = space3();
        let _ = Instance::from_pairs(
            &s,
            [
                ("Dataset", Value::from("Wine")),
                ("Estimator", Value::from("GB")),
                ("Version", Value::from(1)),
            ],
        );
    }

    #[test]
    fn disjointness_and_hamming() {
        let s = space3();
        let f = Instance::from_pairs(
            &s,
            [
                ("Dataset", "Iris".into()),
                ("Estimator", "GB".into()),
                ("Version", 2.into()),
            ],
        );
        let g = Instance::from_pairs(
            &s,
            [
                ("Dataset", "Digits".into()),
                ("Estimator", "DT".into()),
                ("Version", 1.into()),
            ],
        );
        assert!(f.is_disjoint_from(&g));
        assert_eq!(f.hamming_distance(&g), 3);
        let h = g.with(s.by_name("Version").unwrap(), 2.into());
        assert!(!f.is_disjoint_from(&h));
        assert_eq!(f.hamming_distance(&h), 2);
    }

    #[test]
    fn shared_pairs_is_intersection() {
        let s = space3();
        let a = Instance::from_pairs(
            &s,
            [
                ("Dataset", "Iris".into()),
                ("Estimator", "GB".into()),
                ("Version", 2.into()),
            ],
        );
        let b = a.with(s.by_name("Dataset").unwrap(), "Digits".into());
        let shared: Vec<_> = a.shared_pairs(&b).collect();
        assert_eq!(shared.len(), 2);
        assert_eq!(shared[0].0, s.by_name("Estimator").unwrap());
        assert_eq!(shared[1].1, &Value::from(2));
    }

    #[test]
    fn with_does_not_mutate_original() {
        let s = space3();
        let a = Instance::from_pairs(
            &s,
            [
                ("Dataset", "Iris".into()),
                ("Estimator", "GB".into()),
                ("Version", 2.into()),
            ],
        );
        let b = a.with(s.by_name("Version").unwrap(), 1.into());
        assert_eq!(a.get(s.by_name("Version").unwrap()), &Value::from(2));
        assert_eq!(b.get(s.by_name("Version").unwrap()), &Value::from(1));
    }
}
