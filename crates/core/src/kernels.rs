//! Chunked word kernels for the bitset query substrate.
//!
//! Every hot query in the provenance store — predicate OR-accumulation over
//! frozen epoch blocks, conjunction ANDs, support popcounts — reduces to a
//! handful of slice primitives over `&[u64]`. They live here so `RunSet`,
//! `ProvenanceStore`'s epoch scans, and the store's replay paths share one
//! set of loops tuned for the autovectorizer instead of three ad-hoc copies.
//!
//! # Autovectorization contract
//!
//! These kernels are written so LLVM's autovectorizer reliably emits SIMD
//! without any `unsafe`, intrinsics, or nightly features:
//!
//! * **No indexing in hot loops.** Inner word loops iterate
//!   `chunks_exact` / `chunks_exact_mut` blocks and fixed-size `[u64; CHUNK]`
//!   accumulators with constant indices; slice indexing (and its bounds
//!   checks, which block vectorization) appears only once per chunk, at
//!   chunk granularity, never per word.
//! * **Chunk width of 4 words.** 4 × `u64` = 256 bits matches one AVX2
//!   register (two SSE2 / NEON registers), wide enough that the reduction
//!   kernels keep 4 independent accumulators (hiding the `popcnt` latency
//!   chain) and narrow enough that the scalar remainder is at most 3 words.
//!   The remainder loops are plain zips — exact, just not vectorized.
//! * **Length mismatches clamp to the shorter operand** (missing words read
//!   as 0), matching `RunSet`'s historical semantics; kernels never
//!   allocate or grow.
//!
//! The multi-source kernels ([`or_multi_into`], [`and_or_multi_into`],
//! [`and_or_popcount`]) additionally require every source to be at least as
//! long as the destination — they serve the frozen-epoch path, where every
//! value row is exactly `epoch_words` long — and fuse the OR-accumulate
//! with the consuming AND/popcount so the destination is written (or the
//! count produced) in a single pass, instead of materializing the OR and
//! re-reading it.
//!
//! The *term* kernels ([`or_terms_into`], [`and_terms_into`],
//! [`and_terms_popcount`]) consume the store's prefix-OR epoch encoding:
//! their operand is a union of plain rows plus `hi & !lo` difference pairs
//! of cumulative rows, which is how a contiguous range of values reads out
//! of a prefix-encoded block. Same ≥-length source contract.

/// Words per vectorized chunk; see the module docs for the rationale.
pub const CHUNK: usize = 4;

/// `dst[i] |= src[i]` over the common prefix (`min(dst.len(), src.len())`).
#[inline]
pub fn or_into(dst: &mut [u64], src: &[u64]) {
    let n = dst.len().min(src.len());
    let (dst, src) = (&mut dst[..n], &src[..n]);
    let mut d = dst.chunks_exact_mut(CHUNK);
    let mut s = src.chunks_exact(CHUNK);
    for (d4, s4) in d.by_ref().zip(s.by_ref()) {
        d4[0] |= s4[0];
        d4[1] |= s4[1];
        d4[2] |= s4[2];
        d4[3] |= s4[3];
    }
    for (d, s) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *d |= s;
    }
}

/// `dst[i] &= src[i]` over the common prefix. Words of `dst` beyond `src`'s
/// length are untouched — callers that want AND-with-implicit-zeros (e.g.
/// [`RunSet::and_assign`](crate::RunSet::and_assign)) clear the tail
/// themselves.
#[inline]
pub fn and_into(dst: &mut [u64], src: &[u64]) {
    let n = dst.len().min(src.len());
    let (dst, src) = (&mut dst[..n], &src[..n]);
    let mut d = dst.chunks_exact_mut(CHUNK);
    let mut s = src.chunks_exact(CHUNK);
    for (d4, s4) in d.by_ref().zip(s.by_ref()) {
        d4[0] &= s4[0];
        d4[1] &= s4[1];
        d4[2] &= s4[2];
        d4[3] &= s4[3];
    }
    for (d, s) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *d &= s;
    }
}

/// Total set bits in `a`.
#[inline]
pub fn popcount(a: &[u64]) -> usize {
    let mut c = [0usize; CHUNK];
    let mut chunks = a.chunks_exact(CHUNK);
    for a4 in chunks.by_ref() {
        c[0] += a4[0].count_ones() as usize;
        c[1] += a4[1].count_ones() as usize;
        c[2] += a4[2].count_ones() as usize;
        c[3] += a4[3].count_ones() as usize;
    }
    let rem: usize = chunks.remainder().iter().map(|w| w.count_ones() as usize).sum();
    c[0] + c[1] + c[2] + c[3] + rem
}

/// `|a ∩ b|`: popcount of the pairwise AND over the common prefix, fused so
/// the intersection is never materialized.
#[inline]
pub fn and_popcount(a: &[u64], b: &[u64]) -> usize {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut c = [0usize; CHUNK];
    let mut ac = a.chunks_exact(CHUNK);
    let mut bc = b.chunks_exact(CHUNK);
    for (a4, b4) in ac.by_ref().zip(bc.by_ref()) {
        c[0] += (a4[0] & b4[0]).count_ones() as usize;
        c[1] += (a4[1] & b4[1]).count_ones() as usize;
        c[2] += (a4[2] & b4[2]).count_ones() as usize;
        c[3] += (a4[3] & b4[3]).count_ones() as usize;
    }
    let rem: usize = ac
        .remainder()
        .iter()
        .zip(bc.remainder())
        .map(|(x, y)| (x & y).count_ones() as usize)
        .sum();
    c[0] + c[1] + c[2] + c[3] + rem
}

/// True if every word of `a` is zero.
#[inline]
pub fn is_zero(a: &[u64]) -> bool {
    let mut chunks = a.chunks_exact(CHUNK);
    for a4 in chunks.by_ref() {
        if a4[0] | a4[1] | a4[2] | a4[3] != 0 {
            return false;
        }
    }
    chunks.remainder().iter().all(|&w| w == 0)
}

/// True if `a` and `b` share any set bit (over the common prefix).
#[inline]
pub fn and_any(a: &[u64], b: &[u64]) -> bool {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut ac = a.chunks_exact(CHUNK);
    let mut bc = b.chunks_exact(CHUNK);
    for (a4, b4) in ac.by_ref().zip(bc.by_ref()) {
        if (a4[0] & b4[0]) | (a4[1] & b4[1]) | (a4[2] & b4[2]) | (a4[3] & b4[3]) != 0 {
            return true;
        }
    }
    ac.remainder()
        .iter()
        .zip(bc.remainder())
        .any(|(x, y)| x & y != 0)
}

/// True if `a` has a set bit outside `b` (`a \ b ≠ ∅`; words of `b` past its
/// length read as 0). `!and_not_any(a, b)` is the subset test `a ⊆ b`.
#[inline]
pub fn and_not_any(a: &[u64], b: &[u64]) -> bool {
    let n = a.len().min(b.len());
    {
        let (a, b) = (&a[..n], &b[..n]);
        let mut ac = a.chunks_exact(CHUNK);
        let mut bc = b.chunks_exact(CHUNK);
        for (a4, b4) in ac.by_ref().zip(bc.by_ref()) {
            if (a4[0] & !b4[0]) | (a4[1] & !b4[1]) | (a4[2] & !b4[2]) | (a4[3] & !b4[3]) != 0 {
                return true;
            }
        }
        if ac
            .remainder()
            .iter()
            .zip(bc.remainder())
            .any(|(x, y)| x & !y != 0)
        {
            return true;
        }
    }
    a[n..].iter().any(|&w| w != 0)
}

/// `dst = srcs[0] | srcs[1] | …`, overwriting `dst` in a single pass.
/// Every source must be at least `dst.len()` words long; an empty source
/// list clears `dst`.
#[inline]
pub fn or_multi_into(dst: &mut [u64], srcs: &[&[u64]]) {
    match srcs {
        [] => dst.fill(0),
        [s] => dst.copy_from_slice(&s[..dst.len()]),
        [first, rest @ ..] => {
            dst.copy_from_slice(&first[..dst.len()]);
            let mut i = 0;
            let mut chunks = dst.chunks_exact_mut(CHUNK);
            for d4 in chunks.by_ref() {
                let mut m = [0u64; CHUNK];
                for src in rest {
                    let s4 = &src[i..i + CHUNK];
                    m[0] |= s4[0];
                    m[1] |= s4[1];
                    m[2] |= s4[2];
                    m[3] |= s4[3];
                }
                d4[0] |= m[0];
                d4[1] |= m[1];
                d4[2] |= m[2];
                d4[3] |= m[3];
                i += CHUNK;
            }
            for (k, d) in chunks.into_remainder().iter_mut().enumerate() {
                let mut m = 0u64;
                for src in rest {
                    m |= src[i + k];
                }
                *d |= m;
            }
        }
    }
}

/// `acc[i] &= (srcs[0][i] | srcs[1][i] | …)`, the AND-of-OR step of
/// conjunction evaluation, fused so the OR is never materialized. Every
/// source must be at least `acc.len()` words long; an empty source list
/// clears `acc` (an OR over nothing is ∅).
#[inline]
pub fn and_or_multi_into(acc: &mut [u64], srcs: &[&[u64]]) {
    match srcs {
        [] => acc.fill(0),
        [s] => and_into(acc, &s[..acc.len()]),
        _ => {
            let mut i = 0;
            let mut chunks = acc.chunks_exact_mut(CHUNK);
            for a4 in chunks.by_ref() {
                let mut m = [0u64; CHUNK];
                for src in srcs {
                    let s4 = &src[i..i + CHUNK];
                    m[0] |= s4[0];
                    m[1] |= s4[1];
                    m[2] |= s4[2];
                    m[3] |= s4[3];
                }
                a4[0] &= m[0];
                a4[1] &= m[1];
                a4[2] &= m[2];
                a4[3] &= m[3];
                i += CHUNK;
            }
            for (k, a) in chunks.into_remainder().iter_mut().enumerate() {
                let mut m = 0u64;
                for src in srcs {
                    m |= src[i + k];
                }
                *a &= m;
            }
        }
    }
}

/// `|a ∩ (srcs[0] ∪ srcs[1] ∪ …)|` in one fused pass — the whole support
/// count of a single-predicate conjunction against an outcome bitset,
/// without materializing either the OR or the intersection. Every source
/// must be at least `a.len()` words long.
#[inline]
pub fn and_or_popcount(a: &[u64], srcs: &[&[u64]]) -> usize {
    match srcs {
        [] => 0,
        [s] => and_popcount(a, &s[..a.len()]),
        _ => {
            let mut c = [0usize; CHUNK];
            let mut i = 0;
            let mut chunks = a.chunks_exact(CHUNK);
            for a4 in chunks.by_ref() {
                let mut m = [0u64; CHUNK];
                for src in srcs {
                    let s4 = &src[i..i + CHUNK];
                    m[0] |= s4[0];
                    m[1] |= s4[1];
                    m[2] |= s4[2];
                    m[3] |= s4[3];
                }
                c[0] += (a4[0] & m[0]).count_ones() as usize;
                c[1] += (a4[1] & m[1]).count_ones() as usize;
                c[2] += (a4[2] & m[2]).count_ones() as usize;
                c[3] += (a4[3] & m[3]).count_ones() as usize;
                i += CHUNK;
            }
            let mut rem = 0usize;
            for (k, a) in chunks.remainder().iter().enumerate() {
                let mut m = 0u64;
                for src in srcs {
                    m |= src[i + k];
                }
                rem += (a & m).count_ones() as usize;
            }
            c[0] + c[1] + c[2] + c[3] + rem
        }
    }
}

/// One chunk of the union `U = ∪ full ∪ (hi \ lo)` of a term list: plain
/// sources OR'd whole, difference pairs contributing `hi & !lo`. The shape
/// the prefix-OR epoch encoding produces — a predicate's satisfying values
/// are a union of ≤ 2 contiguous value ranges, each range being either one
/// prefix row (`full`, range starting at value 0) or a `hi & !lo` pair of
/// prefix rows — so the term kernels below evaluate a whole predicate from
/// 1–4 row reads regardless of how many values it allows.
#[inline(always)]
fn union_chunk(full: &[&[u64]], diff: &[(&[u64], &[u64])], i: usize) -> [u64; CHUNK] {
    let mut m = [0u64; CHUNK];
    for src in full {
        let s4 = &src[i..i + CHUNK];
        m[0] |= s4[0];
        m[1] |= s4[1];
        m[2] |= s4[2];
        m[3] |= s4[3];
    }
    for (hi, lo) in diff {
        let h4 = &hi[i..i + CHUNK];
        let l4 = &lo[i..i + CHUNK];
        m[0] |= h4[0] & !l4[0];
        m[1] |= h4[1] & !l4[1];
        m[2] |= h4[2] & !l4[2];
        m[3] |= h4[3] & !l4[3];
    }
    m
}

/// One remainder word of the same union.
#[inline(always)]
fn union_word(full: &[&[u64]], diff: &[(&[u64], &[u64])], j: usize) -> u64 {
    let mut m = 0u64;
    for src in full {
        m |= src[j];
    }
    for (hi, lo) in diff {
        m |= hi[j] & !lo[j];
    }
    m
}

/// `dst = (∪ full) ∪ (∪ hi \ lo)`, overwriting `dst` in one pass. Every
/// source (plain or pair member) must be at least `dst.len()` words long;
/// empty term lists clear `dst`.
#[inline]
pub fn or_terms_into(dst: &mut [u64], full: &[&[u64]], diff: &[(&[u64], &[u64])]) {
    if diff.is_empty() {
        return or_multi_into(dst, full);
    }
    let mut i = 0;
    let mut chunks = dst.chunks_exact_mut(CHUNK);
    for d4 in chunks.by_ref() {
        let m = union_chunk(full, diff, i);
        d4[0] = m[0];
        d4[1] = m[1];
        d4[2] = m[2];
        d4[3] = m[3];
        i += CHUNK;
    }
    for (k, d) in chunks.into_remainder().iter_mut().enumerate() {
        *d = union_word(full, diff, i + k);
    }
}

/// `acc &= (∪ full) ∪ (∪ hi \ lo)` — the AND-of-union step of conjunction
/// evaluation against prefix-encoded rows, fused so the union is never
/// materialized. Same operand contract as [`or_terms_into`].
#[inline]
pub fn and_terms_into(acc: &mut [u64], full: &[&[u64]], diff: &[(&[u64], &[u64])]) {
    if diff.is_empty() {
        return and_or_multi_into(acc, full);
    }
    let mut i = 0;
    let mut chunks = acc.chunks_exact_mut(CHUNK);
    for a4 in chunks.by_ref() {
        let m = union_chunk(full, diff, i);
        a4[0] &= m[0];
        a4[1] &= m[1];
        a4[2] &= m[2];
        a4[3] &= m[3];
        i += CHUNK;
    }
    for (k, a) in chunks.into_remainder().iter_mut().enumerate() {
        *a &= union_word(full, diff, i + k);
    }
}

/// `|a ∩ ((∪ full) ∪ (∪ hi \ lo))|` in one fused pass. Same operand contract
/// as [`or_terms_into`], with sources at least `a.len()` words long.
#[inline]
pub fn and_terms_popcount(a: &[u64], full: &[&[u64]], diff: &[(&[u64], &[u64])]) -> usize {
    if diff.is_empty() {
        return and_or_popcount(a, full);
    }
    let mut c = [0usize; CHUNK];
    let mut i = 0;
    let mut chunks = a.chunks_exact(CHUNK);
    for a4 in chunks.by_ref() {
        let m = union_chunk(full, diff, i);
        c[0] += (a4[0] & m[0]).count_ones() as usize;
        c[1] += (a4[1] & m[1]).count_ones() as usize;
        c[2] += (a4[2] & m[2]).count_ones() as usize;
        c[3] += (a4[3] & m[3]).count_ones() as usize;
        i += CHUNK;
    }
    let mut rem = 0usize;
    for (k, a) in chunks.remainder().iter().enumerate() {
        rem += (a & union_word(full, diff, i + k)).count_ones() as usize;
    }
    c[0] + c[1] + c[2] + c[3] + rem
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn or_and_clamp_to_shorter_operand() {
        let mut d = vec![1u64, 2, 4];
        or_into(&mut d, &[0xF0, 0x0F]);
        assert_eq!(d, vec![0xF1, 0x0F, 4]);
        let mut d = vec![u64::MAX; 3];
        and_into(&mut d, &[0x3, 0x5]);
        assert_eq!(d, vec![0x3, 0x5, u64::MAX], "tail untouched by contract");
    }

    #[test]
    fn popcounts_and_predicates() {
        let a = [0b1011u64, 0, u64::MAX, 0b1];
        let b = [0b0010u64, 0b1, u64::MAX, 0];
        assert_eq!(popcount(&a), 3 + 64 + 1);
        assert_eq!(and_popcount(&a, &b), 1 + 64);
        assert!(and_any(&a, &b));
        assert!(!and_any(&[0b100], &[0b011]));
        assert!(is_zero(&[0, 0, 0, 0, 0]));
        assert!(!is_zero(&[0, 0, 0, 0, 1]));
        assert!(is_zero(&[]));
    }

    #[test]
    fn and_not_any_is_the_subset_complement() {
        assert!(!and_not_any(&[0b01, 0], &[0b11]), "short b, zero a tail");
        assert!(and_not_any(&[0b01, 0b1], &[0b11]), "set bit past b's end");
        assert!(and_not_any(&[0b100], &[0b011]));
        assert!(!and_not_any(&[], &[1, 2, 3]));
    }

    #[test]
    fn multi_source_fusions() {
        let s1 = vec![0b001u64; 9];
        let s2 = vec![0b010u64; 9];
        let s3 = vec![0b100u64; 9];
        let srcs: Vec<&[u64]> = vec![&s1, &s2, &s3];
        let mut dst = vec![u64::MAX; 9];
        or_multi_into(&mut dst, &srcs);
        assert_eq!(dst, vec![0b111u64; 9]);
        let mut acc = vec![0b101u64; 9];
        and_or_multi_into(&mut acc, &srcs[..2]);
        assert_eq!(acc, vec![0b001u64; 9]);
        assert_eq!(and_or_popcount(&vec![0b110u64; 9], &srcs), 2 * 9);
        or_multi_into(&mut dst, &[]);
        assert!(is_zero(&dst));
        and_or_multi_into(&mut acc, &[]);
        assert!(is_zero(&acc));
        assert_eq!(and_or_popcount(&dst, &[]), 0);
    }

    #[test]
    fn term_kernels_union_full_rows_and_differences() {
        // Prefix rows of a 3-value domain: lo ⊂ mid ⊂ hi.
        let lo = vec![0b001u64; 9];
        let mid = vec![0b011u64; 9];
        let hi = vec![0b111u64; 9];
        // Range [1, 2] = hi \ lo, plus the full range [0, 0] = lo.
        let full: Vec<&[u64]> = vec![&lo];
        let diff: Vec<(&[u64], &[u64])> = vec![(&hi, &lo)];
        let mut dst = vec![u64::MAX; 9];
        or_terms_into(&mut dst, &full, &diff);
        assert_eq!(dst, vec![0b111u64; 9]);
        or_terms_into(&mut dst, &[], &diff);
        assert_eq!(dst, vec![0b110u64; 9], "difference alone");
        or_terms_into(&mut dst, &[], &[(&mid, &lo)]);
        assert_eq!(dst, vec![0b010u64; 9], "single-value range [1, 1]");
        let mut acc = vec![0b101u64; 9];
        and_terms_into(&mut acc, &[], &diff);
        assert_eq!(acc, vec![0b100u64; 9]);
        assert_eq!(and_terms_popcount(&vec![0b101u64; 9], &[], &diff), 9);
        assert_eq!(and_terms_popcount(&vec![0b101u64; 9], &full, &diff), 2 * 9);
        or_terms_into(&mut dst, &[], &[]);
        assert!(is_zero(&dst), "empty terms clear");
    }
}
