//! # bugdoc-core
//!
//! The vocabulary of the BugDoc reproduction (Lourenço, Freire, Shasha:
//! *BugDoc: Algorithms to Debug Computational Processes*, SIGMOD 2020):
//! parameter spaces and value universes, pipeline instances, evaluations,
//! parameter-comparator-value predicates, root causes (conjunctions / DNF)
//! with a canonical semantic form, and the provenance store of executed
//! instances.
//!
//! Everything else in the workspace — the execution engine, the debugging
//! algorithms (Shortcut, Stacked Shortcut, Debugging Decision Trees), the
//! baselines (Data X-Ray, Explanation Tables, SMAC), the synthetic and
//! real-world pipelines, and the evaluation harness — is written against the
//! types in this crate.
//!
//! ## Model recap (paper §3)
//!
//! * A pipeline `CP` has parameters `P`; each `p ∈ P` has a finite value
//!   universe `U_p` ([`ParamSpace`], [`Domain`]).
//! * An instance `CP_i` assigns a value to every parameter ([`Instance`]).
//! * An evaluation `E(CP_i) ∈ {succeed, fail}` ([`Outcome`], [`EvalResult`]).
//! * A hypothetical root cause is a conjunction of triples like `A > 5`
//!   ([`Predicate`], [`Conjunction`]); it is *definitive* if no succeeding
//!   instance satisfies it and *minimal* if no proper subset is definitive.
//! * The execution history is the provenance ([`ProvenanceStore`]).

#![warn(missing_docs)]

mod bitset;
mod cause;
mod fx;
pub mod kernels;
mod instance;
mod outcome;
mod param;
mod predicate;
mod provenance;
mod value;

pub use bitset::{Ones, RunSet};
pub use cause::{CanonicalCause, Conjunction, ConjunctionDisplay, Dnf, DnfDisplay};
pub use fx::{hash_dense_key, FxBuildHasher, FxHasher};
pub use instance::{Instance, InstanceDisplay};
pub use outcome::{EvalResult, Outcome};
pub use param::{Domain, DomainKind, InstanceIter, ParamDef, ParamId, ParamSpace, ParamSpaceBuilder};
pub use predicate::{Comparator, Predicate, PredicateDisplay};
pub use provenance::{
    EpochSummary, ProvenanceStore, Run, SupportBounds, TsvError, DEFAULT_EPOCH_RUNS,
    DEFAULT_PARALLEL_MIN_EPOCHS,
};
pub use value::{Value, F64};
