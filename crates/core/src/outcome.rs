//! Evaluation outcomes.
//!
//! The evaluation procedure `E` maps an instance to `succeed` if its results
//! are acceptable and `fail` otherwise (paper §3, Def. 2). Evaluation is
//! normally code inspecting some property of the result — e.g. "score ≥ 0.6"
//! in the Figure-1 pipeline — so [`EvalResult`] optionally carries the raw
//! score alongside the binary outcome.

use std::fmt;

/// The binary evaluation `E(CP_i)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The results are acceptable.
    Succeed,
    /// The results are erroneous, unexpected, or the run crashed.
    Fail,
}

impl Outcome {
    /// True for [`Outcome::Fail`].
    pub fn is_fail(self) -> bool {
        self == Outcome::Fail
    }

    /// True for [`Outcome::Succeed`].
    pub fn is_succeed(self) -> bool {
        self == Outcome::Succeed
    }

    /// Builds an outcome from a predicate over the run's result, mirroring how
    /// evaluation procedures are written in practice: `Outcome::from_check(score >= 0.6)`.
    pub fn from_check(acceptable: bool) -> Self {
        if acceptable {
            Outcome::Succeed
        } else {
            Outcome::Fail
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Succeed => write!(f, "succeed"),
            Outcome::Fail => write!(f, "fail"),
        }
    }
}

/// A full evaluation result: the binary outcome plus, when the pipeline
/// produces one, the underlying quantitative score (e.g. an F-measure or FID).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// The binary evaluation.
    pub outcome: Outcome,
    /// The raw score the evaluation procedure thresholded, if any.
    pub score: Option<f64>,
}

impl EvalResult {
    /// A result with no underlying score (e.g. crash/no-crash pipelines).
    pub fn of(outcome: Outcome) -> Self {
        EvalResult {
            outcome,
            score: None,
        }
    }

    /// A result produced by thresholding `score` from below: succeed iff
    /// `score >= threshold`.
    pub fn from_score_at_least(score: f64, threshold: f64) -> Self {
        EvalResult {
            outcome: Outcome::from_check(score >= threshold),
            score: Some(score),
        }
    }

    /// A result produced by thresholding `score` from above: succeed iff
    /// `score <= threshold` (e.g. FID in the GAN pipeline, paper §5.3).
    pub fn from_score_at_most(score: f64, threshold: f64) -> Self {
        EvalResult {
            outcome: Outcome::from_check(score <= threshold),
            score: Some(score),
        }
    }
}

impl From<Outcome> for EvalResult {
    fn from(outcome: Outcome) -> Self {
        EvalResult::of(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_check() {
        assert_eq!(Outcome::from_check(true), Outcome::Succeed);
        assert_eq!(Outcome::from_check(false), Outcome::Fail);
        assert!(Outcome::Fail.is_fail());
        assert!(!Outcome::Fail.is_succeed());
    }

    #[test]
    fn threshold_constructors() {
        // Figure-1 evaluation: succeed iff score >= 0.6.
        assert!(EvalResult::from_score_at_least(0.9, 0.6).outcome.is_succeed());
        assert!(EvalResult::from_score_at_least(0.2, 0.6).outcome.is_fail());
        assert!(EvalResult::from_score_at_least(0.6, 0.6).outcome.is_succeed());
        // GAN evaluation: succeed iff FID <= threshold.
        assert!(EvalResult::from_score_at_most(30.0, 50.0).outcome.is_succeed());
        assert!(EvalResult::from_score_at_most(120.0, 50.0).outcome.is_fail());
    }

    #[test]
    fn display() {
        assert_eq!(Outcome::Succeed.to_string(), "succeed");
        assert_eq!(Outcome::Fail.to_string(), "fail");
    }
}
