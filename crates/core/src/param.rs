//! Parameter definitions and parameter spaces.
//!
//! A computational pipeline `CP` exposes a set of manipulable parameters `P`
//! (hyperparameters, input data selectors, program versions, modules — paper
//! §3 Def. 1). Each parameter has a finite *value universe* `U_p`: the set of
//! values assigned by any instance so far, optionally expanded by an explicit
//! domain declaration ("parameter satisfaction can take integer values between
//! 1 and 10").

use crate::fx::FxBuildHasher;
use crate::instance::Instance;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Index of a parameter within a [`ParamSpace`]. Stable for the lifetime of
/// the space; instances store values densely by this index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ParamId(pub u32);

impl ParamId {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ParamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Whether a domain is ordered. Ordinal domains admit the `≤` and `>`
/// comparators in root causes; categorical domains admit only `=` and `≠`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainKind {
    /// Ordered values (temperatures, learning rates, versions).
    Ordinal,
    /// Unordered labels (colors, estimator names).
    Categorical,
}

/// The finite value universe of one parameter.
///
/// Values are stored deduplicated; ordinal domains are kept sorted so that a
/// value's domain index is also its rank, which the canonical root-cause form
/// exploits (prefix sets ⇔ `≤` predicates). A value→index hash table rides
/// along so [`Domain::index_of`] — the inner loop of dense instance encoding —
/// is a single cheap hash probe instead of a scan.
#[derive(Debug, Clone)]
pub struct Domain {
    kind: DomainKind,
    values: Vec<Value>,
    /// Value → domain index, kept in sync with `values`.
    index: HashMap<Value, u32, FxBuildHasher>,
}

impl PartialEq for Domain {
    fn eq(&self, other: &Self) -> bool {
        // `index` is derived from `values`; comparing it would be redundant.
        self.kind == other.kind && self.values == other.values
    }
}

impl Eq for Domain {}

impl Domain {
    fn with_values(kind: DomainKind, values: Vec<Value>) -> Self {
        let index = values
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i as u32))
            .collect();
        Domain {
            kind,
            values,
            index,
        }
    }

    /// Builds an ordinal (sorted, deduplicated) domain.
    pub fn ordinal(values: impl IntoIterator<Item = Value>) -> Self {
        let mut values: Vec<Value> = values.into_iter().collect();
        values.sort();
        values.dedup();
        Domain::with_values(DomainKind::Ordinal, values)
    }

    /// Builds a categorical (deduplicated, insertion-ordered) domain.
    pub fn categorical(values: impl IntoIterator<Item = Value>) -> Self {
        let mut seen = Vec::new();
        for v in values {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        Domain::with_values(DomainKind::Categorical, seen)
    }

    /// Domain kind.
    pub fn kind(&self) -> DomainKind {
        self.kind
    }

    /// True for ordinal domains.
    pub fn is_ordinal(&self) -> bool {
        self.kind == DomainKind::Ordinal
    }

    /// Number of values in the universe.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the universe is empty (a degenerate space).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The values, in domain order (sorted for ordinal domains).
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at a domain index.
    pub fn value(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// The domain index of a value, if present: one hash probe in the common
    /// case. A cross-variant numeric spelling (an `Int` literal probed
    /// against a `Float` domain) misses the exact-match table and falls back
    /// to the order-based search, which treats `2` and `2.0` as equal.
    pub fn index_of(&self, v: &Value) -> Option<usize> {
        if let Some(&i) = self.index.get(v) {
            return Some(i as usize);
        }
        if self.is_ordinal() {
            self.values.binary_search(v).ok()
        } else {
            self.values.iter().position(|x| x == v)
        }
    }

    /// Like [`Domain::index_of`] but *without* the cross-variant fallback:
    /// only a value identical (by `Eq`) to a stored domain value matches.
    /// Dense instance encoding uses this so the bitset index never classifies
    /// a run under a value that compares unequal to the one it actually
    /// stores (predicates apply `Eq`, where `Int(2) != Float(2.0)`).
    pub fn exact_index_of(&self, v: &Value) -> Option<usize> {
        self.index.get(v).map(|&i| i as usize)
    }

    /// True if the value belongs to the universe.
    pub fn contains(&self, v: &Value) -> bool {
        self.index_of(v).is_some()
    }

    /// Extends the universe with a newly observed value (paper §3: `U_p` grows
    /// as new instances assign new values). Returns the value's domain index.
    /// Ordinal domains stay sorted (a middle insertion re-indexes the tail).
    ///
    /// **Freeze invariant:** domain indices are the currency of the dense
    /// instance encoding — cached [`Instance::dense_key`]s, the provenance
    /// store's value bitsets, and the executor's read cache all assume they
    /// never change. Grow a domain only *before* building instances, stores,
    /// or executors against its space (spaces shared via `Arc` are immutable
    /// anyway; this only concerns pre-`build` mutation through
    /// [`ParamDef::domain_mut`]).
    pub fn observe(&mut self, v: Value) -> usize {
        if let Some(i) = self.index_of(&v) {
            return i;
        }
        if self.is_ordinal() {
            let pos = self.values.partition_point(|x| x < &v);
            self.values.insert(pos, v.clone());
            for (i, shifted) in self.values[pos..].iter().enumerate().skip(1) {
                self.index.insert(shifted.clone(), (pos + i) as u32);
            }
            self.index.insert(v, pos as u32);
            pos
        } else {
            self.values.push(v.clone());
            self.index.insert(v, (self.values.len() - 1) as u32);
            self.values.len() - 1
        }
    }
}

/// One manipulable parameter: a name and a value universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDef {
    name: String,
    domain: Domain,
}

impl ParamDef {
    /// Creates a parameter definition.
    pub fn new(name: impl Into<String>, domain: Domain) -> Self {
        ParamDef {
            name: name.into(),
            domain,
        }
    }

    /// The parameter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter's value universe.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Mutable access to the universe (for [`Domain::observe`]).
    pub fn domain_mut(&mut self) -> &mut Domain {
        &mut self.domain
    }
}

/// The full parameter space of a pipeline: the universe `U = {(p, U_p)}`.
///
/// Shared immutably (`Arc<ParamSpace>`) between the execution engine, the
/// provenance store, and the debugging algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSpace {
    params: Vec<ParamDef>,
}

impl ParamSpace {
    /// Creates a space from parameter definitions. Panics on duplicate names
    /// or empty domains — both are construction bugs, not runtime conditions.
    pub fn new(params: Vec<ParamDef>) -> Self {
        for (i, p) in params.iter().enumerate() {
            assert!(
                !p.domain().is_empty(),
                "parameter {:?} has an empty value universe",
                p.name()
            );
            assert!(
                !params[..i].iter().any(|q| q.name() == p.name()),
                "duplicate parameter name {:?}",
                p.name()
            );
        }
        ParamSpace { params }
    }

    /// A fluent builder.
    pub fn builder() -> ParamSpaceBuilder {
        ParamSpaceBuilder { params: Vec::new() }
    }

    /// Number of parameters `|P|`.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True if the space has no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// The definition of a parameter.
    pub fn param(&self, id: ParamId) -> &ParamDef {
        &self.params[id.index()]
    }

    /// The domain of a parameter.
    pub fn domain(&self, id: ParamId) -> &Domain {
        self.params[id.index()].domain()
    }

    /// Looks a parameter up by name.
    pub fn by_name(&self, name: &str) -> Option<ParamId> {
        self.params
            .iter()
            .position(|p| p.name() == name)
            .map(|i| ParamId(i as u32))
    }

    /// Iterates over all parameter ids in index order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.params.len() as u32).map(ParamId)
    }

    /// Iterates over `(id, def)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &ParamDef)> {
        self.params
            .iter()
            .enumerate()
            .map(|(i, p)| (ParamId(i as u32), p))
    }

    /// The dense encoding of an instance: each parameter's value replaced by
    /// its domain index. `None` if any value is not *identical* to a domain
    /// value (or the arity differs) — such instances fall back to
    /// value-based handling in the provenance store. Identity is deliberate:
    /// a `Float(2.0)` stored against an `Int` domain must not be indexed
    /// under `Int(2)`, or bitset predicate evaluation would disagree with
    /// `Conjunction::satisfied_by`'s `Eq` semantics.
    ///
    /// The cached key on the instance itself ([`Instance::dense_key`]) is
    /// preferred when present; this method is the recompute path.
    pub fn encode(&self, instance: &Instance) -> Option<Box<[u32]>> {
        if instance.len() != self.len() {
            return None;
        }
        let mut key = Vec::with_capacity(self.len());
        for (def, v) in self.params.iter().zip(instance.values()) {
            key.push(def.domain().exact_index_of(v)? as u32);
        }
        Some(key.into_boxed_slice())
    }

    /// Materializes the instance denoted by a dense encoding (inverse of
    /// [`ParamSpace::encode`]); the result carries the encoding. Panics on
    /// arity mismatch or out-of-range indices.
    pub fn instance_from_indices(&self, indices: &[u32]) -> Instance {
        self.instance_from_owned_indices(indices.to_vec())
    }

    /// [`instance_from_indices`](Self::instance_from_indices) taking the
    /// encoding by value, so the instance reuses the caller's buffer instead
    /// of copying it — worth it on bulk paths (WAL replay materializes one
    /// encoding per recovered run).
    pub fn instance_from_owned_indices(&self, indices: Vec<u32>) -> Instance {
        assert_eq!(indices.len(), self.len(), "dense key arity mismatch");
        let values: Vec<Value> = self
            .params
            .iter()
            .zip(&indices)
            .map(|(def, &i)| def.domain().value(i as usize).clone())
            .collect();
        Instance::new_with_dense(values, indices)
    }

    /// Size of the Cartesian product of all domains: the number of distinct
    /// pipeline instances. Saturates at `u128::MAX` (a 15-parameter, 30-value
    /// space is ~10^22, well within range).
    pub fn total_configurations(&self) -> u128 {
        self.params
            .iter()
            .map(|p| p.domain().len() as u128)
            .try_fold(1u128, |acc, n| acc.checked_mul(n))
            .unwrap_or(u128::MAX)
    }

    /// Lazily enumerates every instance in the space, in lexicographic order
    /// of domain indices. Intended for *small* spaces (exact semantic checks
    /// in tests and minimizers); real spaces are explored by sampling —
    /// exhaustive enumeration is exactly the combinatorial explosion BugDoc
    /// exists to avoid (paper §4).
    pub fn instances(&self) -> InstanceIter<'_> {
        InstanceIter {
            space: self,
            indices: vec![0; self.params.len()],
            done: self.params.iter().any(|p| p.domain().is_empty()),
        }
    }
}

/// Lazy iterator over all instances of a space; see [`ParamSpace::instances`].
pub struct InstanceIter<'a> {
    space: &'a ParamSpace,
    indices: Vec<usize>,
    done: bool,
}

impl Iterator for InstanceIter<'_> {
    type Item = crate::instance::Instance;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let dense: Vec<u32> = self.indices.iter().map(|&i| i as u32).collect();
        let instance = self.space.instance_from_indices(&dense);
        // Advance the mixed-radix counter.
        let mut carry = true;
        for (p, idx) in self.indices.iter_mut().enumerate().rev() {
            if !carry {
                break;
            }
            *idx += 1;
            if *idx == self.space.params[p].domain().len() {
                *idx = 0;
            } else {
                carry = false;
            }
        }
        if carry {
            self.done = true;
        }
        Some(instance)
    }
}

/// Builder for [`ParamSpace`].
pub struct ParamSpaceBuilder {
    params: Vec<ParamDef>,
}

impl ParamSpaceBuilder {
    /// Adds an ordinal parameter.
    pub fn ordinal(
        mut self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<Value>>,
    ) -> Self {
        self.params.push(ParamDef::new(
            name,
            Domain::ordinal(values.into_iter().map(Into::into)),
        ));
        self
    }

    /// Adds a categorical parameter.
    pub fn categorical(
        mut self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<Value>>,
    ) -> Self {
        self.params.push(ParamDef::new(
            name,
            Domain::categorical(values.into_iter().map(Into::into)),
        ));
        self
    }

    /// Adds a boolean parameter (`{false, true}`, ordinal).
    pub fn boolean(self, name: impl Into<String>) -> Self {
        self.ordinal(name, [false, true])
    }

    /// Finalizes the space.
    pub fn build(self) -> Arc<ParamSpace> {
        Arc::new(ParamSpace::new(self.params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinal_domain_sorts_and_dedups() {
        let d = Domain::ordinal([3, 1, 2, 1].map(Value::from));
        assert_eq!(d.len(), 3);
        assert_eq!(d.values(), &[1.into(), 2.into(), 3.into()]);
        assert_eq!(d.index_of(&2.into()), Some(1));
    }

    #[test]
    fn categorical_domain_preserves_order() {
        let d = Domain::categorical(["b", "a", "b"].map(Value::from));
        assert_eq!(d.values(), &["b".into(), "a".into()]);
        assert_eq!(d.index_of(&"a".into()), Some(1));
        assert!(!d.contains(&"c".into()));
    }

    #[test]
    fn observe_grows_universe() {
        let mut d = Domain::ordinal([1, 3].map(Value::from));
        assert_eq!(d.observe(2.into()), 1);
        assert_eq!(d.values(), &[1.into(), 2.into(), 3.into()]);
        // Re-observing is idempotent.
        assert_eq!(d.observe(2.into()), 1);
        assert_eq!(d.len(), 3);

        let mut c = Domain::categorical(["x"].map(Value::from));
        assert_eq!(c.observe("y".into()), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn space_lookup_and_size() {
        let space = ParamSpace::builder()
            .categorical("Dataset", ["Iris", "Digits", "Images"])
            .categorical(
                "Estimator",
                ["Logistic Regression", "Decision Tree", "Gradient Boosting"],
            )
            .ordinal("Library Version", [1.0, 2.0])
            .build();
        assert_eq!(space.len(), 3);
        assert_eq!(space.total_configurations(), 18);
        let est = space.by_name("Estimator").unwrap();
        assert_eq!(space.param(est).name(), "Estimator");
        assert!(space.by_name("nope").is_none());
        assert_eq!(space.ids().count(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_rejected() {
        ParamSpace::builder().boolean("x").boolean("x").build();
    }

    #[test]
    #[should_panic(expected = "empty value universe")]
    fn empty_domain_rejected() {
        ParamSpace::new(vec![ParamDef::new("p", Domain::ordinal(Vec::<Value>::new()))]);
    }

    #[test]
    fn total_configurations_saturates() {
        let mut params = Vec::new();
        for i in 0..200 {
            params.push(ParamDef::new(
                format!("p{i}"),
                Domain::ordinal((0..30).map(Value::from)),
            ));
        }
        let space = ParamSpace::new(params);
        assert_eq!(space.total_configurations(), u128::MAX);
    }
}

#[cfg(test)]
mod instance_iter_tests {
    use super::*;

    #[test]
    fn enumerates_full_product() {
        let space = ParamSpace::builder()
            .ordinal("a", [1, 2])
            .categorical("b", ["x", "y", "z"])
            .build();
        let all: Vec<_> = space.instances().collect();
        assert_eq!(all.len(), 6);
        // Lexicographic by domain index: a=1 block first.
        assert_eq!(all[0].values(), &[1.into(), "x".into()]);
        assert_eq!(all[5].values(), &[2.into(), "z".into()]);
        // All distinct.
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn single_param_space() {
        let space = ParamSpace::builder().ordinal("a", [1, 2, 3]).build();
        assert_eq!(space.instances().count(), 3);
    }
}
