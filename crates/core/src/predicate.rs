//! Parameter-comparator-value triples.
//!
//! Root causes are Boolean conjunctions of triples such as `A > 5` (paper §3,
//! Def. 3). The comparator set is `C = {=, ≤, >, ≠}` — exactly the set the
//! synthetic generator samples from (§5.1) — which is closed under negation:
//! `¬(=) is ≠` and `¬(≤) is >`.

use crate::instance::Instance;
use crate::param::{Domain, ParamId, ParamSpace};
use crate::value::Value;
use std::fmt;

/// A comparator in a parameter-comparator-value triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Comparator {
    /// `=`
    Eq,
    /// `≠`
    Neq,
    /// `≤`
    Le,
    /// `>`
    Gt,
}

impl Comparator {
    /// All comparators, in the paper's order `{=, ≤, >, ≠}`.
    pub const ALL: [Comparator; 4] = [
        Comparator::Eq,
        Comparator::Le,
        Comparator::Gt,
        Comparator::Neq,
    ];

    /// The comparators valid on categorical domains (`=`, `≠`).
    pub const CATEGORICAL: [Comparator; 2] = [Comparator::Eq, Comparator::Neq];

    /// Logical negation: `=↔≠`, `≤↔>`.
    pub fn negate(self) -> Comparator {
        match self {
            Comparator::Eq => Comparator::Neq,
            Comparator::Neq => Comparator::Eq,
            Comparator::Le => Comparator::Gt,
            Comparator::Gt => Comparator::Le,
        }
    }

    /// True if the comparator requires an ordered (ordinal) domain.
    pub fn needs_order(self) -> bool {
        matches!(self, Comparator::Le | Comparator::Gt)
    }

    /// Applies the comparator to two values.
    pub fn apply(self, lhs: &Value, rhs: &Value) -> bool {
        match self {
            Comparator::Eq => lhs == rhs,
            Comparator::Neq => lhs != rhs,
            Comparator::Le => lhs <= rhs,
            Comparator::Gt => lhs > rhs,
        }
    }
}

impl fmt::Display for Comparator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Comparator::Eq => write!(f, "="),
            Comparator::Neq => write!(f, "≠"),
            Comparator::Le => write!(f, "≤"),
            Comparator::Gt => write!(f, ">"),
        }
    }
}

/// A parameter-comparator-value triple, e.g. `Library Version = 2.0` or
/// `permutations > 800`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Predicate {
    /// The constrained parameter.
    pub param: ParamId,
    /// The comparator.
    pub cmp: Comparator,
    /// The reference value.
    pub value: Value,
}

impl Predicate {
    /// Creates a triple.
    pub fn new(param: ParamId, cmp: Comparator, value: impl Into<Value>) -> Self {
        Predicate {
            param,
            cmp,
            value: value.into(),
        }
    }

    /// Shorthand for an equality triple `p = v` — the form Shortcut asserts.
    pub fn eq(param: ParamId, value: impl Into<Value>) -> Self {
        Predicate::new(param, Comparator::Eq, value)
    }

    /// True if the instance satisfies the triple.
    pub fn satisfied_by(&self, instance: &Instance) -> bool {
        self.cmp.apply(instance.get(self.param), &self.value)
    }

    /// The logical negation of this triple (same parameter and value, negated
    /// comparator). Used when enumerating instances that *avoid* a root cause.
    pub fn negated(&self) -> Predicate {
        Predicate {
            param: self.param,
            cmp: self.cmp.negate(),
            value: self.value.clone(),
        }
    }

    /// The subset of `domain` indices whose values satisfy the triple — the
    /// predicate's extension over a finite universe, used by the canonical
    /// root-cause form.
    pub fn allowed_indices(&self, domain: &Domain) -> Vec<usize> {
        (0..domain.len())
            .filter(|&i| self.cmp.apply(domain.value(i), &self.value))
            .collect()
    }

    /// Renders the triple with the parameter's name.
    pub fn display<'a>(&'a self, space: &'a ParamSpace) -> PredicateDisplay<'a> {
        PredicateDisplay {
            predicate: self,
            space,
        }
    }
}

/// Named rendering of a [`Predicate`]; see [`Predicate::display`].
pub struct PredicateDisplay<'a> {
    predicate: &'a Predicate,
    space: &'a ParamSpace,
}

impl fmt::Display for PredicateDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}",
            self.space.param(self.predicate.param).name(),
            self.predicate.cmp,
            self.predicate.value
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamSpace;

    fn space() -> std::sync::Arc<ParamSpace> {
        ParamSpace::builder()
            .ordinal("n", [1, 2, 3, 4, 5])
            .categorical("color", ["red", "green", "blue"])
            .build()
    }

    #[test]
    fn comparator_apply() {
        let a = Value::from(3);
        let b = Value::from(5);
        assert!(Comparator::Le.apply(&a, &b));
        assert!(!Comparator::Gt.apply(&a, &b));
        assert!(Comparator::Neq.apply(&a, &b));
        assert!(Comparator::Eq.apply(&a, &a));
        assert!(Comparator::Le.apply(&a, &a));
        assert!(!Comparator::Gt.apply(&a, &a));
    }

    #[test]
    fn negation_is_involutive_and_complementary() {
        for cmp in Comparator::ALL {
            assert_eq!(cmp.negate().negate(), cmp);
            // Complementary: for any pair of values exactly one of cmp, ¬cmp holds.
            for (x, y) in [(1, 1), (1, 2), (2, 1)] {
                let x = Value::from(x);
                let y = Value::from(y);
                assert_ne!(cmp.apply(&x, &y), cmp.negate().apply(&x, &y));
            }
        }
    }

    #[test]
    fn predicate_satisfaction() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let color = s.by_name("color").unwrap();
        let inst = Instance::from_pairs(&s, [("n", 4.into()), ("color", "red".into())]);
        assert!(Predicate::new(n, Comparator::Gt, 3).satisfied_by(&inst));
        assert!(!Predicate::new(n, Comparator::Le, 3).satisfied_by(&inst));
        assert!(Predicate::eq(color, "red").satisfied_by(&inst));
        assert!(Predicate::new(color, Comparator::Neq, "blue").satisfied_by(&inst));
    }

    #[test]
    fn allowed_indices_extension() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let dom = s.domain(n);
        // n ≤ 3 over {1,2,3,4,5} -> indices {0,1,2}
        assert_eq!(
            Predicate::new(n, Comparator::Le, 3).allowed_indices(dom),
            vec![0, 1, 2]
        );
        // n > 4 -> {4}
        assert_eq!(
            Predicate::new(n, Comparator::Gt, 4).allowed_indices(dom),
            vec![4]
        );
        // n ≠ 1 -> {1,2,3,4}
        assert_eq!(
            Predicate::new(n, Comparator::Neq, 1).allowed_indices(dom),
            vec![1, 2, 3, 4]
        );
        // Reference value outside the domain still has a well-defined extension:
        // n ≤ 0 -> {} (unsatisfiable), n > 0 -> all.
        assert!(Predicate::new(n, Comparator::Le, 0).allowed_indices(dom).is_empty());
        assert_eq!(
            Predicate::new(n, Comparator::Gt, 0).allowed_indices(dom).len(),
            5
        );
    }

    #[test]
    fn display_uses_names() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let p = Predicate::new(n, Comparator::Gt, 3);
        assert_eq!(p.display(&s).to_string(), "n > 3");
    }
}
