//! The provenance store: the execution history `CPI` of pipeline instances
//! and their evaluations.
//!
//! BugDoc's inputs are "a set of parameter-value pairs associated with
//! previously-run instances `G = CP_1 … CP_k`" (paper §3, Problem Definition),
//! and its cost measure counts executions *beyond* that set. The store is the
//! single source of truth both for what is already known (dedup/caching) and
//! for the queries the algorithms pose: find a failing instance, find
//! (mutually) disjoint successes, check whether a hypothetical cause has a
//! succeeding superset (the Shortcut sanity check).
//!
//! # Index layout
//!
//! Because BugDoc's cost model counts only *new pipeline executions*, every
//! in-memory operation here must be effectively free even at large histories.
//! The store therefore maintains, alongside the append-only `runs` log:
//!
//! * **Dense instance keys** — each recorded instance is encoded as one
//!   domain index per parameter (`Box<[u32]>`, see [`ParamSpace::encode`]),
//!   and `by_key` maps that encoding (hashed with the cheap
//!   [`FxHasher`](crate::FxHasher)) to its run index. Lookup of an instance
//!   that carries its own key ([`Instance::dense_key`]) hashes a handful of
//!   `u32`s — no `Value` hashing, no instance cloning.
//! * **Epoch-segmented (parameter, value) run bitsets** — the run log is cut
//!   into fixed-size *epochs* of [`ProvenanceStore::epoch_runs`] runs. Each
//!   live epoch owns one flat block of bit words: value `(p, v)`'s bits for
//!   the epoch live at `block[(offsets[p] + v) * epoch_words ..]`. A
//!   predicate's satisfying runs are the OR of its allowed values' words; a
//!   conjunction's are the AND across its predicates — so
//!   [`support`](ProvenanceStore::support),
//!   [`satisfying_runs`](ProvenanceStore::satisfying_runs), and
//!   [`succeeding_superset_exists`](ProvenanceStore::succeeding_superset_exists)
//!   are word-parallel bit operations over the log instead of per-run
//!   predicate interpretation, and an epoch whose accumulator goes empty is
//!   skipped wholesale.
//! * **Epoch compaction** — [`compact`](ProvenanceStore::compact) (or the
//!   automatic bound set by
//!   [`set_index_bound`](ProvenanceStore::set_index_bound)) retires old full
//!   epochs: their bit blocks are folded into an [`EpochSummary`] of
//!   per-value and per-outcome *counts*, reclaiming the index memory that
//!   otherwise grows without bound. Queries stay **exact** after compaction:
//!   a retired epoch is answered by scanning its dense-key rows in the
//!   `by_key` arena (which is kept — it is what makes `lookup` exact), with
//!   the summary counts used to skip epochs that cannot contain a match.
//! * **Overflow list** — instances whose values fall outside their declared
//!   domains (possible via the unchecked [`Instance::new`]) cannot be
//!   encoded; they are tracked in `overflow` (plus the `overflow_bits` set,
//!   so arena scans skip their zero-filled rows) and handled by the original
//!   interpretive path, so the fast index never changes observable
//!   semantics.

use crate::bitset::RunSet;
use crate::cause::Conjunction;
use crate::fx::hash_dense_key;
use crate::instance::Instance;
use crate::outcome::{EvalResult, Outcome};
use crate::param::ParamSpace;
use std::fmt::Write as _;
use std::sync::Arc;

/// Open-addressing index from dense instance keys to run indices.
///
/// Slots hold `(fingerprint, run)` pairs; the key bytes live in a flat
/// side arena (`arity` `u32`s per run, zero-filled for unencodable runs), so
/// every probe is hash → slot → one contiguous arena row — no pointer chase
/// through the run log. A fingerprint match is always confirmed against the
/// arena row, so lookups are exact even under 64-bit hash collisions; this
/// is still a handful of nanoseconds against a 10k-run history, versus the
/// tens a general-purpose `HashMap<Box<[u32]>, _>` costs on the same probe.
#[derive(Debug, Clone)]
struct KeyIndex {
    /// Packed slots: high 32 bits = fingerprint tag (`fp >> 32`), low 32 =
    /// run index (`EMPTY` marks a free slot). 8 bytes per slot keeps the
    /// table cache-resident at large histories. Slot position is derived
    /// from the fingerprint's *low* bits, so tag and position are
    /// independent; a tag match is always confirmed against the arena.
    slots: Vec<u64>,
    mask: usize,
    len: usize,
    /// Dense keys, one `arity`-sized row per run (in run order).
    arena: Vec<u32>,
    /// Key length — the parameter count of the store's space.
    arity: usize,
}

const EMPTY: u32 = u32::MAX;
const FREE_SLOT: u64 = EMPTY as u64;

#[inline]
fn pack_slot(fp: u64, run: u32) -> u64 {
    (fp & 0xFFFF_FFFF_0000_0000) | run as u64
}

impl KeyIndex {
    fn new(arity: usize) -> Self {
        KeyIndex {
            slots: vec![FREE_SLOT; 16],
            mask: 15,
            len: 0,
            arena: Vec::new(),
            arity,
        }
    }

    /// The arena row holding run `r`'s dense key.
    #[inline]
    fn row(&self, r: usize) -> &[u32] {
        &self.arena[r * self.arity..(r + 1) * self.arity]
    }

    /// The run whose instance has dense key `key`, given `key`'s fingerprint.
    /// Exact: every tag match is confirmed against the stored key bytes.
    #[inline]
    fn get(&self, fp: u64, key: &[u32]) -> Option<usize> {
        let tag = fp & 0xFFFF_FFFF_0000_0000;
        let mut i = fp as usize & self.mask;
        loop {
            let slot = self.slots[i];
            let run = slot as u32;
            if run == EMPTY {
                return None;
            }
            if slot & 0xFFFF_FFFF_0000_0000 == tag && self.row(run as usize) == key {
                return Some(run as usize);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Appends run `run`'s key row (callers append rows strictly in run
    /// order) and indexes it. The key must be absent (checked by `get`) and
    /// `run` must be below [`EMPTY`].
    fn insert(&mut self, fp: u64, run: u32, key: &[u32]) {
        debug_assert_eq!(key.len(), self.arity);
        debug_assert_eq!(self.arena.len(), run as usize * self.arity);
        assert!(run < EMPTY, "run index overflow");
        self.arena.extend_from_slice(key);
        if (self.len + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mut i = fp as usize & self.mask;
        while self.slots[i] as u32 != EMPTY {
            i = (i + 1) & self.mask;
        }
        self.slots[i] = pack_slot(fp, run);
        self.len += 1;
    }

    /// Appends a zero-filled arena row for a run that has no dense key, so
    /// row addressing stays `run * arity`. (The row is never compared: only
    /// runs inserted into `slots` are.)
    fn push_overflow_row(&mut self, run: u32) {
        debug_assert_eq!(self.arena.len(), run as usize * self.arity);
        self.arena.extend(std::iter::repeat(0).take(self.arity));
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![FREE_SLOT; new_cap]);
        self.mask = new_cap - 1;
        for slot in old {
            if slot as u32 == EMPTY {
                continue;
            }
            // Re-derive the position from the stored run's key: the low
            // fingerprint bits are not stored, so rehash the arena row.
            let run = slot as u32;
            let fp = hash_dense_key(self.row(run as usize));
            let mut i = fp as usize & self.mask;
            while self.slots[i] as u32 != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = pack_slot(fp, run);
        }
    }
}

/// Default runs per epoch of the segmented value index (see the module docs).
pub const DEFAULT_EPOCH_RUNS: usize = 4096;

/// The summary a retired epoch's bit block is folded into: exact run counts,
/// enough to prune queries that cannot match the epoch, while the epoch's
/// per-run bits are answered from the dense-key arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSummary {
    /// Failing runs in the epoch.
    pub failing: u32,
    /// Succeeding runs in the epoch.
    pub succeeding: u32,
    /// Per-(parameter, value) run counts, in the store's `offsets` layout.
    value_counts: Box<[u32]>,
}

impl EpochSummary {
    /// Runs in the epoch assigning domain value `value_idx` to parameter `p`
    /// (indexed as `offsets[p] + value_idx`; see [`ProvenanceStore`]).
    pub fn value_count(&self, flat_value_idx: usize) -> u32 {
        self.value_counts[flat_value_idx]
    }
}

/// One recorded execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Run {
    /// The executed instance.
    pub instance: Instance,
    /// Its evaluation.
    pub eval: EvalResult,
}

impl Run {
    /// The binary outcome.
    pub fn outcome(&self) -> Outcome {
        self.eval.outcome
    }
}

/// The execution history of a pipeline, deduplicated by instance.
///
/// The evaluation procedure is deterministic (paper §3, Def. 2), so recording
/// the same instance twice with conflicting outcomes is a bug; `record`
/// detects and reports it. See the module docs for the dense-key and bitset
/// index this store maintains.
#[derive(Debug, Clone)]
pub struct ProvenanceStore {
    space: Arc<ParamSpace>,
    runs: Vec<Run>,
    /// Dense instance encoding → run index (no instance clone stored).
    by_key: KeyIndex,
    /// Start of parameter `p`'s slice of the flat value index.
    offsets: Vec<u32>,
    /// Total `(parameter, value)` slots — `offsets.last() + last domain len`.
    total_values: u32,
    /// Runs per epoch (a multiple of 64, so epochs are word-aligned).
    epoch_runs: usize,
    /// Words per value per epoch: `epoch_runs / 64`.
    epoch_words: usize,
    /// Value-bit blocks of *completed* epochs (`total_values * epoch_words`
    /// words each, frozen from `current` when the epoch fills); `None` once
    /// the epoch is retired by compaction.
    blocks: Vec<Option<Box<[u64]>>>,
    /// Summary counts of retired epochs (`None` while the block is live).
    summaries: Vec<Option<EpochSummary>>,
    /// The in-progress epoch's per-value bitsets, indexed by epoch-relative
    /// run position. Growable `RunSet`s keep the record path free of bulk
    /// zeroing; the word capacity is recycled from epoch to epoch.
    current: Vec<RunSet>,
    /// When set, `record` retires all but the newest this-many full epochs
    /// as soon as a new epoch opens.
    max_live_epochs: Option<usize>,
    /// Runs that failed.
    fail_bits: RunSet,
    /// Runs that succeeded.
    succeed_bits: RunSet,
    /// Runs whose instances could not be densely encoded (out-of-domain
    /// values); they are absent from `by_key`/the value index and served by
    /// the interpretive fallback paths.
    overflow: Vec<u32>,
    /// Same runs as `overflow`, as a set — arena scans over retired epochs
    /// use it to skip the zero-filled rows.
    overflow_bits: RunSet,
}

impl ProvenanceStore {
    /// An empty history over a space, with the default epoch size
    /// ([`DEFAULT_EPOCH_RUNS`]).
    pub fn new(space: Arc<ParamSpace>) -> Self {
        ProvenanceStore::with_epoch_size(space, DEFAULT_EPOCH_RUNS)
    }

    /// An empty history whose value index is segmented into epochs of
    /// `epoch_runs` runs. `epoch_runs` must be a non-zero multiple of 64
    /// (epochs are word-aligned). Small epochs make compaction kick in
    /// earlier at the price of more per-epoch bookkeeping.
    pub fn with_epoch_size(space: Arc<ParamSpace>, epoch_runs: usize) -> Self {
        assert!(
            epoch_runs > 0 && epoch_runs % 64 == 0,
            "epoch size must be a non-zero multiple of 64, got {epoch_runs}"
        );
        let mut offsets = Vec::with_capacity(space.len());
        let mut total = 0u32;
        for p in space.ids() {
            offsets.push(total);
            total += space.domain(p).len() as u32;
        }
        let arity = space.len();
        ProvenanceStore {
            space,
            runs: Vec::new(),
            by_key: KeyIndex::new(arity),
            offsets,
            total_values: total,
            epoch_runs,
            epoch_words: epoch_runs / 64,
            blocks: Vec::new(),
            summaries: Vec::new(),
            current: vec![RunSet::new(); total as usize],
            max_live_epochs: None,
            fail_bits: RunSet::new(),
            succeed_bits: RunSet::new(),
            overflow: Vec::new(),
            overflow_bits: RunSet::new(),
        }
    }

    /// Freezes the just-completed epoch: copies `current`'s per-value
    /// bitsets into one flat word block (the query fast path), clears
    /// `current` for the next epoch (keeping word capacity), and applies the
    /// auto-compaction bound if one is set. Called exactly when
    /// `runs.len()` reaches an epoch boundary.
    fn freeze_current_epoch(&mut self) {
        let w = self.epoch_words;
        let mut block = vec![0u64; self.total_values as usize * w].into_boxed_slice();
        for (slot, bits) in self.current.iter_mut().enumerate() {
            let words = bits.words();
            block[slot * w..slot * w + words.len()].copy_from_slice(words);
            bits.clear();
        }
        self.blocks.push(Some(block));
        self.summaries.push(None);
        if let Some(keep) = self.max_live_epochs {
            self.compact(keep);
        }
    }

    /// The dense key for an instance: the cached one when present (debug-
    /// asserted against the space), else freshly encoded.
    fn key_of(&self, instance: &Instance) -> Option<Box<[u32]>> {
        if let Some(k) = instance.dense_key() {
            debug_assert_eq!(
                Some(k),
                self.space.encode(instance).as_deref(),
                "instance carries a dense key inconsistent with this store's space"
            );
            return Some(k.into());
        }
        self.space.encode(instance)
    }

    /// Run index of an unencodable instance, by value equality.
    fn overflow_find(&self, instance: &Instance) -> Option<usize> {
        self.overflow
            .iter()
            .map(|&i| i as usize)
            .find(|&i| &self.runs[i].instance == instance)
    }

    /// The set of runs satisfying `cause`, as a bitset over run indices.
    ///
    /// Live epochs are answered by word-parallel AND-of-ORs over their bit
    /// blocks; retired epochs by scanning their dense-key arena rows against
    /// per-predicate allowed-value masks (after a summary-count check that
    /// skips epochs which cannot match). Both paths are exact.
    fn satisfying_set(&self, cause: &Conjunction) -> RunSet {
        if cause.is_empty() {
            return RunSet::full(self.runs.len());
        }
        let mut set = RunSet::new();
        {
            // Resolve each predicate once: its flat-index base, its allowed
            // value indices, and a bitmap of those indices for arena scans.
            struct PredPlan {
                base: usize,
                param: usize,
                allowed: Vec<usize>,
                mask: Vec<u64>,
            }
            // The per-domain value bitmaps only serve the arena-scan path,
            // so they are built only when some epoch is actually retired.
            let any_retired = self.summaries.iter().any(Option::is_some);
            let preds: Vec<PredPlan> = cause
                .predicates()
                .iter()
                .map(|pred| {
                    let domain = self.space.domain(pred.param);
                    let allowed = pred.allowed_indices(domain);
                    let mut mask = if any_retired {
                        vec![0u64; domain.len().div_ceil(64)]
                    } else {
                        Vec::new()
                    };
                    if any_retired {
                        for &vi in &allowed {
                            mask[vi / 64] |= 1u64 << (vi % 64);
                        }
                    }
                    PredPlan {
                        base: self.offsets[pred.param.index()] as usize,
                        param: pred.param.index(),
                        allowed,
                        mask,
                    }
                })
                .collect();
            let w = self.epoch_words;
            let mut bufs = vec![0u64; 2 * w];
            let (acc, tmp) = bufs.split_at_mut(w);
            'epochs: for (e, block) in self.blocks.iter().enumerate() {
                match block {
                    Some(words) => {
                        for (pi, p) in preds.iter().enumerate() {
                            let dst: &mut [u64] =
                                if pi == 0 { &mut *acc } else { &mut *tmp };
                            dst.fill(0);
                            for &vi in &p.allowed {
                                let base = (p.base + vi) * w;
                                let src = &words[base..base + w];
                                for (d, s) in dst.iter_mut().zip(src) {
                                    *d |= s;
                                }
                            }
                            if pi > 0 {
                                for (a, t) in acc.iter_mut().zip(tmp.iter()) {
                                    *a &= t;
                                }
                            }
                            if acc.iter().all(|&x| x == 0) {
                                continue 'epochs;
                            }
                        }
                        set.or_words_at(e * w, acc);
                    }
                    None => {
                        let summary =
                            self.summaries[e].as_ref().expect("retired epoch has a summary");
                        // A predicate none of whose allowed values occur in
                        // the epoch rules the whole epoch out.
                        if preds.iter().any(|p| {
                            p.allowed
                                .iter()
                                .all(|&vi| summary.value_counts[p.base + vi] == 0)
                        }) {
                            continue;
                        }
                        let start = e * self.epoch_runs;
                        let end = start + self.epoch_runs;
                        'rows: for r in start..end {
                            if self.overflow_bits.contains(r) {
                                continue;
                            }
                            let key = self.by_key.row(r);
                            for p in &preds {
                                let vi = key[p.param] as usize;
                                if p.mask[vi / 64] >> (vi % 64) & 1 == 0 {
                                    continue 'rows;
                                }
                            }
                            set.insert(r);
                        }
                    }
                }
            }
            // The in-progress epoch: the same AND-of-ORs over the growable
            // per-value bitsets, swept only to the filled word count.
            let cur_base = self.blocks.len() * self.epoch_runs;
            let used = (self.runs.len() - cur_base).div_ceil(64);
            if used > 0 {
                let mut alive = true;
                for (pi, p) in preds.iter().enumerate() {
                    let dst: &mut [u64] = if pi == 0 { &mut *acc } else { &mut *tmp };
                    dst[..used].fill(0);
                    for &vi in &p.allowed {
                        let src = self.current[p.base + vi].words();
                        let n = src.len().min(used);
                        for (d, s) in dst[..n].iter_mut().zip(&src[..n]) {
                            *d |= s;
                        }
                    }
                    if pi > 0 {
                        for (a, t) in acc[..used].iter_mut().zip(tmp[..used].iter()) {
                            *a &= t;
                        }
                    }
                    if acc[..used].iter().all(|&x| x == 0) {
                        alive = false;
                        break;
                    }
                }
                if alive {
                    set.or_words_at(cur_base / 64, &acc[..used]);
                }
            }
        }
        // Unencodable runs never appear in the value index; interpret them.
        for &i in &self.overflow {
            if cause.satisfied_by(&self.runs[i as usize].instance) {
                set.insert(i as usize);
            }
        }
        set
    }

    /// A history pre-seeded with given runs (the paper's "previously run
    /// instances"). Panics on conflicting duplicate evaluations.
    pub fn with_runs(space: Arc<ParamSpace>, runs: impl IntoIterator<Item = Run>) -> Self {
        let mut store = ProvenanceStore::new(space);
        for run in runs {
            store.record(run.instance, run.eval);
        }
        store
    }

    /// The parameter space.
    pub fn space(&self) -> &Arc<ParamSpace> {
        &self.space
    }

    /// Records an execution. Returns `true` if the instance was new. A
    /// duplicate with the same outcome is a silent no-op; a duplicate with a
    /// *different* outcome panics — it violates Def. 2's determinism and would
    /// silently corrupt every downstream guarantee.
    ///
    /// The map key is the instance's dense encoding (4 bytes per parameter),
    /// not a clone of the instance; the bitset index is updated in the same
    /// pass.
    pub fn record(&mut self, mut instance: Instance, eval: EvalResult) -> bool {
        let key = self.key_of(&instance);
        let fp = match (&key, instance.dense_fingerprint()) {
            (Some(_), Some(fp)) => fp,
            (Some(k), None) => hash_dense_key(k),
            (None, _) => 0,
        };
        let existing = match &key {
            Some(k) => self.by_key.get(fp, k.as_ref()),
            None => self.overflow_find(&instance),
        };
        if let Some(i) = existing {
            assert_eq!(
                self.runs[i].eval.outcome,
                eval.outcome,
                "non-deterministic evaluation for instance {}",
                instance.display(&self.space)
            );
            return false;
        }
        let idx = self.runs.len();
        match key {
            Some(k) => {
                let in_epoch = idx % self.epoch_runs;
                for (p, &vi) in k.iter().enumerate() {
                    self.current[self.offsets[p] as usize + vi as usize].insert(in_epoch);
                }
                if instance.dense_key().is_none() {
                    instance.set_dense(k.clone());
                }
                self.by_key.insert(fp, idx as u32, &k);
            }
            None => {
                self.by_key.push_overflow_row(idx as u32);
                self.overflow.push(idx as u32);
                self.overflow_bits.insert(idx);
            }
        }
        match eval.outcome {
            Outcome::Fail => self.fail_bits.insert(idx),
            Outcome::Succeed => self.succeed_bits.insert(idx),
        }
        self.runs.push(Run { instance, eval });
        if self.runs.len() % self.epoch_runs == 0 {
            self.freeze_current_epoch();
        }
        true
    }

    /// Number of recorded runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True if no runs are recorded.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// All runs, in recording order.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Runs per epoch of the segmented value index.
    pub fn epoch_runs(&self) -> usize {
        self.epoch_runs
    }

    /// Number of epochs the log spans (including the in-progress one).
    pub fn num_epochs(&self) -> usize {
        self.blocks.len() + usize::from(self.runs.len() % self.epoch_runs != 0)
    }

    /// Epochs whose bits are live (not yet retired by compaction),
    /// including the in-progress one.
    pub fn live_epochs(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_some()).count()
            + usize::from(self.runs.len() % self.epoch_runs != 0)
    }

    /// Epochs retired into summary counts.
    pub fn retired_epochs(&self) -> usize {
        self.summaries.iter().filter(|s| s.is_some()).count()
    }

    /// The summary of a retired epoch (`None` while its block is live).
    pub fn epoch_summary(&self, epoch: usize) -> Option<&EpochSummary> {
        self.summaries.get(epoch).and_then(Option::as_ref)
    }

    /// Approximate heap bytes held by the value index: live bit blocks plus
    /// retired-epoch summaries plus the outcome/overflow bitsets. (The run
    /// log and dense-key arena are the ground truth and are not counted —
    /// they are what compaction keeps.)
    pub fn index_bytes(&self) -> usize {
        let block_words = self.total_values as usize * self.epoch_words;
        let frozen = self.blocks.iter().filter(|b| b.is_some()).count() * block_words * 8;
        let current: usize = self.current.iter().map(|b| b.words().len() * 8).sum();
        let retired = self.retired_epochs()
            * (self.total_values as usize * 4 + std::mem::size_of::<EpochSummary>());
        let outcome_words = 3 * self.runs.len().div_ceil(64) * 8;
        frozen + current + retired + outcome_words
    }

    /// Retires every full epoch except the newest `keep_live`, folding each
    /// retired epoch's bit block into an [`EpochSummary`] of exact counts.
    /// The in-progress (partial) epoch is never retired. Queries remain
    /// exact afterwards (see the module docs); re-recording continues
    /// normally. Returns the number of epochs retired by this call.
    pub fn compact(&mut self, keep_live: usize) -> usize {
        let full = self.runs.len() / self.epoch_runs;
        let mut retired = 0usize;
        for e in 0..full.saturating_sub(keep_live) {
            retired += self.retire_epoch(e) as usize;
        }
        retired
    }

    /// Bounds the live value index: whenever a new epoch opens, all but the
    /// newest `max_live_epochs` full epochs are retired automatically.
    /// `None` (the default) never auto-compacts. Takes effect immediately.
    pub fn set_index_bound(&mut self, max_live_epochs: Option<usize>) {
        self.max_live_epochs = max_live_epochs;
        if let Some(keep) = max_live_epochs {
            self.compact(keep);
        }
    }

    /// Folds epoch `e`'s bit block into summary counts. Returns `false` if
    /// the epoch was already retired.
    fn retire_epoch(&mut self, e: usize) -> bool {
        let Some(block) = self.blocks[e].take() else {
            return false;
        };
        let w = self.epoch_words;
        let value_counts: Box<[u32]> = (0..self.total_values as usize)
            .map(|v| block[v * w..(v + 1) * w].iter().map(|x| x.count_ones()).sum())
            .collect();
        let wbase = e * w;
        let failing = (0..w).map(|k| self.fail_bits.word(wbase + k).count_ones()).sum();
        let succeeding = (0..w)
            .map(|k| self.succeed_bits.word(wbase + k).count_ones())
            .sum();
        self.summaries[e] = Some(EpochSummary {
            failing,
            succeeding,
            value_counts,
        });
        true
    }

    /// The recorded evaluation of an instance, if it was executed.
    ///
    /// When the probe carries its dense key (the common case on the hot
    /// path), this is a single FxHash probe over a few `u32`s.
    pub fn lookup(&self, instance: &Instance) -> Option<&EvalResult> {
        if let Some(k) = instance.dense_key() {
            debug_assert_eq!(
                Some(k),
                self.space.encode(instance).as_deref(),
                "instance carries a dense key inconsistent with this store's space"
            );
            let fp = instance
                .dense_fingerprint()
                .expect("fingerprint accompanies the dense key");
            return self.by_key.get(fp, k).map(|i| &self.runs[i].eval);
        }
        match self.space.encode(instance) {
            Some(k) => self
                .by_key
                .get(hash_dense_key(&k), &k)
                .map(|i| &self.runs[i].eval),
            None => self.overflow_find(instance).map(|i| &self.runs[i].eval),
        }
    }

    /// The recorded outcome of an instance, if it was executed.
    pub fn outcome_of(&self, instance: &Instance) -> Option<Outcome> {
        self.lookup(instance).map(|e| e.outcome)
    }

    /// Iterates over failing instances (in recording order).
    pub fn failing(&self) -> impl Iterator<Item = &Instance> {
        self.fail_bits.ones().map(|i| &self.runs[i].instance)
    }

    /// Iterates over succeeding instances (in recording order).
    pub fn succeeding(&self) -> impl Iterator<Item = &Instance> {
        self.succeed_bits.ones().map(|i| &self.runs[i].instance)
    }

    /// Number of failing runs (one popcount pass; no iteration).
    pub fn num_failing(&self) -> usize {
        self.fail_bits.count()
    }

    /// Number of succeeding runs (one popcount pass; no iteration).
    pub fn num_succeeding(&self) -> usize {
        self.succeed_bits.count()
    }

    /// The first failing instance, if any — the `CP_f` Stacked Shortcut picks
    /// from the history (Algorithm 2).
    pub fn first_failing(&self) -> Option<&Instance> {
        self.failing().next()
    }

    /// Succeeding instances disjoint from `from` (Def. 6), in recording order.
    pub fn disjoint_successes<'a>(
        &'a self,
        from: &'a Instance,
    ) -> impl Iterator<Item = &'a Instance> + 'a {
        self.succeeding().filter(move |g| g.is_disjoint_from(from))
    }

    /// Greedily selects up to `k` succeeding instances that are disjoint from
    /// `from` and mutually disjoint — the `CP_G` set of Algorithm 2. If fewer
    /// than `k` mutually disjoint successes exist, the result is shorter
    /// ("mutually disjoint if possible").
    pub fn mutually_disjoint_successes<'s>(
        &'s self,
        from: &Instance,
        k: usize,
    ) -> Vec<&'s Instance> {
        let mut picked: Vec<&'s Instance> = Vec::new();
        for run in &self.runs {
            if picked.len() == k {
                break;
            }
            let g = &run.instance;
            if run.outcome().is_succeed()
                && g.is_disjoint_from(from)
                && picked.iter().all(|p| p.is_disjoint_from(g))
            {
                picked.push(g);
            }
        }
        picked
    }

    /// The succeeding instance most different from `from` (maximum Hamming
    /// distance) — the heuristic fallback when the Disjointness Condition
    /// fails (paper §4.1: "take an instance that differs in as many
    /// parameter-values as possible"). Ties break to the earliest run.
    pub fn most_different_success(&self, from: &Instance) -> Option<&Instance> {
        let mut best: Option<(usize, &Instance)> = None;
        // Recording order + strict improvement ⇒ the earliest run wins ties.
        for g in self.succeeding() {
            let d = g.hamming_distance(from);
            if best.is_none_or(|(bd, _)| d > bd) {
                best = Some((d, g));
            }
        }
        best.map(|(_, g)| g)
    }

    /// The Shortcut sanity check (Algorithm 1, final loop): is there a
    /// *succeeding* run whose parameter-values are a superset of the
    /// hypothetical root cause `D`? If so, `D` is not definitive.
    /// One bitset intersection over the log.
    pub fn succeeding_superset_exists(&self, cause: &Conjunction) -> bool {
        self.satisfying_set(cause).intersects(&self.succeed_bits)
    }

    /// Instances in the history satisfying a conjunction, with outcomes —
    /// driven by the bitset index, yielded in recording order.
    pub fn satisfying_runs<'a>(
        &'a self,
        cause: &'a Conjunction,
    ) -> impl Iterator<Item = &'a Run> + 'a {
        self.satisfying_set(cause)
            .ones()
            .map(|i| &self.runs[i])
            .collect::<Vec<_>>()
            .into_iter()
    }

    /// Counts `(failing, succeeding)` runs satisfying a conjunction: an
    /// AND + popcount over the bitset index instead of a log scan.
    pub fn support(&self, cause: &Conjunction) -> (usize, usize) {
        let sat = self.satisfying_set(cause);
        (
            sat.intersection_count(&self.fail_bits),
            sat.intersection_count(&self.succeed_bits),
        )
    }

    /// Parses a history from the TSV layout produced by [`Self::to_tsv`]
    /// (parameter columns in space order, then `score`, then `evaluation`).
    /// Values are matched against the parameter domains by their display
    /// form after unescaping (see [`Self::to_tsv`]); `score` is a float or
    /// `-`. A cell with a malformed escape sequence is
    /// [`TsvError::Escape`].
    ///
    /// Compatibility note: files written before escaping existed that
    /// contain *literal* backslashes in values are now interpreted as
    /// escapes (rejected when malformed) — deliberate: a raw backslash is
    /// ambiguous against the escaped format, and rejecting beats silently
    /// loading a different value. Re-export such histories with the current
    /// `to_tsv`.
    pub fn from_tsv(space: Arc<ParamSpace>, text: &str) -> Result<Self, TsvError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(TsvError::Empty)?;
        let cols: Vec<String> = header
            .split('\t')
            .map(|cell| {
                unescape_tsv(cell).ok_or(TsvError::Escape {
                    line: 1,
                    cell: cell.to_string(),
                })
            })
            .collect::<Result<_, _>>()?;
        let expected: Vec<String> = space
            .iter()
            .map(|(_, d)| d.name().to_string())
            .chain(["score".to_string(), "evaluation".to_string()])
            .collect();
        if cols != expected {
            return Err(TsvError::Header {
                expected: expected.join("\t"),
                found: header.to_string(),
            });
        }

        let mut store = ProvenanceStore::new(space.clone());
        for (line_no, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let cells: Vec<&str> = line.split('\t').collect();
            if cells.len() != space.len() + 2 {
                return Err(TsvError::Arity {
                    line: line_no + 1,
                    expected: space.len() + 2,
                    found: cells.len(),
                });
            }
            let mut indices = Vec::with_capacity(space.len());
            for (p, cell) in space.ids().zip(cells.iter()) {
                let unescaped = unescape_tsv(cell).ok_or_else(|| TsvError::Escape {
                    line: line_no + 1,
                    cell: cell.to_string(),
                })?;
                let domain = space.domain(p);
                let idx = domain
                    .values()
                    .iter()
                    .position(|v| v.to_string() == unescaped)
                    .ok_or_else(|| TsvError::Value {
                        line: line_no + 1,
                        param: space.param(p).name().to_string(),
                        cell: cell.to_string(),
                    })?;
                indices.push(idx as u32);
            }
            let score = match cells[space.len()] {
                "-" => None,
                s => Some(s.parse::<f64>().map_err(|_| TsvError::Score {
                    line: line_no + 1,
                    cell: s.to_string(),
                })?),
            };
            let outcome = match cells[space.len() + 1] {
                "succeed" => Outcome::Succeed,
                "fail" => Outcome::Fail,
                other => {
                    return Err(TsvError::Evaluation {
                        line: line_no + 1,
                        cell: other.to_string(),
                    })
                }
            };
            store.record(
                space.instance_from_indices(&indices),
                EvalResult { outcome, score },
            );
        }
        Ok(store)
    }

    /// Serializes the history as a TSV table (header + one row per run):
    /// parameter columns, then `score`, then `evaluation` — the layout of the
    /// paper's Tables 1 and 2.
    ///
    /// Parameter names and values containing TSV structure characters are
    /// backslash-escaped (`\t` tab, `\n` newline, `\r` carriage return,
    /// `\\` backslash), so a hostile string value cannot smuggle extra
    /// cells or rows into the table; [`Self::from_tsv`] reverses the
    /// escaping.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for (i, (_, def)) in self.space.iter().enumerate() {
            if i > 0 {
                out.push('\t');
            }
            escape_tsv_into(def.name(), &mut out);
        }
        out.push_str("\tscore\tevaluation\n");
        for run in &self.runs {
            for (i, v) in run.instance.values().iter().enumerate() {
                if i > 0 {
                    out.push('\t');
                }
                escape_tsv_into(&v.to_string(), &mut out);
            }
            match run.eval.score {
                Some(s) => {
                    let _ = write!(out, "\t{s}");
                }
                None => out.push_str("\t-"),
            }
            let _ = writeln!(out, "\t{}", run.outcome());
        }
        out
    }
}

/// Appends `s` to `out`, backslash-escaping the characters that would be
/// read as TSV structure (tab, newline, carriage return) plus the escape
/// character itself.
fn escape_tsv_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
}

/// Reverses [`escape_tsv_into`]. `None` on a malformed escape (a lone
/// trailing backslash or an unknown `\x` pair) — the file was not produced
/// by `to_tsv` and guessing would corrupt the value.
fn unescape_tsv(cell: &str) -> Option<String> {
    if !cell.contains('\\') {
        return Some(cell.to_string());
    }
    let mut out = String::with_capacity(cell.len());
    let mut chars = cell.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// Why a provenance TSV could not be parsed; see [`ProvenanceStore::from_tsv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsvError {
    /// No header line.
    Empty,
    /// The header does not match the space's layout.
    Header {
        /// The layout the space requires.
        expected: String,
        /// The header found.
        found: String,
    },
    /// A row has the wrong number of cells.
    Arity {
        /// 1-based line number.
        line: usize,
        /// Expected cell count.
        expected: usize,
        /// Found cell count.
        found: usize,
    },
    /// A cell is not a value of its parameter's universe.
    Value {
        /// 1-based line number.
        line: usize,
        /// Parameter name.
        param: String,
        /// The offending cell.
        cell: String,
    },
    /// The score cell is neither a float nor `-`.
    Score {
        /// 1-based line number.
        line: usize,
        /// The offending cell.
        cell: String,
    },
    /// The evaluation cell is neither `succeed` nor `fail`.
    Evaluation {
        /// 1-based line number.
        line: usize,
        /// The offending cell.
        cell: String,
    },
    /// A cell carries a malformed backslash escape (lone trailing `\` or an
    /// unknown `\x` sequence).
    Escape {
        /// 1-based line number.
        line: usize,
        /// The offending cell.
        cell: String,
    },
}

impl std::fmt::Display for TsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsvError::Empty => write!(f, "empty provenance TSV"),
            TsvError::Header { expected, found } => {
                write!(f, "header mismatch: expected {expected:?}, found {found:?}")
            }
            TsvError::Arity {
                line,
                expected,
                found,
            } => write!(f, "line {line}: expected {expected} cells, found {found}"),
            TsvError::Value { line, param, cell } => write!(
                f,
                "line {line}: {cell:?} is not in the universe of parameter {param:?}"
            ),
            TsvError::Score { line, cell } => {
                write!(f, "line {line}: score {cell:?} is not a number or '-'")
            }
            TsvError::Evaluation { line, cell } => write!(
                f,
                "line {line}: evaluation {cell:?} must be 'succeed' or 'fail'"
            ),
            TsvError::Escape { line, cell } => write!(
                f,
                "line {line}: cell {cell:?} has a malformed backslash escape"
            ),
        }
    }
}

impl std::error::Error for TsvError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::value::Value;

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .categorical("Dataset", ["Iris", "Digits", "Images"])
            .categorical("Estimator", ["LR", "DT", "GB"])
            .ordinal("Version", [1, 2])
            .build()
    }

    fn inst(s: &ParamSpace, d: &str, e: &str, v: i64) -> Instance {
        Instance::from_pairs(
            s,
            [
                ("Dataset", d.into()),
                ("Estimator", e.into()),
                ("Version", v.into()),
            ],
        )
    }

    /// The paper's Table 1 history.
    fn table1(s: &Arc<ParamSpace>) -> ProvenanceStore {
        ProvenanceStore::with_runs(
            s.clone(),
            [
                Run {
                    instance: inst(s, "Iris", "LR", 1),
                    eval: EvalResult::from_score_at_least(0.9, 0.6),
                },
                Run {
                    instance: inst(s, "Digits", "DT", 1),
                    eval: EvalResult::from_score_at_least(0.8, 0.6),
                },
                Run {
                    instance: inst(s, "Iris", "GB", 2),
                    eval: EvalResult::from_score_at_least(0.2, 0.6),
                },
            ],
        )
    }

    #[test]
    fn record_dedups_and_counts() {
        let s = space();
        let mut p = table1(&s);
        assert_eq!(p.len(), 3);
        // Re-recording the same instance/outcome is a no-op.
        assert!(!p.record(
            inst(&s, "Iris", "LR", 1),
            EvalResult::from_score_at_least(0.9, 0.6)
        ));
        assert_eq!(p.len(), 3);
        assert!(p.record(inst(&s, "Images", "GB", 1), Outcome::Succeed.into()));
        assert_eq!(p.len(), 4);
    }

    #[test]
    #[should_panic(expected = "non-deterministic evaluation")]
    fn conflicting_duplicate_panics() {
        let s = space();
        let mut p = table1(&s);
        p.record(inst(&s, "Iris", "LR", 1), Outcome::Fail.into());
    }

    #[test]
    fn failing_and_succeeding_queries() {
        let s = space();
        let p = table1(&s);
        assert_eq!(p.failing().count(), 1);
        assert_eq!(p.succeeding().count(), 2);
        assert_eq!(p.first_failing().unwrap(), &inst(&s, "Iris", "GB", 2));
        assert_eq!(p.outcome_of(&inst(&s, "Iris", "GB", 2)), Some(Outcome::Fail));
        assert_eq!(p.outcome_of(&inst(&s, "Images", "LR", 1)), None);
    }

    #[test]
    fn disjoint_successes_match_paper_example() {
        // Paper §4.1 Example 1: the only disjoint success w.r.t. CP_f
        // (Iris, GB, 2.0) is (Digits, DT, 1.0).
        let s = space();
        let p = table1(&s);
        let cpf = inst(&s, "Iris", "GB", 2);
        let disjoint: Vec<_> = p.disjoint_successes(&cpf).collect();
        assert_eq!(disjoint, vec![&inst(&s, "Digits", "DT", 1)]);
    }

    #[test]
    fn mutually_disjoint_selection() {
        let s = space();
        let mut p = table1(&s);
        // Add a second success disjoint from CP_f but NOT from (Digits,DT,1).
        p.record(inst(&s, "Digits", "LR", 1), Outcome::Succeed.into());
        // And one mutually disjoint from both.
        p.record(inst(&s, "Images", "DT", 1), Outcome::Succeed.into());
        let cpf = inst(&s, "Iris", "GB", 2);
        let picked = p.mutually_disjoint_successes(&cpf, 4);
        assert_eq!(picked.len(), 1, "Version=1 is shared, so only one pick");
        // With a distinct version the third is mutually disjoint... build one:
        // (Images, LR, 1) shares Version with all; the space only has 2
        // versions so mutual disjointness caps at 2 successes (versions 1,2).
        assert!(picked[0].is_disjoint_from(&cpf));
    }

    #[test]
    fn most_different_fallback() {
        let s = space();
        let mut p = ProvenanceStore::new(s.clone());
        let cpf = inst(&s, "Iris", "GB", 2);
        p.record(inst(&s, "Iris", "LR", 2), Outcome::Succeed.into()); // distance 1
        p.record(inst(&s, "Iris", "DT", 1), Outcome::Succeed.into()); // distance 2
        assert_eq!(
            p.most_different_success(&cpf).unwrap(),
            &inst(&s, "Iris", "DT", 1)
        );
        // Tie at distance 2 breaks to the earliest run.
        p.record(inst(&s, "Iris", "LR", 1), Outcome::Succeed.into()); // distance 2
        assert_eq!(
            p.most_different_success(&cpf).unwrap(),
            &inst(&s, "Iris", "DT", 1)
        );
    }

    #[test]
    fn succeeding_superset_check() {
        let s = space();
        let p = table1(&s);
        let version = s.by_name("Version").unwrap();
        // D = {Version = 1}: (Iris,LR,1) succeeded and contains it.
        let d1 = Conjunction::new(vec![Predicate::eq(version, 1)]);
        assert!(p.succeeding_superset_exists(&d1));
        // D = {Version = 2}: the only run with version 2 failed.
        let d2 = Conjunction::new(vec![Predicate::eq(version, 2)]);
        assert!(!p.succeeding_superset_exists(&d2));
    }

    #[test]
    fn support_counts() {
        let s = space();
        let p = table1(&s);
        let ds = s.by_name("Dataset").unwrap();
        let c = Conjunction::new(vec![Predicate::eq(ds, Value::from("Iris"))]);
        assert_eq!(p.support(&c), (1, 1));
        assert_eq!(p.support(&Conjunction::top()), (1, 2));
    }

    /// Records the first `n` distinct instances of a 16×8 space (128 total,
    /// so several 64-run epochs fill) through a store with 64-run epochs;
    /// failing iff x == 3.
    fn epoch_store(n: usize) -> (Arc<ParamSpace>, ProvenanceStore) {
        let s = ParamSpace::builder()
            .ordinal("x", (0..16).collect::<Vec<_>>())
            .ordinal("y", (0..8).collect::<Vec<_>>())
            .build();
        let x = s.by_name("x").unwrap();
        let mut p = ProvenanceStore::with_epoch_size(s.clone(), 64);
        for inst in s.instances().take(n) {
            let outcome = Outcome::from_check(inst.get(x) != &crate::Value::from(3));
            p.record(inst, EvalResult::of(outcome));
        }
        (s, p)
    }

    #[test]
    fn compaction_preserves_queries_exactly() {
        let (s, mut p) = epoch_store(128);
        let n = p.len();
        assert_eq!(n, 128, "the whole 16×8 space is recorded");
        let x = s.by_name("x").unwrap();
        let y = s.by_name("y").unwrap();
        let causes = [
            Conjunction::new(vec![Predicate::eq(x, 3)]),
            Conjunction::new(vec![Predicate::eq(x, 3), Predicate::eq(y, 2)]),
            Conjunction::new(vec![Predicate::new(x, crate::Comparator::Le, 4)]),
            Conjunction::top(),
        ];
        let before: Vec<_> = causes
            .iter()
            .map(|c| {
                (
                    p.support(c),
                    p.satisfying_runs(c).map(|r| r.instance.clone()).collect::<Vec<_>>(),
                    p.succeeding_superset_exists(c),
                )
            })
            .collect();
        assert!(p.num_epochs() >= 1);
        let retired = p.compact(0);
        assert_eq!(retired, n / 64);
        assert_eq!(p.retired_epochs(), retired);
        for (c, (support, satisfying, superset)) in causes.iter().zip(&before) {
            assert_eq!(&p.support(c), support, "support changed for {}", c.display(&s));
            assert_eq!(
                &p.satisfying_runs(c).map(|r| r.instance.clone()).collect::<Vec<_>>(),
                satisfying
            );
            assert_eq!(&p.succeeding_superset_exists(c), superset);
        }
        // Re-compacting is a no-op; lookups still hit.
        assert_eq!(p.compact(0), 0);
        assert!(p.lookup(&s.instance_from_indices(&[3, 2])).is_some());
    }

    #[test]
    fn index_bound_auto_compacts_on_record() {
        let (_, mut fresh) = epoch_store(0);
        fresh.set_index_bound(Some(1));
        let s = fresh.space().clone();
        // 40 distinct instances over 64-run epochs: fill several epochs by
        // inserting distinct keys (8*5 = 40 < 64, so widen via more records).
        let mut recorded = 0usize;
        for xi in 0..8u32 {
            for yi in 0..5u32 {
                let inst = s.instance_from_indices(&[xi, yi]);
                if fresh.record(inst, EvalResult::of(Outcome::from_check(xi != 3))) {
                    recorded += 1;
                }
            }
        }
        assert_eq!(recorded, 40); // one partial epoch only: nothing to retire
        assert_eq!(fresh.retired_epochs(), 0);
        let summary_bytes = fresh.index_bytes();
        assert!(summary_bytes > 0);
    }

    #[test]
    fn index_bound_retires_old_epochs() {
        let s = ParamSpace::builder()
            .ordinal("a", (0..40).collect::<Vec<_>>())
            .ordinal("b", (0..10).collect::<Vec<_>>())
            .build();
        let mut p = ProvenanceStore::with_epoch_size(s.clone(), 64);
        p.set_index_bound(Some(1));
        for (i, inst) in s.instances().enumerate() {
            p.record(
                inst,
                EvalResult::of(Outcome::from_check(i % 7 != 0)),
            );
        }
        assert_eq!(p.len(), 400);
        assert_eq!(p.num_epochs(), 7); // 400 runs / 64
        // All but the newest full epoch + the partial one are retired.
        assert!(p.retired_epochs() >= 5, "retired {}", p.retired_epochs());
        assert!(p.live_epochs() <= 2);
        // Summaries carry exact outcome counts.
        let total_failing: u32 = (0..p.num_epochs())
            .filter_map(|e| p.epoch_summary(e))
            .map(|s| s.failing)
            .sum();
        assert!(total_failing > 0);
        // Queries stay exact: compare against a fully-live store.
        let mut live = ProvenanceStore::with_epoch_size(s.clone(), 64);
        for run in p.runs() {
            live.record(run.instance.clone(), run.eval);
        }
        let a = s.by_name("a").unwrap();
        for v in 0..40 {
            let c = Conjunction::new(vec![Predicate::eq(a, v)]);
            assert_eq!(p.support(&c), live.support(&c), "a = {v}");
        }
    }

    #[test]
    fn tsv_layout() {
        let s = space();
        let p = table1(&s);
        let tsv = p.to_tsv();
        let mut lines = tsv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "Dataset\tEstimator\tVersion\tscore\tevaluation"
        );
        assert_eq!(lines.next().unwrap(), "Iris\tLR\t1\t0.9\tsucceed");
        assert_eq!(tsv.lines().count(), 4);
    }
}

#[cfg(test)]
mod tsv_tests {
    use super::*;
    use crate::value::Value;

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .categorical("Dataset", ["Iris", "Digits"])
            .ordinal("Version", [1, 2])
            .build()
    }

    #[test]
    fn roundtrip() {
        let s = space();
        let mut prov = ProvenanceStore::new(s.clone());
        prov.record(
            Instance::from_pairs(&s, [("Dataset", "Iris".into()), ("Version", 2.into())]),
            EvalResult::from_score_at_least(0.2, 0.6),
        );
        prov.record(
            Instance::from_pairs(&s, [("Dataset", "Digits".into()), ("Version", 1.into())]),
            EvalResult::of(Outcome::Succeed),
        );
        let parsed = ProvenanceStore::from_tsv(s.clone(), &prov.to_tsv()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.failing().count(), 1);
        let inst = Instance::from_pairs(&s, [("Dataset", "Iris".into()), ("Version", 2.into())]);
        assert_eq!(parsed.lookup(&inst).unwrap().score, Some(0.2));
        // Serializing again reproduces the text.
        assert_eq!(parsed.to_tsv(), prov.to_tsv());
    }

    #[test]
    fn header_mismatch() {
        let s = space();
        let err = ProvenanceStore::from_tsv(s, "A\tB\tscore\tevaluation\n").unwrap_err();
        assert!(matches!(err, TsvError::Header { .. }));
        assert!(err.to_string().contains("header mismatch"));
    }

    #[test]
    fn unknown_value_rejected() {
        let s = space();
        let text = "Dataset\tVersion\tscore\tevaluation\nWine\t1\t-\tsucceed\n";
        let err = ProvenanceStore::from_tsv(s, text).unwrap_err();
        assert!(matches!(err, TsvError::Value { ref param, .. } if param == "Dataset"));
    }

    #[test]
    fn bad_arity_and_score_and_eval() {
        let s = space();
        let base = "Dataset\tVersion\tscore\tevaluation\n";
        assert!(matches!(
            ProvenanceStore::from_tsv(s.clone(), &format!("{base}Iris\t1\tsucceed\n")).unwrap_err(),
            TsvError::Arity { .. }
        ));
        assert!(matches!(
            ProvenanceStore::from_tsv(s.clone(), &format!("{base}Iris\t1\tbad\tsucceed\n"))
                .unwrap_err(),
            TsvError::Score { .. }
        ));
        assert!(matches!(
            ProvenanceStore::from_tsv(s.clone(), &format!("{base}Iris\t1\t-\tmaybe\n"))
                .unwrap_err(),
            TsvError::Evaluation { .. }
        ));
        assert!(matches!(
            ProvenanceStore::from_tsv(s, "").unwrap_err(),
            TsvError::Empty
        ));
    }

    #[test]
    fn blank_lines_skipped() {
        let s = space();
        let text = "Dataset\tVersion\tscore\tevaluation\n\nIris\t1\t-\tsucceed\n\n";
        let parsed = ProvenanceStore::from_tsv(s, text).unwrap();
        assert_eq!(parsed.len(), 1);
        let _ = Value::from(1); // keep the import meaningful
    }

    /// Values containing the TSV structure characters — tabs, newlines,
    /// carriage returns, backslashes — must round-trip instead of smuggling
    /// extra cells or rows into the table.
    #[test]
    fn hostile_values_roundtrip() {
        let hostile = [
            "plain",
            "tab\there",
            "line\nbreak",
            "cr\rhere",
            "back\\slash",
            "\\t literal backslash-t",
            "trailing\\",
            "\t\n\r\\",
            "mix\tof\nall\r\\four",
        ];
        let s = ParamSpace::builder()
            .categorical("evil\tname", hostile)
            .ordinal("Version", [1, 2])
            .build();
        let mut prov = ProvenanceStore::new(s.clone());
        for (i, v) in hostile.iter().enumerate() {
            prov.record(
                Instance::from_pairs(&s, [("evil\tname", (*v).into()), ("Version", 1.into())]),
                EvalResult::of(Outcome::from_check(i % 2 == 0)),
            );
        }
        let tsv = prov.to_tsv();
        // Structure is intact: one header + one line per run, each with
        // exactly three tabs.
        assert_eq!(tsv.lines().count(), 1 + hostile.len());
        for line in tsv.lines() {
            assert_eq!(line.matches('\t').count(), 3, "line {line:?}");
        }
        let parsed = ProvenanceStore::from_tsv(s.clone(), &tsv).unwrap();
        assert_eq!(parsed.len(), prov.len());
        for (a, b) in parsed.runs().iter().zip(prov.runs()) {
            assert_eq!(a.instance, b.instance);
            assert_eq!(a.eval.outcome, b.eval.outcome);
        }
        assert_eq!(parsed.to_tsv(), tsv, "escaping is stable");
    }

    #[test]
    fn malformed_escape_rejected() {
        let s = space();
        let base = "Dataset\tVersion\tscore\tevaluation\n";
        // Lone trailing backslash.
        let err =
            ProvenanceStore::from_tsv(s.clone(), &format!("{base}Iris\\\t1\t-\tsucceed\n"))
                .unwrap_err();
        assert!(matches!(err, TsvError::Escape { line: 2, .. }), "{err}");
        assert!(err.to_string().contains("malformed backslash escape"));
        // Unknown escape pair.
        let err = ProvenanceStore::from_tsv(s, &format!("{base}\\qIris\t1\t-\tsucceed\n"))
            .unwrap_err();
        assert!(matches!(err, TsvError::Escape { .. }));
    }

    #[test]
    fn escape_helpers_invert() {
        for s in ["", "a", "a\\tb", "\\\\", "plain text", "\t\n\r\\ all"] {
            let mut escaped = String::new();
            escape_tsv_into(s, &mut escaped);
            assert_eq!(unescape_tsv(&escaped).as_deref(), Some(s));
            assert!(!escaped.contains('\t') && !escaped.contains('\n'));
        }
        assert_eq!(unescape_tsv("bad\\"), None);
        assert_eq!(unescape_tsv("\\x"), None);
        assert_eq!(unescape_tsv("ok\\t"), Some("ok\t".to_string()));
    }
}
