//! The provenance store: the execution history `CPI` of pipeline instances
//! and their evaluations.
//!
//! BugDoc's inputs are "a set of parameter-value pairs associated with
//! previously-run instances `G = CP_1 … CP_k`" (paper §3, Problem Definition),
//! and its cost measure counts executions *beyond* that set. The store is the
//! single source of truth both for what is already known (dedup/caching) and
//! for the queries the algorithms pose: find a failing instance, find
//! (mutually) disjoint successes, check whether a hypothetical cause has a
//! succeeding superset (the Shortcut sanity check).
//!
//! # Index layout
//!
//! Because BugDoc's cost model counts only *new pipeline executions*, every
//! in-memory operation here must be effectively free even at large histories.
//! The store therefore maintains, alongside the append-only `runs` log:
//!
//! * **Dense instance keys** — each recorded instance is encoded as one
//!   domain index per parameter (`Box<[u32]>`, see [`ParamSpace::encode`]),
//!   and `by_key` maps that encoding (hashed with the cheap
//!   [`FxHasher`](crate::FxHasher)) to its run index. Lookup of an instance
//!   that carries its own key ([`Instance::dense_key`]) hashes a handful of
//!   `u32`s — no `Value` hashing, no instance cloning.
//! * **Epoch-segmented (parameter, value) run bitsets** — the run log is cut
//!   into fixed-size *epochs* of [`ProvenanceStore::epoch_runs`] runs. Each
//!   live epoch owns one flat block of bit words, with value `(p, v)`'s row
//!   at `block[(offsets[p] + v) * epoch_words ..]`. The *in-progress* epoch
//!   stores raw rows (run `r` sets one bit per parameter); when an epoch
//!   fills, freezing converts its rows in place to **cumulative prefix-ORs**
//!   (row `v` = raw rows `0..=v` OR'd). In a frozen block any predicate's
//!   satisfying runs are a union of at most two contiguous value ranges —
//!   `=`/`≤`/`>`/`≠` all reduce to ranges over the domain order — and a
//!   range `[lo, hi]` reads out as `prefix[hi] & !prefix[lo-1]` (just
//!   `prefix[hi]` when `lo = 0`): 1–4 row reads per predicate regardless of
//!   domain size. A conjunction ANDs those unions across its predicates via
//!   the fused [`kernels`] — so [`support`](ProvenanceStore::support),
//!   [`satisfying_runs`](ProvenanceStore::satisfying_runs), and
//!   [`succeeding_superset_exists`](ProvenanceStore::succeeding_superset_exists)
//!   are word-parallel bit operations over the log instead of per-run
//!   predicate interpretation, and an epoch whose accumulator goes empty is
//!   skipped wholesale.
//! * **Epoch compaction** — [`compact`](ProvenanceStore::compact) (or the
//!   automatic bound set by
//!   [`set_index_bound`](ProvenanceStore::set_index_bound)) retires old full
//!   epochs: their bit blocks are folded into an [`EpochSummary`] of
//!   per-value and per-outcome *counts*, reclaiming the index memory that
//!   otherwise grows without bound. Queries stay **exact** after compaction:
//!   a retired epoch is answered by scanning its dense-key rows in the
//!   `by_key` arena (which is kept — it is what makes `lookup` exact), with
//!   the summary counts used to skip epochs that cannot contain a match.
//! * **Overflow list** — instances whose values fall outside their declared
//!   domains (possible via the unchecked [`Instance::new`]) cannot be
//!   encoded; they are tracked in `overflow` (plus the `overflow_bits` set,
//!   so arena scans skip their zero-filled rows) and handled by the original
//!   interpretive path, so the fast index never changes observable
//!   semantics.

use crate::bitset::RunSet;
use crate::cause::Conjunction;
use crate::fx::hash_dense_key;
use crate::instance::Instance;
use crate::kernels;
use crate::outcome::{EvalResult, Outcome};
use crate::param::{Domain, ParamSpace};
use crate::predicate::{Comparator, Predicate};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Open-addressing index from dense instance keys to run indices.
///
/// Slots hold `(fingerprint, run)` pairs; the key bytes live in a flat
/// side arena (`arity` `u32`s per run, zero-filled for unencodable runs), so
/// every probe is hash → slot → one contiguous arena row — no pointer chase
/// through the run log. A fingerprint match is always confirmed against the
/// arena row, so lookups are exact even under 64-bit hash collisions; this
/// is still a handful of nanoseconds against a 10k-run history, versus the
/// tens a general-purpose `HashMap<Box<[u32]>, _>` costs on the same probe.
#[derive(Debug, Clone)]
struct KeyIndex {
    /// Packed slots: high 32 bits = fingerprint tag (`fp >> 32`), low 32 =
    /// run index (`EMPTY` marks a free slot). 8 bytes per slot keeps the
    /// table cache-resident at large histories. Slot position is derived
    /// from the fingerprint's *high* bits — the same bits the tag stores —
    /// so growth re-derives every position from the stored tag instead of
    /// rehashing arena rows; a tag match is still always confirmed against
    /// the arena, so lookups stay exact under collisions.
    slots: Vec<u64>,
    mask: usize,
    len: usize,
    /// Dense keys, one `arity`-sized row per run (in run order).
    arena: Vec<u32>,
    /// Key length — the parameter count of the store's space.
    arity: usize,
}

const EMPTY: u32 = u32::MAX;
const FREE_SLOT: u64 = EMPTY as u64;

#[inline]
fn pack_slot(fp: u64, run: u32) -> u64 {
    (fp & 0xFFFF_FFFF_0000_0000) | run as u64
}

/// Home slot for a fingerprint: its high bits (the stored tag), masked.
/// Shared by probe, insert, and growth so all three agree.
#[inline]
fn home_slot(fp: u64, mask: usize) -> usize {
    (fp >> 32) as usize & mask
}

impl KeyIndex {
    fn new(arity: usize) -> Self {
        KeyIndex {
            slots: vec![FREE_SLOT; 16],
            mask: 15,
            len: 0,
            arena: Vec::new(),
            arity,
        }
    }

    /// The arena row holding run `r`'s dense key.
    // lint: allow(W003, reason = "every caller passes a run index whose row was appended by insert_at/push_overflow_row, so the arena slice r*arity..(r+1)*arity exists by construction", scope = "block")
    #[inline]
    fn row(&self, r: usize) -> &[u32] {
        &self.arena[r * self.arity..(r + 1) * self.arity]
    }

    /// One probe serving both lookup and insert: `Ok(run)` when the key is
    /// present, `Err(free_slot)` with the slot its probe chain ended at —
    /// exactly where an insert of this key belongs. Exact: every tag match
    /// is confirmed against the stored key bytes. The returned slot is
    /// valid only until the table next grows.
    // lint: allow(W003, reason = "open-addressing probe: i is always masked by self.mask, which is slots.len() - 1 for a power-of-two table, so slots[i] cannot be out of bounds", scope = "block")
    #[inline]
    fn probe(&self, fp: u64, key: &[u32]) -> Result<usize, usize> {
        let tag = fp & 0xFFFF_FFFF_0000_0000;
        let mut i = home_slot(fp, self.mask);
        loop {
            let slot = self.slots[i];
            let run = slot as u32;
            if run == EMPTY {
                return Err(i);
            }
            if slot & 0xFFFF_FFFF_0000_0000 == tag && self.row(run as usize) == key {
                return Ok(run as usize);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// The run whose instance has dense key `key`, given `key`'s fingerprint.
    #[inline]
    fn get(&self, fp: u64, key: &[u32]) -> Option<usize> {
        self.probe(fp, key).ok()
    }

    /// Appends run `run`'s key row (callers append rows strictly in run
    /// order) and indexes it at `slot` — the free slot a just-completed
    /// [`probe`](Self::probe) miss returned, so the record hot path pays one
    /// chain walk, not two. The key must be absent and `run` below
    /// [`EMPTY`]. If the insert triggers growth the slot is re-derived
    /// under the new mask.
    // lint: allow(W003, reason = "slot comes from a probe miss under the current mask (re-derived after growth), so it is a live in-bounds free slot", scope = "block")
    fn insert_at(&mut self, mut slot: usize, fp: u64, run: u32, key: &[u32]) {
        debug_assert_eq!(key.len(), self.arity);
        debug_assert_eq!(self.arena.len(), run as usize * self.arity);
        assert!(run < EMPTY, "run index overflow");
        self.arena.extend_from_slice(key);
        if (self.len + 1) * 2 > self.slots.len() {
            self.grow();
            slot = self
                .probe(fp, key)
                .expect_err("key inserted twice: probe hit after grow");
        }
        debug_assert_eq!(self.slots[slot] as u32, EMPTY, "insert into occupied slot");
        self.slots[slot] = pack_slot(fp, run);
        self.len += 1;
    }

    /// Appends a zero-filled arena row for a run that has no dense key, so
    /// row addressing stays `run * arity`. (The row is never compared: only
    /// runs inserted into `slots` are.)
    fn push_overflow_row(&mut self, run: u32) {
        debug_assert_eq!(self.arena.len(), run as usize * self.arity);
        self.arena.extend(std::iter::repeat(0).take(self.arity));
    }

    /// Pre-sizes for `additional` further inserts: the arena reserves their
    /// key rows and the slot table jumps straight to its final size, so a
    /// bulk load (snapshot restore, WAL replay) pays zero intermediate
    /// grow-and-rehash passes.
    fn reserve(&mut self, additional: usize) {
        self.arena.reserve(additional * self.arity);
        let needed = (self.len + additional + 1) * 2;
        if needed > self.slots.len() {
            self.grow_to(needed.next_power_of_two());
        }
    }

    fn grow(&mut self) {
        // Quadruple while small: a doubling schedule re-places every slot
        // O(log n) times, and below this size the table is cache-resident
        // anyway, so the larger steps cost nothing but skipped rehashes.
        let new_cap = if self.slots.len() <= 4096 {
            self.slots.len() * 4
        } else {
            self.slots.len() * 2
        };
        self.grow_to(new_cap);
    }

    // lint: allow(W003, reason = "re-placement walk: i stays masked by the new power-of-two mask, and the table is at most half full so an EMPTY slot terminates the loop", scope = "block")
    fn grow_to(&mut self, new_cap: usize) {
        debug_assert!(new_cap.is_power_of_two() && new_cap > self.slots.len());
        let old = std::mem::replace(&mut self.slots, vec![FREE_SLOT; new_cap]);
        self.mask = new_cap - 1;
        for slot in old {
            if slot as u32 == EMPTY {
                continue;
            }
            // The home position is derived from the tag bits the slot
            // already stores, so growth never rehashes arena rows — it just
            // re-derives positions under the wider mask.
            let mut i = home_slot(slot, self.mask);
            while self.slots[i] as u32 != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = slot;
        }
    }
}

/// Default runs per epoch of the segmented value index (see the module
/// docs). Sized so the expensive part of a query — the raw-row scan of the
/// in-progress epoch — stays a few words per value row, while frozen
/// (prefix-encoded) epochs answer predicates in 1–4 row reads each.
pub const DEFAULT_EPOCH_RUNS: usize = 1024;

/// Default minimum number of *full* epochs before an indexed query fans out
/// across query workers. Below this, thread spawn/join overhead exceeds the
/// scan itself, so small logs always take the sequential path.
pub const DEFAULT_PARALLEL_MIN_EPOCHS: usize = 8;

/// Observability counters for the epoch query paths, updated by `support`,
/// `support_many`, `satisfying_runs`, and `succeeding_superset_exists`
/// (atomics, so `&self` queries can count and worker threads can share
/// them). Cloning a store snapshots the current values.
#[derive(Debug, Default)]
struct QueryStats {
    /// Indexed queries that took the parallel fan-out path.
    parallel_epoch_queries: AtomicU64,
    /// Epochs (full + in-progress) visited by indexed queries.
    epochs_scanned: AtomicU64,
    /// Queries fully decided by the bounds layer (no word-level scan ran).
    bounds_short_circuits: AtomicU64,
    /// Queries whose bounds were inconclusive and fell through to the exact
    /// kernel path.
    bounds_fallthroughs: AtomicU64,
}

impl Clone for QueryStats {
    // lint: allow(W004, reason = "relaxed loads of monotonic telemetry counters; a clone is a point-in-time diagnostic snapshot, not a synchronization point", scope = "block")
    fn clone(&self) -> Self {
        QueryStats {
            parallel_epoch_queries: AtomicU64::new(
                self.parallel_epoch_queries.load(Ordering::Relaxed),
            ),
            epochs_scanned: AtomicU64::new(self.epochs_scanned.load(Ordering::Relaxed)),
            bounds_short_circuits: AtomicU64::new(
                self.bounds_short_circuits.load(Ordering::Relaxed),
            ),
            bounds_fallthroughs: AtomicU64::new(self.bounds_fallthroughs.load(Ordering::Relaxed)),
        }
    }
}

/// Admissible bounds on a conjunction's support: the exact
/// `(failing, succeeding)` counts [`support`](ProvenanceStore::support)
/// would return are guaranteed to satisfy `fail_lo ≤ failing ≤ fail_hi` and
/// `succeed_lo ≤ succeeding ≤ succeed_hi`.
///
/// Produced by [`support_bounds`](ProvenanceStore::support_bounds) from
/// per-epoch integer count tables alone — never a word-level scan — so a
/// bound query is O(epochs × predicates) arithmetic. The bounds layer uses
/// them as *exact-preserving* early-outs: a query is answered from the bound
/// only when the bound fully decides it (e.g. `succeed_hi == 0` proves no
/// succeeding superset exists; `succeed_lo > 0` proves one does), otherwise
/// the exact kernel path runs unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupportBounds {
    /// Lower bound on the failing satisfying-run count.
    pub fail_lo: usize,
    /// Upper bound on the failing satisfying-run count.
    pub fail_hi: usize,
    /// Lower bound on the succeeding satisfying-run count.
    pub succeed_lo: usize,
    /// Upper bound on the succeeding satisfying-run count.
    pub succeed_hi: usize,
}

impl SupportBounds {
    /// True when an exact `(failing, succeeding)` support lies within the
    /// bounds — the admissibility invariant the conformance suite pins.
    pub fn admits(&self, (failing, succeeding): (usize, usize)) -> bool {
        self.fail_lo <= failing
            && failing <= self.fail_hi
            && self.succeed_lo <= succeeding
            && succeeding <= self.succeed_hi
    }

    /// True when the bounds pin both counts exactly (`lo == hi` on both
    /// outcomes), so the exact support is known without any scan.
    pub fn is_exact(&self) -> bool {
        self.fail_lo == self.fail_hi && self.succeed_lo == self.succeed_hi
    }
}

/// Per-epoch integer count tables the bounds layer reads: the epoch's
/// outcome counts plus *cumulative* per-value run counts (`cum[base + v]` =
/// indexable runs in the epoch whose value index for that parameter is
/// `≤ v`), so any predicate's per-epoch satisfying-run count is an
/// adjacent-difference per allowed range — the integer twin of the frozen
/// block's adjacent-prefix popcount difference. Built at freeze time from
/// the incrementally maintained current-epoch counts and kept through
/// retirement (4 bytes per value, negligible next to the arena).
#[derive(Debug, Clone)]
struct EpochCounts {
    /// Failing runs in the epoch (overflow runs included).
    failing: u32,
    /// Succeeding runs in the epoch (overflow runs included).
    succeeding: u32,
    /// Indexable (densely encoded) runs in the epoch.
    indexed: u32,
    /// Cumulative per-(parameter, value) run counts, `offsets` layout.
    cum: Box<[u32]>,
}

impl EpochCounts {
    /// Runs in the epoch satisfying a predicate with the given flat-index
    /// base and allowed-value ranges: an adjacent difference per range.
    // lint: allow(W003, reason = "cum holds one entry per (parameter, value) in offsets layout and ranges come from the same domain, so base + hi is in bounds by construction", scope = "block")
    #[inline]
    fn pred_count(&self, base: usize, ranges: &Ranges) -> u32 {
        let mut n = 0u32;
        for &(lo, hi) in ranges.as_slice() {
            let below = if lo == 0 { 0 } else { self.cum[base + lo as usize - 1] };
            n += self.cum[base + hi as usize] - below;
        }
        n
    }
}

/// A predicate's allowed value indices as maximal contiguous inclusive
/// `[lo, hi]` ranges, ascending. Every comparator's extension over a domain
/// is at most two ranges — equality is a point, its complement two pieces,
/// `≤`/`>` a prefix/suffix of the sorted ordinal order — so the common case
/// stores inline without allocating; only the degenerate fallback (an order
/// comparator applied to an unordered domain) can spill.
enum Ranges {
    Inline(u8, [(u32, u32); 2]),
    Spill(Vec<(u32, u32)>),
}

impl Ranges {
    const EMPTY: Ranges = Ranges::Inline(0, [(0, 0); 2]);

    fn push(&mut self, r: (u32, u32)) {
        match self {
            Ranges::Inline(n, arr) => {
                if (*n as usize) < arr.len() {
                    // lint: allow(W003, reason = "guarded by the bounds check on the line above")
                    arr[*n as usize] = r;
                    *n += 1;
                } else {
                    let mut v = arr.to_vec();
                    v.push(r);
                    *self = Ranges::Spill(v);
                }
            }
            Ranges::Spill(v) => v.push(r),
        }
    }

    fn as_slice(&self) -> &[(u32, u32)] {
        match self {
            // lint: allow(W003, reason = "push keeps n <= arr.len(), spilling to the Vec variant before it could exceed the inline capacity")
            Ranges::Inline(n, arr) => &arr[..*n as usize],
            Ranges::Spill(v) => v,
        }
    }
}

/// One predicate of a conjunction, resolved against the store's index
/// layout: its flat-index base, its allowed values as contiguous ranges,
/// and (when some epoch is retired) a bitmap of those values for arena
/// scans. In a frozen (prefix-encoded) block a range `[lo, hi]` is the term
/// `prefix[hi] & !prefix[lo-1]` (just `prefix[hi]` when `lo = 0`); in the
/// raw current block it is an OR over rows `lo..=hi`.
struct PredPlan {
    base: usize,
    param: usize,
    ranges: Ranges,
    mask: Vec<u64>,
}

/// A predicate resolved for the bounds layer only: its flat-index base and
/// its allowed-value ranges. No bit masks — bounds never scan words.
struct BoundPlan {
    base: usize,
    ranges: Ranges,
}

/// Reusable scratch for the per-predicate term slices of frozen-epoch scans
/// (borrowed prefix rows of the epoch block under evaluation).
#[derive(Default)]
struct TermScratch<'s> {
    full: Vec<&'s [u64]>,
    diff: Vec<(&'s [u64], &'s [u64])>,
}

/// `words[at..]`, or empty when `at` is past the end — the outcome-bitset
/// window of an epoch (outcome sets stop growing at the last run of their
/// kind, so an epoch's window may be short or absent).
#[inline]
fn words_from(words: &[u64], at: usize) -> &[u64] {
    words.get(at..).unwrap_or(&[])
}

/// The `len`-word window of `words` at `at`, clamped at both ends — an
/// epoch's slice of an outcome bitset, which may be short or absent because
/// outcome sets stop growing at the last run of their kind.
#[inline]
fn epoch_window(words: &[u64], at: usize, len: usize) -> &[u64] {
    let tail = words_from(words, at);
    tail.get(..len).unwrap_or(tail)
}

/// The summary a retired epoch's bit block is folded into: exact run counts,
/// enough to prune queries that cannot match the epoch, while the epoch's
/// per-run bits are answered from the dense-key arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSummary {
    /// Failing runs in the epoch.
    pub failing: u32,
    /// Succeeding runs in the epoch.
    pub succeeding: u32,
    /// Per-(parameter, value) run counts, in the store's `offsets` layout.
    value_counts: Box<[u32]>,
}

impl EpochSummary {
    /// Runs in the epoch assigning domain value `value_idx` to parameter `p`
    /// (indexed as `offsets[p] + value_idx`; see [`ProvenanceStore`]).
    // lint: allow(W003, reason = "documented caller contract: flat_value_idx is offsets[p] + value_idx for the space this summary was built over, and a panic on a bad index is the intended API response", scope = "block")
    pub fn value_count(&self, flat_value_idx: usize) -> u32 {
        self.value_counts[flat_value_idx]
    }
}

/// One recorded execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Run {
    /// The executed instance.
    pub instance: Instance,
    /// Its evaluation.
    pub eval: EvalResult,
}

impl Run {
    /// The binary outcome.
    pub fn outcome(&self) -> Outcome {
        self.eval.outcome
    }
}

/// The execution history of a pipeline, deduplicated by instance.
///
/// The evaluation procedure is deterministic (paper §3, Def. 2), so recording
/// the same instance twice with conflicting outcomes is a bug; `record`
/// detects and reports it. See the module docs for the dense-key and bitset
/// index this store maintains.
#[derive(Debug, Clone)]
pub struct ProvenanceStore {
    space: Arc<ParamSpace>,
    runs: Vec<Run>,
    /// Dense instance encoding → run index (no instance clone stored).
    by_key: KeyIndex,
    /// Start of parameter `p`'s slice of the flat value index.
    offsets: Vec<u32>,
    /// Total `(parameter, value)` slots — `offsets.last() + last domain len`.
    total_values: u32,
    /// Runs per epoch (a multiple of 64, so epochs are word-aligned).
    epoch_runs: usize,
    /// Words per value per epoch: `epoch_runs / 64`.
    epoch_words: usize,
    /// Value-bit blocks of *completed* epochs (`total_values * epoch_words`
    /// words each, prefix-OR encoded — see the module docs — and frozen from
    /// `current` when the epoch fills); `None` once the epoch is retired by
    /// compaction.
    blocks: Vec<Option<Box<[u64]>>>,
    /// Summary counts of retired epochs (`None` while the block is live).
    summaries: Vec<Option<EpochSummary>>,
    /// The in-progress epoch's *raw* value rows, one flat pre-zeroed block
    /// in the same `(offsets[p] + v) * epoch_words` layout as a frozen
    /// block: recording a run is one `|=` per parameter, and freezing is a
    /// move plus the in-place prefix conversion.
    current: Vec<u64>,
    /// Integer count tables of every *full* epoch (frozen or retired), in
    /// epoch order — the bounds layer's only input for full epochs.
    epoch_counts: Vec<EpochCounts>,
    /// Per-(parameter, value) run counts of the in-progress epoch,
    /// maintained incrementally by `record` (one increment per parameter) so
    /// the bounds layer never scans the raw block.
    current_counts: Vec<u32>,
    /// `(failing, succeeding, indexed)` counts among the in-progress
    /// epoch's runs, reset at each freeze.
    tail_counts: (u32, u32, u32),
    /// Gate for the admissible-bounds early-outs on `support` /
    /// `succeeding_superset_exists` (on by default; see
    /// [`set_bounds_enabled`](Self::set_bounds_enabled)).
    bounds_enabled: bool,
    /// Runs in the in-progress epoch — always `runs.len() % epoch_runs`,
    /// carried as a counter so the record hot path never divides by the
    /// (runtime-chosen, not necessarily power-of-two) epoch size.
    tail_runs: usize,
    /// When set, `record` retires all but the newest this-many full epochs
    /// as soon as a new epoch opens.
    max_live_epochs: Option<usize>,
    /// Runs that failed.
    fail_bits: RunSet,
    /// Runs that succeeded.
    succeed_bits: RunSet,
    /// Runs whose instances could not be densely encoded (out-of-domain
    /// values); they are absent from `by_key`/the value index and served by
    /// the interpretive fallback paths.
    overflow: Vec<u32>,
    /// Same runs as `overflow`, as a set — arena scans over retired epochs
    /// use it to skip the zero-filled rows.
    overflow_bits: RunSet,
    /// Worker threads indexed queries may fan full epochs out across
    /// (1 = always sequential; see [`set_query_workers`](Self::set_query_workers)).
    query_workers: usize,
    /// Full epochs required before a query parallelizes
    /// ([`DEFAULT_PARALLEL_MIN_EPOCHS`] by default).
    parallel_min_epochs: usize,
    /// Parallelism/coverage counters (see [`query_counters`](Self::query_counters)).
    query_stats: QueryStats,
}

impl ProvenanceStore {
    /// An empty history over a space, with the default epoch size
    /// ([`DEFAULT_EPOCH_RUNS`]).
    pub fn new(space: Arc<ParamSpace>) -> Self {
        ProvenanceStore::with_epoch_size(space, DEFAULT_EPOCH_RUNS)
    }

    /// An empty history whose value index is segmented into epochs of
    /// `epoch_runs` runs. `epoch_runs` must be a non-zero multiple of 64
    /// (epochs are word-aligned). Small epochs make compaction kick in
    /// earlier at the price of more per-epoch bookkeeping.
    pub fn with_epoch_size(space: Arc<ParamSpace>, epoch_runs: usize) -> Self {
        assert!(
            epoch_runs > 0 && epoch_runs % 64 == 0,
            "epoch size must be a non-zero multiple of 64, got {epoch_runs}"
        );
        let mut offsets = Vec::with_capacity(space.len());
        let mut total = 0u32;
        for p in space.ids() {
            offsets.push(total);
            total += space.domain(p).len() as u32;
        }
        let arity = space.len();
        ProvenanceStore {
            space,
            runs: Vec::new(),
            by_key: KeyIndex::new(arity),
            offsets,
            total_values: total,
            epoch_runs,
            epoch_words: epoch_runs / 64,
            blocks: Vec::new(),
            summaries: Vec::new(),
            current: vec![0u64; total as usize * (epoch_runs / 64)],
            epoch_counts: Vec::new(),
            current_counts: vec![0u32; total as usize],
            tail_counts: (0, 0, 0),
            bounds_enabled: true,
            tail_runs: 0,
            max_live_epochs: None,
            fail_bits: RunSet::new(),
            succeed_bits: RunSet::new(),
            overflow: Vec::new(),
            overflow_bits: RunSet::new(),
            query_workers: 1,
            parallel_min_epochs: DEFAULT_PARALLEL_MIN_EPOCHS,
            query_stats: QueryStats::default(),
        }
    }

    /// Sets how many worker threads indexed queries (`support`,
    /// `support_many`, `satisfying_runs`, `succeeding_superset_exists`) may
    /// fan frozen/retired epochs out across. Values ≤ 1 keep every query
    /// sequential. Parallelism only engages on logs with at least the
    /// [parallel epoch threshold](Self::set_parallel_epoch_threshold) of
    /// full epochs — small logs never pay thread overhead — and results are
    /// bit-identical to the sequential path: epochs are disjoint word
    /// ranges, merged deterministically.
    pub fn set_query_workers(&mut self, workers: usize) {
        self.query_workers = workers.max(1);
    }

    /// The configured query worker count (1 = sequential).
    pub fn query_workers(&self) -> usize {
        self.query_workers
    }

    /// Overrides the minimum number of full epochs before indexed queries
    /// parallelize (default [`DEFAULT_PARALLEL_MIN_EPOCHS`]). Mainly for
    /// tests and tuning; lowering it on small logs trades thread overhead
    /// for nothing.
    pub fn set_parallel_epoch_threshold(&mut self, min_full_epochs: usize) {
        self.parallel_min_epochs = min_full_epochs.max(1);
    }

    /// `(parallel_epoch_queries, epochs_scanned)`: how many indexed queries
    /// took the parallel fan-out path, and how many epochs (full +
    /// in-progress) indexed queries have visited in total.
    pub fn query_counters(&self) -> (u64, u64) {
        // Relaxed loads: diagnostic counters only, no ordering with queries.
        (
            self.query_stats.parallel_epoch_queries.load(Ordering::Relaxed),
            self.query_stats.epochs_scanned.load(Ordering::Relaxed),
        )
    }

    /// Enables or disables the admissible-bounds early-outs layered on
    /// [`support`](Self::support) and
    /// [`succeeding_superset_exists`](Self::succeeding_superset_exists)
    /// (enabled by default). Pruning is exact-preserving — results are
    /// bit-identical either way — so the switch exists for differential
    /// testing and as an escape hatch, not for correctness.
    pub fn set_bounds_enabled(&mut self, enabled: bool) {
        self.bounds_enabled = enabled;
    }

    /// Whether the bounds-layer early-outs are enabled.
    pub fn bounds_enabled(&self) -> bool {
        self.bounds_enabled
    }

    /// `(bounds_short_circuits, bounds_fallthroughs)`: queries the bounds
    /// layer decided outright versus queries whose bounds were inconclusive
    /// and fell through to the exact kernel path.
    pub fn bounds_counters(&self) -> (u64, u64) {
        // Relaxed loads: diagnostic counters only, no ordering with queries.
        (
            self.query_stats.bounds_short_circuits.load(Ordering::Relaxed),
            self.query_stats.bounds_fallthroughs.load(Ordering::Relaxed),
        )
    }

    /// True when a query over `full` frozen/retired epochs should fan out.
    #[inline]
    fn use_parallel(&self, full_epochs: usize) -> bool {
        self.query_workers > 1 && full_epochs >= self.parallel_min_epochs
    }

    /// Bumps the query counters for one indexed query over the whole log.
    fn note_query(&self, full_epochs: usize, parallel: bool) {
        let partial = usize::from(self.runs.len() % self.epoch_runs != 0);
        // Relaxed increments: telemetry only, never read for control flow.
        self.query_stats
            .epochs_scanned
            .fetch_add((full_epochs + partial) as u64, Ordering::Relaxed);
        if parallel {
            // Relaxed: same telemetry-only counter discipline as above.
            self.query_stats
                .parallel_epoch_queries
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Freezes the just-completed epoch: moves the flat `current` block out
    /// (a fresh zeroed block replaces it), converts each parameter's raw
    /// value rows to cumulative prefix-ORs in place (row `v` |= row `v-1`,
    /// ascending — the frozen-block query encoding), and applies the
    /// auto-compaction bound if one is set. Called exactly when
    /// `runs.len()` reaches an epoch boundary.
    // lint: allow(W003, reason = "block is allocated as total_values * epoch_words and cum as total_values, and every index is (base + v) with v < domain.len() in offsets layout, so all slices exist by construction", scope = "block")
    fn freeze_current_epoch(&mut self) {
        let w = self.epoch_words;
        let total = self.total_values as usize;
        let mut block = std::mem::replace(&mut self.current, vec![0u64; total * w]).into_boxed_slice();
        for (p, &base) in self.space.ids().zip(&self.offsets) {
            let len = self.space.domain(p).len();
            for v in 1..len {
                let at = (base as usize + v) * w;
                let (head, tail) = block.split_at_mut(at);
                kernels::or_into(&mut tail[..w], &head[at - w..]);
            }
        }
        self.blocks.push(Some(block));
        self.summaries.push(None);
        // Fold the incrementally maintained per-value counts into the
        // epoch's cumulative count table (prefix-sum per parameter — the
        // integer twin of the prefix-OR conversion above) and reset them
        // for the next epoch.
        let mut cum = std::mem::replace(&mut self.current_counts, vec![0u32; total])
            .into_boxed_slice();
        for (p, &base) in self.space.ids().zip(&self.offsets) {
            let base = base as usize;
            for v in 1..self.space.domain(p).len() {
                cum[base + v] += cum[base + v - 1];
            }
        }
        let (failing, succeeding, indexed) = self.tail_counts;
        self.tail_counts = (0, 0, 0);
        self.epoch_counts.push(EpochCounts {
            failing,
            succeeding,
            indexed,
            cum,
        });
        if let Some(keep) = self.max_live_epochs {
            self.compact(keep);
        }
    }

    /// Run index of an unencodable instance, by value equality.
    // lint: allow(W003, reason = "overflow stores indices of runs that were pushed before being recorded there, so runs[i] exists", scope = "block")
    fn overflow_find(&self, instance: &Instance) -> Option<usize> {
        self.overflow
            .iter()
            .map(|&i| i as usize)
            .find(|&i| &self.runs[i].instance == instance)
    }

    /// A predicate's extension as contiguous ranges, without scanning the
    /// domain: equality and its complement are one hash probe
    /// ([`Domain::exact_index_of`] — the same `==` semantics
    /// [`Predicate::allowed_indices`] applies), `≤`/`>` on an ordinal domain
    /// are a `partition_point` over the values (sorted by the very order the
    /// comparator uses). Only an order comparator on an unordered domain —
    /// constructible but meaningless — falls back to the `O(len)` scan.
    // lint: allow(W003, reason = "the contiguous-run walk only reads allowed[k] under k < allowed.len() checks on the enclosing loop conditions", scope = "block")
    fn pred_ranges(pred: &Predicate, domain: &Domain) -> Ranges {
        let len = domain.len() as u32;
        let mut ranges = Ranges::EMPTY;
        if len == 0 {
            return ranges;
        }
        match pred.cmp {
            Comparator::Eq => {
                if let Some(i) = domain.exact_index_of(&pred.value) {
                    ranges.push((i as u32, i as u32));
                }
            }
            Comparator::Neq => match domain.exact_index_of(&pred.value) {
                Some(i) => {
                    let i = i as u32;
                    if i > 0 {
                        ranges.push((0, i - 1));
                    }
                    if i + 1 < len {
                        ranges.push((i + 1, len - 1));
                    }
                }
                None => ranges.push((0, len - 1)),
            },
            Comparator::Le | Comparator::Gt if domain.is_ordinal() => {
                let k = domain.values().partition_point(|x| x <= &pred.value) as u32;
                if pred.cmp == Comparator::Le {
                    if k > 0 {
                        ranges.push((0, k - 1));
                    }
                } else if k < len {
                    ranges.push((k, len - 1));
                }
            }
            _ => {
                // Contiguous-run split of the interpretive extension.
                let allowed = pred.allowed_indices(domain);
                debug_assert!(allowed.windows(2).all(|w| w[0] < w[1]));
                let mut k = 0;
                while k < allowed.len() {
                    let lo = allowed[k];
                    let mut hi = lo;
                    while k + 1 < allowed.len() && allowed[k + 1] == hi + 1 {
                        k += 1;
                        hi = allowed[k];
                    }
                    ranges.push((lo as u32, hi as u32));
                    k += 1;
                }
            }
        }
        debug_assert_eq!(
            ranges
                .as_slice()
                .iter()
                .flat_map(|&(lo, hi)| lo as usize..=hi as usize)
                .collect::<Vec<_>>(),
            pred.allowed_indices(domain),
            "range fast path diverged from the interpretive extension"
        );
        ranges
    }

    /// Resolves each predicate of a non-empty conjunction once against the
    /// index layout. The per-domain value bitmaps only serve the arena-scan
    /// path, so they are built only when some epoch is actually retired.
    // lint: allow(W001, reason = "single-bit set-up of a per-predicate value mask during query planning, O(allowed values) once per query -- not a bulk word-granularity scan over run bitsets", scope = "block")
    // lint: allow(W003, reason = "mask is sized domain.len().div_ceil(64) right above and vi < domain.len(); offsets holds one entry per parameter of the space the predicate is drawn from", scope = "block")
    fn plan_predicates(&self, cause: &Conjunction) -> Vec<PredPlan> {
        let any_retired = self.summaries.iter().any(Option::is_some);
        cause
            .predicates()
            .iter()
            .map(|pred| {
                let domain = self.space.domain(pred.param);
                let ranges = Self::pred_ranges(pred, domain);
                let mut mask = if any_retired {
                    vec![0u64; domain.len().div_ceil(64)]
                } else {
                    Vec::new()
                };
                if any_retired {
                    for &(lo, hi) in ranges.as_slice() {
                        for vi in lo as usize..=hi as usize {
                            mask[vi / 64] |= 1u64 << (vi % 64);
                        }
                    }
                }
                PredPlan {
                    base: self.offsets[pred.param.index()] as usize,
                    param: pred.param.index(),
                    ranges,
                    mask,
                }
            })
            .collect()
    }

    /// Computes full epoch `e`'s satisfying-run words into `acc`
    /// (`acc.len() == epoch_words`; `scratch` is reusable scratch for the
    /// per-predicate term slices). A frozen epoch is an AND-of-unions over
    /// its prefix-encoded block via the fused term [`kernels`] — each
    /// predicate costs 1–4 row reads, however many values it allows; a
    /// retired epoch is a dense-key arena scan against the predicate value
    /// masks, after a summary-count check that skips epochs which cannot
    /// match. On return `acc` always holds the exact epoch words (all zero
    /// when the epoch has no match); the return value is `false` iff no run
    /// in the epoch satisfies.
    ///
    /// Epochs are disjoint word ranges of the run log, so callers — serial
    /// or fanned out across threads — merge results deterministically.
    // lint: allow(W001, reason = "per-run single-bit insert on the retired-epoch arena-scan path; the bulk word work is delegated to the fused kernels above it", scope = "block")
    // lint: allow(W003, reason = "frozen-block rows are (base + value) * epoch_words slices of a block allocated at that exact size; the expect is the freeze/retire invariant that a None block always has a Some summary; arena keys index masks sized to their own domain", scope = "block")
    fn epoch_acc_into<'s>(
        &'s self,
        e: usize,
        preds: &[PredPlan],
        scratch: &mut TermScratch<'s>,
        acc: &mut [u64],
    ) -> bool {
        let w = self.epoch_words;
        debug_assert_eq!(acc.len(), w);
        match &self.blocks[e] {
            Some(words) => {
                for (pi, p) in preds.iter().enumerate() {
                    scratch.full.clear();
                    scratch.diff.clear();
                    for &(lo, hi) in p.ranges.as_slice() {
                        let hi_row = (p.base + hi as usize) * w;
                        if lo == 0 {
                            scratch.full.push(&words[hi_row..hi_row + w]);
                        } else {
                            let lo_row = (p.base + lo as usize - 1) * w;
                            scratch
                                .diff
                                .push((&words[hi_row..hi_row + w], &words[lo_row..lo_row + w]));
                        }
                    }
                    if pi == 0 {
                        kernels::or_terms_into(acc, &scratch.full, &scratch.diff);
                    } else {
                        kernels::and_terms_into(acc, &scratch.full, &scratch.diff);
                    }
                    if kernels::is_zero(acc) {
                        return false;
                    }
                }
                true
            }
            None => {
                acc.fill(0);
                let summary = self.summaries[e].as_ref().expect("retired epoch has a summary");
                // A predicate none of whose allowed values occur in the
                // epoch rules the whole epoch out.
                if preds.iter().any(|p| {
                    p.ranges
                        .as_slice()
                        .iter()
                        .flat_map(|&(lo, hi)| lo as usize..=hi as usize)
                        .all(|vi| summary.value_counts[p.base + vi] == 0)
                }) {
                    return false;
                }
                let start = e * self.epoch_runs;
                let end = start + self.epoch_runs;
                let mut any = false;
                'rows: for r in start..end {
                    if self.overflow_bits.contains(r) {
                        continue;
                    }
                    let key = self.by_key.row(r);
                    for p in preds {
                        let vi = key[p.param] as usize;
                        if p.mask[vi / 64] >> (vi % 64) & 1 == 0 {
                            continue 'rows;
                        }
                    }
                    let in_epoch = r - start;
                    acc[in_epoch / 64] |= 1u64 << (in_epoch % 64);
                    any = true;
                }
                any
            }
        }
    }

    /// The in-progress epoch's satisfying-run words, into `acc`
    /// (`acc.len() ==` the epoch's filled word count): an AND-of-ORs over
    /// the raw value rows of the flat `current` block — raw because the
    /// prefix conversion only happens at freeze, so here every allowed
    /// value's row is OR'd, sliced to the filled words. Same contract as
    /// [`epoch_acc_into`](Self::epoch_acc_into).
    // lint: allow(W003, reason = "current is allocated as total_values * epoch_words and acc.len() is the filled word count <= epoch_words, so every (base + vi) * w row slice is in bounds", scope = "block")
    fn current_acc_into(&self, preds: &[PredPlan], acc: &mut [u64]) -> bool {
        let w = self.epoch_words;
        let used = acc.len();
        let mut srcs: Vec<&[u64]> = Vec::new();
        for (pi, p) in preds.iter().enumerate() {
            srcs.clear();
            for &(lo, hi) in p.ranges.as_slice() {
                srcs.extend((lo as usize..=hi as usize).map(|vi| {
                    let base = (p.base + vi) * w;
                    &self.current[base..base + used]
                }));
            }
            if pi == 0 {
                kernels::or_multi_into(acc, &srcs);
            } else {
                kernels::and_or_multi_into(acc, &srcs);
            }
            if kernels::is_zero(acc) {
                return false;
            }
        }
        true
    }

    /// `(failing, succeeding)` counts of the runs in `acc`'s word window
    /// starting at word `at` of the log — fused AND+popcount against the
    /// outcome bitsets, clamped to `acc`'s length.
    #[inline]
    fn outcome_counts_at(&self, at: usize, acc: &[u64]) -> (usize, usize) {
        (
            kernels::and_popcount(acc, words_from(self.fail_bits.words(), at)),
            kernels::and_popcount(acc, words_from(self.succeed_bits.words(), at)),
        )
    }

    /// Splits `0..full` into one contiguous epoch range per worker.
    fn epoch_ranges(full: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
        let per = full.div_ceil(workers);
        (0..workers)
            .map(|ci| (ci * per).min(full)..((ci + 1) * per).min(full))
            .filter(|r| !r.is_empty())
            .collect()
    }

    /// The set of runs satisfying `cause`, as a bitset over run indices.
    ///
    /// Live epochs are answered by word-parallel AND-of-ORs over their bit
    /// blocks; retired epochs by scanning their dense-key arena rows against
    /// per-predicate allowed-value masks (after a summary-count check that
    /// skips epochs which cannot match). Both paths are exact. Above the
    /// parallel threshold, full epochs are fanned out across the query
    /// workers — each worker writes its epochs' disjoint word ranges of the
    /// result, so the merged set is bit-identical to the sequential scan.
    // lint: allow(W003, reason = "the result set is grown to runs.len().div_ceil(64) words up front, so the full*w epoch window, the current-epoch word window, and overflow run indices are all in bounds", scope = "block")
    fn satisfying_set(&self, cause: &Conjunction) -> RunSet {
        if cause.is_empty() {
            return RunSet::full(self.runs.len());
        }
        let preds = self.plan_predicates(cause);
        let w = self.epoch_words;
        let full = self.blocks.len();
        let parallel = self.use_parallel(full);
        self.note_query(full, parallel);
        let mut set = RunSet::new();
        set.grow_words(self.runs.len().div_ceil(64));
        if parallel {
            let per = full.div_ceil(self.query_workers);
            let words = set.words_mut();
            std::thread::scope(|scope| {
                for (ci, chunk) in words[..full * w].chunks_mut(per * w).enumerate() {
                    let preds = &preds;
                    scope.spawn(move || {
                        let mut scratch = TermScratch::default();
                        for (j, acc) in chunk.chunks_mut(w).enumerate() {
                            self.epoch_acc_into(ci * per + j, preds, &mut scratch, acc);
                        }
                    });
                }
            });
        } else {
            let mut scratch = TermScratch::default();
            let words = set.words_mut();
            for (e, acc) in words[..full * w].chunks_mut(w).enumerate() {
                self.epoch_acc_into(e, &preds, &mut scratch, acc);
            }
        }
        // The in-progress epoch, swept only to the filled word count.
        let cur_base = full * self.epoch_runs;
        let used = (self.runs.len() - cur_base).div_ceil(64);
        if used > 0 {
            let mut acc = vec![0u64; used];
            if self.current_acc_into(&preds, &mut acc) {
                let at = cur_base / 64;
                set.words_mut()[at..at + used].copy_from_slice(&acc);
            }
        }
        // Unencodable runs never appear in the value index; interpret them.
        for &i in &self.overflow {
            if cause.satisfied_by(&self.runs[i as usize].instance) {
                set.insert(i as usize);
            }
        }
        set
    }

    /// A history pre-seeded with given runs (the paper's "previously run
    /// instances"). Panics on conflicting duplicate evaluations.
    pub fn with_runs(space: Arc<ParamSpace>, runs: impl IntoIterator<Item = Run>) -> Self {
        let mut store = ProvenanceStore::new(space);
        for run in runs {
            store.record(run.instance, run.eval);
        }
        store
    }

    /// The parameter space.
    pub fn space(&self) -> &Arc<ParamSpace> {
        &self.space
    }

    /// Pre-sizes the run log and the dense-key index for `additional`
    /// further [`record`](Self::record) calls. Purely an optimization for
    /// bulk loads (snapshot restore, WAL replay): the key table jumps
    /// straight to its final size instead of re-placing every slot once per
    /// doubling, and the run log allocates once.
    pub fn reserve(&mut self, additional: usize) {
        self.runs.reserve(additional);
        self.by_key.reserve(additional);
    }

    /// Records an execution. Returns `true` if the instance was new. A
    /// duplicate with the same outcome is a silent no-op; a duplicate with a
    /// *different* outcome panics — it violates Def. 2's determinism and would
    /// silently corrupt every downstream guarantee.
    ///
    /// The map key is the instance's dense encoding (4 bytes per parameter),
    /// not a clone of the instance; the bitset index is updated in the same
    /// pass.
    // lint: allow(W001, reason = "per-record single-bit insert into the current epoch block, one bit per parameter -- not a bulk word-granularity scan", scope = "block")
    // lint: allow(W003, reason = "probe/overflow_find only return indices of runs already pushed; the expects state the Instance invariant that a dense key and its fingerprint travel together; current rows are (offset + value) * epoch_words slices of a block sized exactly so", scope = "block")
    pub fn record(&mut self, mut instance: Instance, eval: EvalResult) -> bool {
        // Resolve the dense key without cloning: a carried key is borrowed
        // straight through probe and index insert (the hot path allocates
        // nothing); only a key-less encodable instance pays one encode.
        let encoded: Option<Box<[u32]>> = if instance.dense_key().is_some() {
            debug_assert_eq!(
                instance.dense_key(),
                self.space.encode(&instance).as_deref(),
                "instance carries a dense key inconsistent with this store's space"
            );
            None
        } else {
            self.space.encode(&instance)
        };
        if instance.dense_key().is_none() && encoded.is_none() {
            // Unencodable: the interpretive overflow path.
            if let Some(i) = self.overflow_find(&instance) {
                assert_eq!(
                    self.runs[i].eval.outcome,
                    eval.outcome,
                    "non-deterministic evaluation for instance {}",
                    instance.display(&self.space)
                );
                return false;
            }
            let idx = self.runs.len();
            self.by_key.push_overflow_row(idx as u32);
            self.overflow.push(idx as u32);
            self.overflow_bits.insert(idx);
            return self.finish_record(instance, eval);
        }
        {
            let (fp, key): (u64, &[u32]) = match &encoded {
                Some(k) => (hash_dense_key(k), k),
                None => (
                    instance
                        .dense_fingerprint()
                        .expect("fingerprint accompanies the dense key"),
                    instance.dense_key().expect("dense key checked above"),
                ),
            };
            let slot = match self.by_key.probe(fp, key) {
                Ok(i) => {
                    assert_eq!(
                        self.runs[i].eval.outcome,
                        eval.outcome,
                        "non-deterministic evaluation for instance {}",
                        instance.display(&self.space)
                    );
                    return false;
                }
                Err(slot) => slot,
            };
            let idx = self.runs.len();
            let in_epoch = self.tail_runs;
            debug_assert_eq!(in_epoch, idx % self.epoch_runs);
            let (word, bit) = (in_epoch / 64, 1u64 << (in_epoch % 64));
            let w = self.epoch_words;
            for (&off, &vi) in self.offsets.iter().zip(key) {
                self.current[(off as usize + vi as usize) * w + word] |= bit;
                self.current_counts[off as usize + vi as usize] += 1;
            }
            self.tail_counts.2 += 1;
            self.by_key.insert_at(slot, fp, idx as u32, key);
        }
        if let Some(k) = encoded {
            instance.set_dense(k);
        }
        self.finish_record(instance, eval)
    }

    /// The shared tail of [`record`](Self::record): outcome bits, the run
    /// log append, and the epoch-boundary freeze. Always returns `true`.
    fn finish_record(&mut self, instance: Instance, eval: EvalResult) -> bool {
        let idx = self.runs.len();
        match eval.outcome {
            Outcome::Fail => {
                self.fail_bits.insert(idx);
                self.tail_counts.0 += 1;
            }
            Outcome::Succeed => {
                self.succeed_bits.insert(idx);
                self.tail_counts.1 += 1;
            }
        }
        self.runs.push(Run { instance, eval });
        self.tail_runs += 1;
        if self.tail_runs == self.epoch_runs {
            self.freeze_current_epoch();
            self.tail_runs = 0;
        }
        true
    }

    /// Number of recorded runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True if no runs are recorded.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// All runs, in recording order.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Runs per epoch of the segmented value index.
    pub fn epoch_runs(&self) -> usize {
        self.epoch_runs
    }

    /// Number of epochs the log spans (including the in-progress one).
    pub fn num_epochs(&self) -> usize {
        self.blocks.len() + usize::from(self.runs.len() % self.epoch_runs != 0)
    }

    /// Epochs whose bits are live (not yet retired by compaction),
    /// including the in-progress one.
    pub fn live_epochs(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_some()).count()
            + usize::from(self.runs.len() % self.epoch_runs != 0)
    }

    /// Epochs retired into summary counts.
    pub fn retired_epochs(&self) -> usize {
        self.summaries.iter().filter(|s| s.is_some()).count()
    }

    /// The summary of a retired epoch (`None` while its block is live).
    pub fn epoch_summary(&self, epoch: usize) -> Option<&EpochSummary> {
        self.summaries.get(epoch).and_then(Option::as_ref)
    }

    /// Approximate heap bytes held by the value index: live bit blocks plus
    /// retired-epoch summaries plus the outcome/overflow bitsets. (The run
    /// log and dense-key arena are the ground truth and are not counted —
    /// they are what compaction keeps.)
    pub fn index_bytes(&self) -> usize {
        let block_words = self.total_values as usize * self.epoch_words;
        let frozen = self.blocks.iter().filter(|b| b.is_some()).count() * block_words * 8;
        let current = self.current.len() * 8;
        let retired = self.retired_epochs()
            * (self.total_values as usize * 4 + std::mem::size_of::<EpochSummary>());
        let outcome_words = 3 * self.runs.len().div_ceil(64) * 8;
        frozen + current + retired + outcome_words
    }

    /// Retires every full epoch except the newest `keep_live`, folding each
    /// retired epoch's bit block into an [`EpochSummary`] of exact counts.
    /// The in-progress (partial) epoch is never retired. Queries remain
    /// exact afterwards (see the module docs); re-recording continues
    /// normally. Returns the number of epochs retired by this call.
    pub fn compact(&mut self, keep_live: usize) -> usize {
        let full = self.runs.len() / self.epoch_runs;
        let mut retired = 0usize;
        for e in 0..full.saturating_sub(keep_live) {
            retired += self.retire_epoch(e) as usize;
        }
        retired
    }

    /// Bounds the live value index: whenever a new epoch opens, all but the
    /// newest `max_live_epochs` full epochs are retired automatically.
    /// `None` (the default) never auto-compacts. Takes effect immediately.
    pub fn set_index_bound(&mut self, max_live_epochs: Option<usize>) {
        self.max_live_epochs = max_live_epochs;
        if let Some(keep) = max_live_epochs {
            self.compact(keep);
        }
    }

    /// Folds epoch `e`'s bit block into summary counts. Returns `false` if
    /// the epoch was already retired. The block's rows are cumulative
    /// prefix-ORs, so a value's own run count is the *difference* of
    /// adjacent row popcounts (the prefixes are monotone: row `v` contains
    /// row `v-1`).
    // lint: allow(W003, reason = "e < runs.len() / epoch_runs from compact, and blocks/summaries hold one entry per full epoch; block rows are (base + v) * epoch_words slices of a block allocated at that size", scope = "block")
    fn retire_epoch(&mut self, e: usize) -> bool {
        let Some(block) = self.blocks[e].take() else {
            return false;
        };
        let w = self.epoch_words;
        let mut value_counts = vec![0u32; self.total_values as usize].into_boxed_slice();
        for (p, &base) in self.space.ids().zip(&self.offsets) {
            let base = base as usize;
            let mut prev = 0u32;
            for v in 0..self.space.domain(p).len() {
                let pc = kernels::popcount(&block[(base + v) * w..(base + v + 1) * w]) as u32;
                value_counts[base + v] = pc - prev;
                prev = pc;
            }
        }
        let wbase = e * w;
        let failing = kernels::popcount(epoch_window(self.fail_bits.words(), wbase, w)) as u32;
        let succeeding =
            kernels::popcount(epoch_window(self.succeed_bits.words(), wbase, w)) as u32;
        self.summaries[e] = Some(EpochSummary {
            failing,
            succeeding,
            value_counts,
        });
        true
    }

    /// The recorded evaluation of an instance, if it was executed.
    ///
    /// When the probe carries its dense key (the common case on the hot
    /// path), this is a single FxHash probe over a few `u32`s.
    // lint: allow(W003, reason = "the expect states the Instance invariant that a dense key and its fingerprint travel together; key-index probes only return indices of recorded runs", scope = "block")
    pub fn lookup(&self, instance: &Instance) -> Option<&EvalResult> {
        if let Some(k) = instance.dense_key() {
            debug_assert_eq!(
                Some(k),
                self.space.encode(instance).as_deref(),
                "instance carries a dense key inconsistent with this store's space"
            );
            let fp = instance
                .dense_fingerprint()
                .expect("fingerprint accompanies the dense key");
            return self.by_key.get(fp, k).map(|i| &self.runs[i].eval);
        }
        match self.space.encode(instance) {
            Some(k) => self
                .by_key
                .get(hash_dense_key(&k), &k)
                .map(|i| &self.runs[i].eval),
            None => self.overflow_find(instance).map(|i| &self.runs[i].eval),
        }
    }

    /// The recorded outcome of an instance, if it was executed.
    pub fn outcome_of(&self, instance: &Instance) -> Option<Outcome> {
        self.lookup(instance).map(|e| e.outcome)
    }

    /// Iterates over failing instances (in recording order).
    // lint: allow(W003, reason = "outcome bitsets only ever hold indices of recorded runs", scope = "block")
    pub fn failing(&self) -> impl Iterator<Item = &Instance> {
        self.fail_bits.ones().map(|i| &self.runs[i].instance)
    }

    /// Iterates over succeeding instances (in recording order).
    // lint: allow(W003, reason = "outcome bitsets only ever hold indices of recorded runs", scope = "block")
    pub fn succeeding(&self) -> impl Iterator<Item = &Instance> {
        self.succeed_bits.ones().map(|i| &self.runs[i].instance)
    }

    /// Number of failing runs (one popcount pass; no iteration).
    pub fn num_failing(&self) -> usize {
        self.fail_bits.count()
    }

    /// Number of succeeding runs (one popcount pass; no iteration).
    pub fn num_succeeding(&self) -> usize {
        self.succeed_bits.count()
    }

    /// The first failing instance, if any — the `CP_f` Stacked Shortcut picks
    /// from the history (Algorithm 2).
    pub fn first_failing(&self) -> Option<&Instance> {
        self.failing().next()
    }

    /// Succeeding instances disjoint from `from` (Def. 6), in recording order.
    pub fn disjoint_successes<'a>(
        &'a self,
        from: &'a Instance,
    ) -> impl Iterator<Item = &'a Instance> + 'a {
        self.succeeding().filter(move |g| g.is_disjoint_from(from))
    }

    /// Greedily selects up to `k` succeeding instances that are disjoint from
    /// `from` and mutually disjoint — the `CP_G` set of Algorithm 2. If fewer
    /// than `k` mutually disjoint successes exist, the result is shorter
    /// ("mutually disjoint if possible").
    pub fn mutually_disjoint_successes<'s>(
        &'s self,
        from: &Instance,
        k: usize,
    ) -> Vec<&'s Instance> {
        let mut picked: Vec<&'s Instance> = Vec::new();
        for run in &self.runs {
            if picked.len() == k {
                break;
            }
            let g = &run.instance;
            if run.outcome().is_succeed()
                && g.is_disjoint_from(from)
                && picked.iter().all(|p| p.is_disjoint_from(g))
            {
                picked.push(g);
            }
        }
        picked
    }

    /// The succeeding instance most different from `from` (maximum Hamming
    /// distance) — the heuristic fallback when the Disjointness Condition
    /// fails (paper §4.1: "take an instance that differs in as many
    /// parameter-values as possible"). Ties break to the earliest run.
    pub fn most_different_success(&self, from: &Instance) -> Option<&Instance> {
        let mut best: Option<(usize, &Instance)> = None;
        // Recording order + strict improvement ⇒ the earliest run wins ties.
        for g in self.succeeding() {
            let d = g.hamming_distance(from);
            if best.is_none_or(|(bd, _)| d > bd) {
                best = Some((d, g));
            }
        }
        best.map(|(_, g)| g)
    }

    /// The Shortcut sanity check (Algorithm 1, final loop): is there a
    /// *succeeding* run whose parameter-values are a superset of the
    /// hypothetical root cause `D`? If so, `D` is not definitive.
    ///
    /// Asks the admissible bounds first (unless
    /// [disabled](Self::set_bounds_enabled)): `succeed_hi == 0` proves no
    /// succeeding satisfying run exists, `succeed_lo > 0` proves one does —
    /// either way the answer is returned from integer arithmetic alone.
    /// Only an inconclusive bound falls through to the exact kernel scan,
    /// so the result is always bit-identical to
    /// [`succeeding_superset_exists_exact`](Self::succeeding_superset_exists_exact).
    pub fn succeeding_superset_exists(&self, cause: &Conjunction) -> bool {
        if self.bounds_enabled && !cause.is_empty() {
            let b = self.support_bounds(cause);
            if b.succeed_hi == 0 || b.succeed_lo > 0 {
                // Relaxed: telemetry-only counter, never read for control flow.
                self.query_stats
                    .bounds_short_circuits
                    .fetch_add(1, Ordering::Relaxed);
                return b.succeed_lo > 0;
            }
            // Relaxed: telemetry-only counter, never read for control flow.
            self.query_stats
                .bounds_fallthroughs
                .fetch_add(1, Ordering::Relaxed);
            debug_assert!(
                b.admits(self.support(cause)),
                "inconclusive bounds must still admit the exact support"
            );
        }
        self.succeeding_superset_exists_exact(cause)
    }

    /// The exact kernel path of
    /// [`succeeding_superset_exists`](Self::succeeding_superset_exists),
    /// with no bounds-layer early-out — the reference the pruned entry point
    /// must stay bit-identical to.
    ///
    /// Evaluated epoch by epoch with an early exit on the first succeeding
    /// intersection, never materializing the satisfying set; above the
    /// parallel threshold the epochs are fanned out across the query
    /// workers (a shared flag stops the remaining workers early — the
    /// boolean merge is order-independent, so the result is identical to
    /// the sequential scan).
    pub fn succeeding_superset_exists_exact(&self, cause: &Conjunction) -> bool {
        if cause.is_empty() {
            return !self.succeed_bits.is_empty();
        }
        // Overflow runs first: a handful of interpretive checks, and a hit
        // skips the epoch scan entirely.
        for &i in &self.overflow {
            // lint: allow(W003, reason = "overflow only records indices of runs already pushed")
            let run = &self.runs[i as usize];
            if run.outcome().is_succeed() && cause.satisfied_by(&run.instance) {
                return true;
            }
        }
        let preds = self.plan_predicates(cause);
        let w = self.epoch_words;
        let full = self.blocks.len();
        let parallel = self.use_parallel(full);
        self.note_query(full, parallel);
        // The in-progress epoch next — most recent, cheapest to scan.
        let cur_base = full * self.epoch_runs;
        let used = (self.runs.len() - cur_base).div_ceil(64);
        if used > 0 {
            let mut acc = vec![0u64; used];
            if self.current_acc_into(&preds, &mut acc)
                && kernels::and_any(&acc, words_from(self.succeed_bits.words(), cur_base / 64))
            {
                return true;
            }
        }
        if parallel {
            let found = AtomicBool::new(false);
            std::thread::scope(|scope| {
                for range in Self::epoch_ranges(full, self.query_workers) {
                    let (preds, found) = (&preds, &found);
                    scope.spawn(move || {
                        let mut scratch = TermScratch::default();
                        let mut acc = vec![0u64; w];
                        for e in range {
                            // Relaxed: the stop flag is a monotonic early-exit
                            // hint — the scoped-thread join synchronizes, and
                            // a stale read costs one extra epoch scan.
                            if found.load(Ordering::Relaxed) {
                                return;
                            }
                            if self.epoch_acc_into(e, preds, &mut scratch, &mut acc)
                                && kernels::and_any(
                                    &acc,
                                    words_from(self.succeed_bits.words(), e * w),
                                )
                            {
                                // Relaxed: order-independent boolean merge;
                                // see the load above.
                                found.store(true, Ordering::Relaxed);
                                return;
                            }
                        }
                    });
                }
            });
            found.into_inner()
        } else {
            let mut scratch = TermScratch::default();
            let mut acc = vec![0u64; w];
            (0..full).any(|e| {
                self.epoch_acc_into(e, &preds, &mut scratch, &mut acc)
                    && kernels::and_any(&acc, words_from(self.succeed_bits.words(), e * w))
            })
        }
    }

    /// Instances in the history satisfying a conjunction, with outcomes —
    /// driven by the bitset index, yielded in recording order.
    // lint: allow(W003, reason = "satisfying_set is a subset of recorded run indices by construction", scope = "block")
    pub fn satisfying_runs<'a>(
        &'a self,
        cause: &'a Conjunction,
    ) -> impl Iterator<Item = &'a Run> + 'a {
        self.satisfying_set(cause)
            .ones()
            .map(|i| &self.runs[i])
            .collect::<Vec<_>>()
            .into_iter()
    }

    /// Counts `(failing, succeeding)` runs satisfying a conjunction — fused
    /// AND-of-ORs + popcount per epoch against the outcome bitsets, never
    /// materializing the satisfying set. Above the parallel threshold the
    /// full epochs are fanned out across the query workers; the per-epoch
    /// partial counts are summed, so the result is identical to the
    /// sequential scan.
    // lint: allow(W003, reason = "the join expect propagates worker panics rather than swallowing them; overflow holds recorded run indices", scope = "block")
    pub fn support(&self, cause: &Conjunction) -> (usize, usize) {
        if cause.is_empty() {
            return (self.num_failing(), self.num_succeeding());
        }
        let preds = self.plan_predicates(cause);
        let w = self.epoch_words;
        let full = self.blocks.len();
        let parallel = self.use_parallel(full);
        self.note_query(full, parallel);
        let (mut f, mut s) = if parallel {
            std::thread::scope(|scope| {
                let handles: Vec<_> = Self::epoch_ranges(full, self.query_workers)
                    .into_iter()
                    .map(|range| {
                        let preds = &preds;
                        scope.spawn(move || {
                            let mut scratch = TermScratch::default();
                            let mut acc = vec![0u64; w];
                            let (mut f, mut s) = (0usize, 0usize);
                            for e in range {
                                if self.epoch_acc_into(e, preds, &mut scratch, &mut acc) {
                                    let (ef, es) = self.outcome_counts_at(e * w, &acc);
                                    f += ef;
                                    s += es;
                                }
                            }
                            (f, s)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("epoch query worker panicked"))
                    .fold((0, 0), |(f, s), (ef, es)| (f + ef, s + es))
            })
        } else {
            let mut scratch = TermScratch::default();
            let mut acc = vec![0u64; w];
            let (mut f, mut s) = (0usize, 0usize);
            for e in 0..full {
                if self.epoch_acc_into(e, &preds, &mut scratch, &mut acc) {
                    let (ef, es) = self.outcome_counts_at(e * w, &acc);
                    f += ef;
                    s += es;
                }
            }
            (f, s)
        };
        let cur_base = full * self.epoch_runs;
        let used = (self.runs.len() - cur_base).div_ceil(64);
        if used > 0 {
            let mut acc = vec![0u64; used];
            if self.current_acc_into(&preds, &mut acc) {
                let (ef, es) = self.outcome_counts_at(cur_base / 64, &acc);
                f += ef;
                s += es;
            }
        }
        for &i in &self.overflow {
            let run = &self.runs[i as usize];
            if cause.satisfied_by(&run.instance) {
                match run.outcome() {
                    Outcome::Fail => f += 1,
                    Outcome::Succeed => s += 1,
                }
            }
        }
        (f, s)
    }

    /// [`support`](Self::support) for a batch: `(failing, succeeding)` per
    /// conjunction, evaluating all of them against each epoch block while
    /// it is cache-hot — one pass over the log instead of `k`. Above the
    /// parallel threshold the epochs are fanned out across the query
    /// workers and the per-worker partial counts summed per conjunction;
    /// results are identical to calling [`support`](Self::support) `k`
    /// times.
    // lint: allow(W003, reason = "part/out/causes are all sized causes.len() and indexed by the same enumerate; the join expect propagates worker panics; overflow holds recorded run indices", scope = "block")
    pub fn support_many(&self, causes: &[Conjunction]) -> Vec<(usize, usize)> {
        let plans: Vec<Option<Vec<PredPlan>>> = causes
            .iter()
            .map(|c| (!c.is_empty()).then(|| self.plan_predicates(c)))
            .collect();
        let w = self.epoch_words;
        let full = self.blocks.len();
        let parallel = self.use_parallel(full);
        // One note per conjunction: the batch does evaluate each of them
        // over every epoch, just in a block-major order.
        for _ in 0..causes.len() {
            self.note_query(full, parallel);
        }
        let scan_range = |range: std::ops::Range<usize>| {
            let mut scratch = TermScratch::default();
            let mut acc = vec![0u64; w];
            let mut part = vec![(0usize, 0usize); causes.len()];
            for e in range {
                for (ci, plan) in plans.iter().enumerate() {
                    if let Some(preds) = plan {
                        if self.epoch_acc_into(e, preds, &mut scratch, &mut acc) {
                            let (ef, es) = self.outcome_counts_at(e * w, &acc);
                            part[ci].0 += ef;
                            part[ci].1 += es;
                        }
                    }
                }
            }
            part
        };
        let mut out = if parallel {
            let scan_range = &scan_range;
            std::thread::scope(|scope| {
                let handles: Vec<_> = Self::epoch_ranges(full, self.query_workers)
                    .into_iter()
                    .map(|range| scope.spawn(move || scan_range(range)))
                    .collect();
                let mut out = vec![(0usize, 0usize); causes.len()];
                for h in handles {
                    for (o, p) in out
                        .iter_mut()
                        .zip(h.join().expect("epoch query worker panicked"))
                    {
                        o.0 += p.0;
                        o.1 += p.1;
                    }
                }
                out
            })
        } else {
            scan_range(0..full)
        };
        // The in-progress epoch, the overflow runs, and the empty causes.
        let cur_base = full * self.epoch_runs;
        let used = (self.runs.len() - cur_base).div_ceil(64);
        let mut acc = vec![0u64; used];
        for (ci, plan) in plans.iter().enumerate() {
            match plan {
                None => out[ci] = (self.num_failing(), self.num_succeeding()),
                Some(preds) => {
                    if used > 0 && self.current_acc_into(preds, &mut acc) {
                        let (ef, es) = self.outcome_counts_at(cur_base / 64, &acc);
                        out[ci].0 += ef;
                        out[ci].1 += es;
                    }
                    for &i in &self.overflow {
                        let run = &self.runs[i as usize];
                        if causes[ci].satisfied_by(&run.instance) {
                            match run.outcome() {
                                Outcome::Fail => out[ci].0 += 1,
                                Outcome::Succeed => out[ci].1 += 1,
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Resolves each predicate of a non-empty conjunction for the bounds
    /// layer: flat-index bases and allowed-value ranges only, no bit masks.
    // lint: allow(W003, reason = "offsets holds one entry per parameter of the space the predicate is drawn from", scope = "block")
    fn plan_bounds(&self, cause: &Conjunction) -> Vec<BoundPlan> {
        cause
            .predicates()
            .iter()
            .map(|pred| BoundPlan {
                base: self.offsets[pred.param.index()] as usize,
                ranges: Self::pred_ranges(pred, self.space.domain(pred.param)),
            })
            .collect()
    }

    /// Runs in the in-progress epoch satisfying a predicate: a sum of the
    /// incrementally maintained per-value counts over its allowed ranges.
    // lint: allow(W003, reason = "current_counts holds one entry per (parameter, value) in offsets layout and the ranges come from the same domain, so base + hi is in bounds", scope = "block")
    fn current_pred_count(&self, plan: &BoundPlan) -> u32 {
        plan.ranges
            .as_slice()
            .iter()
            .map(|&(lo, hi)| {
                self.current_counts[plan.base + lo as usize..=plan.base + hi as usize]
                    .iter()
                    .sum::<u32>()
            })
            .sum()
    }

    /// Folds one epoch's admissible contribution into `b`, given that
    /// epoch's per-predicate satisfying-run counts (`count_of`), its
    /// indexable-run total, and its outcome counts.
    ///
    /// Upper bound: a conjunction satisfies at most the *minimum* of its
    /// predicates' counts, capped by either outcome's epoch count. Lower
    /// bound: Bonferroni — at least `Σ counts − (k−1)·indexed` runs satisfy
    /// all `k` predicates at once; subtracting the opposite outcome's epoch
    /// count splits that into per-outcome lower bounds. Overflow runs are
    /// absent from the count tables (their outcome counts only loosen the
    /// caps admissibly) and are accounted exactly by the caller.
    fn fold_epoch_bound(
        b: &mut SupportBounds,
        plans: &[BoundPlan],
        indexed: u32,
        failing: u32,
        succeeding: u32,
        mut count_of: impl FnMut(&BoundPlan) -> u32,
    ) {
        let mut min_c = u32::MAX;
        let mut sum = 0u64;
        for p in plans {
            let c = count_of(p).min(indexed);
            if c == 0 {
                // Some predicate matches no run here: the epoch contributes
                // exactly zero to every bound.
                return;
            }
            min_c = min_c.min(c);
            sum += c as u64;
        }
        let s_hi = min_c as usize;
        let s_lo = sum.saturating_sub((plans.len() as u64 - 1) * indexed as u64) as usize;
        b.fail_hi += s_hi.min(failing as usize);
        b.succeed_hi += s_hi.min(succeeding as usize);
        b.fail_lo += s_lo.saturating_sub(succeeding as usize);
        b.succeed_lo += s_lo.saturating_sub(failing as usize);
    }

    /// Admissible bounds on [`support`](Self::support) — see
    /// [`SupportBounds`] for the invariant. Computed from per-epoch integer
    /// count tables only, O(epochs × predicates) arithmetic, never a
    /// word-level scan: full (frozen or retired) epochs are answered from
    /// their cumulative count tables by adjacent differences per predicate
    /// range (the integer twin of a frozen block's adjacent-prefix popcount
    /// difference), the in-progress epoch from the incrementally maintained
    /// current counts, and overflow runs interpretively (they are few and
    /// live outside the count tables).
    pub fn support_bounds(&self, cause: &Conjunction) -> SupportBounds {
        if cause.is_empty() {
            let (f, s) = (self.num_failing(), self.num_succeeding());
            return SupportBounds {
                fail_lo: f,
                fail_hi: f,
                succeed_lo: s,
                succeed_hi: s,
            };
        }
        let plans = self.plan_bounds(cause);
        let mut b = SupportBounds::default();
        for counts in &self.epoch_counts {
            Self::fold_epoch_bound(
                &mut b,
                &plans,
                counts.indexed,
                counts.failing,
                counts.succeeding,
                |p| counts.pred_count(p.base, &p.ranges),
            );
        }
        let (tail_f, tail_s, tail_idx) = self.tail_counts;
        if tail_f + tail_s > 0 {
            Self::fold_epoch_bound(&mut b, &plans, tail_idx, tail_f, tail_s, |p| {
                self.current_pred_count(p)
            });
        }
        for &i in &self.overflow {
            // lint: allow(W003, reason = "overflow only records indices of runs already pushed")
            let run = &self.runs[i as usize];
            if cause.satisfied_by(&run.instance) {
                match run.outcome() {
                    Outcome::Fail => {
                        b.fail_lo += 1;
                        b.fail_hi += 1;
                    }
                    Outcome::Succeed => {
                        b.succeed_lo += 1;
                        b.succeed_hi += 1;
                    }
                }
            }
        }
        b
    }

    /// [`support_bounds`](Self::support_bounds) for a batch, epoch-major
    /// like [`support_many`](Self::support_many): every conjunction is
    /// folded against each epoch's count table while it is cache-hot.
    /// Results are identical to calling `support_bounds` once per cause.
    // lint: allow(W003, reason = "out and causes are both sized causes.len() and walked by the same zip/enumerate; overflow holds recorded run indices", scope = "block")
    pub fn support_bounds_many(&self, causes: &[Conjunction]) -> Vec<SupportBounds> {
        let plans: Vec<Option<Vec<BoundPlan>>> = causes
            .iter()
            .map(|c| (!c.is_empty()).then(|| self.plan_bounds(c)))
            .collect();
        let mut out = vec![SupportBounds::default(); causes.len()];
        for counts in &self.epoch_counts {
            for (b, plan) in out.iter_mut().zip(&plans) {
                if let Some(preds) = plan {
                    Self::fold_epoch_bound(
                        b,
                        preds,
                        counts.indexed,
                        counts.failing,
                        counts.succeeding,
                        |p| counts.pred_count(p.base, &p.ranges),
                    );
                }
            }
        }
        let (tail_f, tail_s, tail_idx) = self.tail_counts;
        for (ci, (b, plan)) in out.iter_mut().zip(&plans).enumerate() {
            match plan {
                None => {
                    let (f, s) = (self.num_failing(), self.num_succeeding());
                    *b = SupportBounds {
                        fail_lo: f,
                        fail_hi: f,
                        succeed_lo: s,
                        succeed_hi: s,
                    };
                }
                Some(preds) => {
                    if tail_f + tail_s > 0 {
                        Self::fold_epoch_bound(b, preds, tail_idx, tail_f, tail_s, |p| {
                            self.current_pred_count(p)
                        });
                    }
                    for &i in &self.overflow {
                        let run = &self.runs[i as usize];
                        if causes[ci].satisfied_by(&run.instance) {
                            match run.outcome() {
                                Outcome::Fail => {
                                    b.fail_lo += 1;
                                    b.fail_hi += 1;
                                }
                                Outcome::Succeed => {
                                    b.succeed_lo += 1;
                                    b.succeed_hi += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// [`support`](Self::support) with the bounds-layer early-out: when the
    /// admissible bounds already pin both counts (`lo == hi` on both
    /// outcomes), the pinned values are returned without any word-level
    /// scan; otherwise the exact path runs. Bit-identical to `support`
    /// either way.
    pub fn support_via_bounds(&self, cause: &Conjunction) -> (usize, usize) {
        if self.bounds_enabled {
            let b = self.support_bounds(cause);
            if b.is_exact() {
                // Relaxed: telemetry-only counter, never read for control flow.
                self.query_stats
                    .bounds_short_circuits
                    .fetch_add(1, Ordering::Relaxed);
                return (b.fail_lo, b.succeed_lo);
            }
            // Relaxed: telemetry-only counter, never read for control flow.
            self.query_stats
                .bounds_fallthroughs
                .fetch_add(1, Ordering::Relaxed);
            let exact = self.support(cause);
            debug_assert!(
                b.admits(exact),
                "inconclusive bounds must still admit the exact support"
            );
            return exact;
        }
        self.support(cause)
    }

    /// [`succeeding_superset_exists`](Self::succeeding_superset_exists) for
    /// a batch of candidate causes in one store round-trip. The bounds layer
    /// decides what it can from integer arithmetic; the undecided remainder
    /// is then swept **epoch-major** — every undecided cause is evaluated
    /// against each epoch block while it is cache-hot, each cause dropping
    /// out at its first succeeding intersection. Results are identical to
    /// calling the single-cause check once per cause.
    // lint: allow(W003, reason = "out is sized causes.len() and every index into it or causes is an enumerate index or one retained from that enumerate; overflow holds recorded run indices", scope = "block")
    pub fn succeeding_superset_exists_many(&self, causes: &[Conjunction]) -> Vec<bool> {
        let mut out = vec![false; causes.len()];
        let mut undecided: Vec<usize> = Vec::new();
        for (i, cause) in causes.iter().enumerate() {
            if cause.is_empty() {
                out[i] = !self.succeed_bits.is_empty();
            } else if self.bounds_enabled {
                let b = self.support_bounds(cause);
                if b.succeed_hi == 0 || b.succeed_lo > 0 {
                    // Relaxed: telemetry-only counter, no control-flow reads.
                    self.query_stats
                        .bounds_short_circuits
                        .fetch_add(1, Ordering::Relaxed);
                    out[i] = b.succeed_lo > 0;
                } else {
                    // Relaxed: telemetry-only counter, no control-flow reads.
                    self.query_stats
                        .bounds_fallthroughs
                        .fetch_add(1, Ordering::Relaxed);
                    debug_assert!(
                        b.admits(self.support(cause)),
                        "inconclusive bounds must still admit the exact support"
                    );
                    undecided.push(i);
                }
            } else {
                undecided.push(i);
            }
        }
        if undecided.is_empty() {
            return out;
        }
        let mut plans: Vec<(usize, Vec<PredPlan>)> = undecided
            .into_iter()
            .map(|i| (i, self.plan_predicates(&causes[i])))
            .collect();
        let full = self.blocks.len();
        let w = self.epoch_words;
        for _ in 0..plans.len() {
            self.note_query(full, false);
        }
        // Overflow runs and the in-progress epoch first, mirroring the
        // single-cause scan order (cheapest evidence, most recent runs).
        plans.retain(|&(i, _)| {
            let hit = self.overflow.iter().any(|&r| {
                let run = &self.runs[r as usize];
                run.outcome().is_succeed() && causes[i].satisfied_by(&run.instance)
            });
            out[i] = hit;
            !hit
        });
        let cur_base = full * self.epoch_runs;
        let used = (self.runs.len() - cur_base).div_ceil(64);
        if used > 0 {
            let mut acc = vec![0u64; used];
            plans.retain(|(i, preds)| {
                let hit = self.current_acc_into(preds, &mut acc)
                    && kernels::and_any(
                        &acc,
                        words_from(self.succeed_bits.words(), cur_base / 64),
                    );
                out[*i] = hit;
                !hit
            });
        }
        let mut scratch = TermScratch::default();
        let mut acc = vec![0u64; w];
        for e in 0..full {
            if plans.is_empty() {
                break;
            }
            plans.retain(|(i, preds)| {
                let hit = self.epoch_acc_into(e, preds, &mut scratch, &mut acc)
                    && kernels::and_any(&acc, words_from(self.succeed_bits.words(), e * w));
                if hit {
                    out[*i] = true;
                }
                !hit
            });
        }
        out
    }

    /// Parses a history from the TSV layout produced by [`Self::to_tsv`]
    /// (parameter columns in space order, then `score`, then `evaluation`).
    /// Values are matched against the parameter domains by their display
    /// form after unescaping (see [`Self::to_tsv`]); `score` is a float or
    /// `-`. A cell with a malformed escape sequence is
    /// [`TsvError::Escape`].
    ///
    /// Compatibility note: files written before escaping existed that
    /// contain *literal* backslashes in values are now interpreted as
    /// escapes (rejected when malformed) — deliberate: a raw backslash is
    /// ambiguous against the escaped format, and rejecting beats silently
    /// loading a different value. Re-export such histories with the current
    /// `to_tsv`.
    pub fn from_tsv(space: Arc<ParamSpace>, text: &str) -> Result<Self, TsvError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(TsvError::Empty)?;
        let cols: Vec<String> = header
            .split('\t')
            .map(|cell| {
                unescape_tsv(cell).ok_or(TsvError::Escape {
                    line: 1,
                    cell: cell.to_string(),
                })
            })
            .collect::<Result<_, _>>()?;
        let expected: Vec<String> = space
            .iter()
            .map(|(_, d)| d.name().to_string())
            .chain(["score".to_string(), "evaluation".to_string()])
            .collect();
        if cols != expected {
            return Err(TsvError::Header {
                expected: expected.join("\t"),
                found: header.to_string(),
            });
        }

        let mut store = ProvenanceStore::new(space.clone());
        for (line_no, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let cells: Vec<&str> = line.split('\t').collect();
            if cells.len() != space.len() + 2 {
                return Err(TsvError::Arity {
                    line: line_no + 1,
                    expected: space.len() + 2,
                    found: cells.len(),
                });
            }
            let mut indices = Vec::with_capacity(space.len());
            for (p, cell) in space.ids().zip(cells.iter()) {
                let unescaped = unescape_tsv(cell).ok_or_else(|| TsvError::Escape {
                    line: line_no + 1,
                    cell: cell.to_string(),
                })?;
                let domain = space.domain(p);
                let idx = domain
                    .values()
                    .iter()
                    .position(|v| v.to_string() == unescaped)
                    .ok_or_else(|| TsvError::Value {
                        line: line_no + 1,
                        param: space.param(p).name().to_string(),
                        cell: cell.to_string(),
                    })?;
                indices.push(idx as u32);
            }
            // lint: allow(W003, reason = "cells.len() == space.len() + 2 is checked at the top of the row loop, so the score cell exists")
            let score = match cells[space.len()] {
                "-" => None,
                s => Some(s.parse::<f64>().map_err(|_| TsvError::Score {
                    line: line_no + 1,
                    cell: s.to_string(),
                })?),
            };
            // lint: allow(W003, reason = "same arity check covers the evaluation cell")
            let outcome = match cells[space.len() + 1] {
                "succeed" => Outcome::Succeed,
                "fail" => Outcome::Fail,
                other => {
                    return Err(TsvError::Evaluation {
                        line: line_no + 1,
                        cell: other.to_string(),
                    })
                }
            };
            store.record(
                space.instance_from_indices(&indices),
                EvalResult { outcome, score },
            );
        }
        Ok(store)
    }

    /// Serializes the history as a TSV table (header + one row per run):
    /// parameter columns, then `score`, then `evaluation` — the layout of the
    /// paper's Tables 1 and 2.
    ///
    /// Parameter names and values containing TSV structure characters are
    /// backslash-escaped (`\t` tab, `\n` newline, `\r` carriage return,
    /// `\\` backslash), so a hostile string value cannot smuggle extra
    /// cells or rows into the table; [`Self::from_tsv`] reverses the
    /// escaping.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for (i, (_, def)) in self.space.iter().enumerate() {
            if i > 0 {
                out.push('\t');
            }
            escape_tsv_into(def.name(), &mut out);
        }
        out.push_str("\tscore\tevaluation\n");
        for run in &self.runs {
            for (i, v) in run.instance.values().iter().enumerate() {
                if i > 0 {
                    out.push('\t');
                }
                escape_tsv_into(&v.to_string(), &mut out);
            }
            match run.eval.score {
                Some(s) => {
                    let _ = write!(out, "\t{s}");
                }
                None => out.push_str("\t-"),
            }
            let _ = writeln!(out, "\t{}", run.outcome());
        }
        out
    }
}

/// Appends `s` to `out`, backslash-escaping the characters that would be
/// read as TSV structure (tab, newline, carriage return) plus the escape
/// character itself.
fn escape_tsv_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
}

/// Reverses [`escape_tsv_into`]. `None` on a malformed escape (a lone
/// trailing backslash or an unknown `\x` pair) — the file was not produced
/// by `to_tsv` and guessing would corrupt the value.
fn unescape_tsv(cell: &str) -> Option<String> {
    if !cell.contains('\\') {
        return Some(cell.to_string());
    }
    let mut out = String::with_capacity(cell.len());
    let mut chars = cell.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// Why a provenance TSV could not be parsed; see [`ProvenanceStore::from_tsv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsvError {
    /// No header line.
    Empty,
    /// The header does not match the space's layout.
    Header {
        /// The layout the space requires.
        expected: String,
        /// The header found.
        found: String,
    },
    /// A row has the wrong number of cells.
    Arity {
        /// 1-based line number.
        line: usize,
        /// Expected cell count.
        expected: usize,
        /// Found cell count.
        found: usize,
    },
    /// A cell is not a value of its parameter's universe.
    Value {
        /// 1-based line number.
        line: usize,
        /// Parameter name.
        param: String,
        /// The offending cell.
        cell: String,
    },
    /// The score cell is neither a float nor `-`.
    Score {
        /// 1-based line number.
        line: usize,
        /// The offending cell.
        cell: String,
    },
    /// The evaluation cell is neither `succeed` nor `fail`.
    Evaluation {
        /// 1-based line number.
        line: usize,
        /// The offending cell.
        cell: String,
    },
    /// A cell carries a malformed backslash escape (lone trailing `\` or an
    /// unknown `\x` sequence).
    Escape {
        /// 1-based line number.
        line: usize,
        /// The offending cell.
        cell: String,
    },
}

impl std::fmt::Display for TsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsvError::Empty => write!(f, "empty provenance TSV"),
            TsvError::Header { expected, found } => {
                write!(f, "header mismatch: expected {expected:?}, found {found:?}")
            }
            TsvError::Arity {
                line,
                expected,
                found,
            } => write!(f, "line {line}: expected {expected} cells, found {found}"),
            TsvError::Value { line, param, cell } => write!(
                f,
                "line {line}: {cell:?} is not in the universe of parameter {param:?}"
            ),
            TsvError::Score { line, cell } => {
                write!(f, "line {line}: score {cell:?} is not a number or '-'")
            }
            TsvError::Evaluation { line, cell } => write!(
                f,
                "line {line}: evaluation {cell:?} must be 'succeed' or 'fail'"
            ),
            TsvError::Escape { line, cell } => write!(
                f,
                "line {line}: cell {cell:?} has a malformed backslash escape"
            ),
        }
    }
}

impl std::error::Error for TsvError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::value::Value;

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .categorical("Dataset", ["Iris", "Digits", "Images"])
            .categorical("Estimator", ["LR", "DT", "GB"])
            .ordinal("Version", [1, 2])
            .build()
    }

    fn inst(s: &ParamSpace, d: &str, e: &str, v: i64) -> Instance {
        Instance::from_pairs(
            s,
            [
                ("Dataset", d.into()),
                ("Estimator", e.into()),
                ("Version", v.into()),
            ],
        )
    }

    /// The paper's Table 1 history.
    fn table1(s: &Arc<ParamSpace>) -> ProvenanceStore {
        ProvenanceStore::with_runs(
            s.clone(),
            [
                Run {
                    instance: inst(s, "Iris", "LR", 1),
                    eval: EvalResult::from_score_at_least(0.9, 0.6),
                },
                Run {
                    instance: inst(s, "Digits", "DT", 1),
                    eval: EvalResult::from_score_at_least(0.8, 0.6),
                },
                Run {
                    instance: inst(s, "Iris", "GB", 2),
                    eval: EvalResult::from_score_at_least(0.2, 0.6),
                },
            ],
        )
    }

    #[test]
    fn record_dedups_and_counts() {
        let s = space();
        let mut p = table1(&s);
        assert_eq!(p.len(), 3);
        // Re-recording the same instance/outcome is a no-op.
        assert!(!p.record(
            inst(&s, "Iris", "LR", 1),
            EvalResult::from_score_at_least(0.9, 0.6)
        ));
        assert_eq!(p.len(), 3);
        assert!(p.record(inst(&s, "Images", "GB", 1), Outcome::Succeed.into()));
        assert_eq!(p.len(), 4);
    }

    #[test]
    #[should_panic(expected = "non-deterministic evaluation")]
    fn conflicting_duplicate_panics() {
        let s = space();
        let mut p = table1(&s);
        p.record(inst(&s, "Iris", "LR", 1), Outcome::Fail.into());
    }

    #[test]
    fn failing_and_succeeding_queries() {
        let s = space();
        let p = table1(&s);
        assert_eq!(p.failing().count(), 1);
        assert_eq!(p.succeeding().count(), 2);
        assert_eq!(p.first_failing().unwrap(), &inst(&s, "Iris", "GB", 2));
        assert_eq!(p.outcome_of(&inst(&s, "Iris", "GB", 2)), Some(Outcome::Fail));
        assert_eq!(p.outcome_of(&inst(&s, "Images", "LR", 1)), None);
    }

    #[test]
    fn disjoint_successes_match_paper_example() {
        // Paper §4.1 Example 1: the only disjoint success w.r.t. CP_f
        // (Iris, GB, 2.0) is (Digits, DT, 1.0).
        let s = space();
        let p = table1(&s);
        let cpf = inst(&s, "Iris", "GB", 2);
        let disjoint: Vec<_> = p.disjoint_successes(&cpf).collect();
        assert_eq!(disjoint, vec![&inst(&s, "Digits", "DT", 1)]);
    }

    #[test]
    fn mutually_disjoint_selection() {
        let s = space();
        let mut p = table1(&s);
        // Add a second success disjoint from CP_f but NOT from (Digits,DT,1).
        p.record(inst(&s, "Digits", "LR", 1), Outcome::Succeed.into());
        // And one mutually disjoint from both.
        p.record(inst(&s, "Images", "DT", 1), Outcome::Succeed.into());
        let cpf = inst(&s, "Iris", "GB", 2);
        let picked = p.mutually_disjoint_successes(&cpf, 4);
        assert_eq!(picked.len(), 1, "Version=1 is shared, so only one pick");
        // With a distinct version the third is mutually disjoint... build one:
        // (Images, LR, 1) shares Version with all; the space only has 2
        // versions so mutual disjointness caps at 2 successes (versions 1,2).
        assert!(picked[0].is_disjoint_from(&cpf));
    }

    #[test]
    fn most_different_fallback() {
        let s = space();
        let mut p = ProvenanceStore::new(s.clone());
        let cpf = inst(&s, "Iris", "GB", 2);
        p.record(inst(&s, "Iris", "LR", 2), Outcome::Succeed.into()); // distance 1
        p.record(inst(&s, "Iris", "DT", 1), Outcome::Succeed.into()); // distance 2
        assert_eq!(
            p.most_different_success(&cpf).unwrap(),
            &inst(&s, "Iris", "DT", 1)
        );
        // Tie at distance 2 breaks to the earliest run.
        p.record(inst(&s, "Iris", "LR", 1), Outcome::Succeed.into()); // distance 2
        assert_eq!(
            p.most_different_success(&cpf).unwrap(),
            &inst(&s, "Iris", "DT", 1)
        );
    }

    #[test]
    fn succeeding_superset_check() {
        let s = space();
        let p = table1(&s);
        let version = s.by_name("Version").unwrap();
        // D = {Version = 1}: (Iris,LR,1) succeeded and contains it.
        let d1 = Conjunction::new(vec![Predicate::eq(version, 1)]);
        assert!(p.succeeding_superset_exists(&d1));
        // D = {Version = 2}: the only run with version 2 failed.
        let d2 = Conjunction::new(vec![Predicate::eq(version, 2)]);
        assert!(!p.succeeding_superset_exists(&d2));
    }

    #[test]
    fn support_counts() {
        let s = space();
        let p = table1(&s);
        let ds = s.by_name("Dataset").unwrap();
        let c = Conjunction::new(vec![Predicate::eq(ds, Value::from("Iris"))]);
        assert_eq!(p.support(&c), (1, 1));
        assert_eq!(p.support(&Conjunction::top()), (1, 2));
    }

    #[test]
    fn support_bounds_admissible_on_epoch_store() {
        for n in [40usize, 64, 100, 128] {
            let (s, mut p) = epoch_store(n);
            let x = s.by_name("x").unwrap();
            let y = s.by_name("y").unwrap();
            let causes = vec![
                Conjunction::top(),
                Conjunction::new(vec![Predicate::eq(x, 3)]),
                Conjunction::new(vec![Predicate::eq(x, 3), Predicate::eq(y, 2)]),
                Conjunction::new(vec![Predicate::new(x, crate::Comparator::Le, 4)]),
                Conjunction::new(vec![
                    Predicate::new(x, crate::Comparator::Gt, 5),
                    Predicate::new(y, crate::Comparator::Le, 3),
                ]),
            ];
            for compacted in [false, true] {
                if compacted {
                    p.compact(0);
                }
                let batched = p.support_bounds_many(&causes);
                for (k, c) in causes.iter().enumerate() {
                    let exact = p.support(c);
                    let b = p.support_bounds(c);
                    assert!(
                        b.admits(exact),
                        "bounds {b:?} exclude exact {exact:?} (n={n}, compacted={compacted})"
                    );
                    assert!(b.fail_lo <= b.fail_hi && b.succeed_lo <= b.succeed_hi);
                    assert_eq!(batched[k], b, "batched bounds diverge (n={n})");
                    assert_eq!(p.support_via_bounds(c), exact);
                }
            }
        }
    }

    #[test]
    fn batched_superset_matches_exact_scalar() {
        let (s, mut p) = epoch_store(100);
        let x = s.by_name("x").unwrap();
        let y = s.by_name("y").unwrap();
        let causes: Vec<Conjunction> = (0..16)
            .map(|v| {
                let mut preds = vec![Predicate::eq(x, v as i64)];
                if v % 3 == 0 {
                    preds.push(Predicate::new(y, crate::Comparator::Gt, (v % 8) as i64));
                }
                Conjunction::new(preds)
            })
            .chain([Conjunction::top()])
            .collect();
        for compacted in [false, true] {
            if compacted {
                p.compact(0);
            }
            let batched = p.succeeding_superset_exists_many(&causes);
            let scalar: Vec<bool> = causes
                .iter()
                .map(|c| p.succeeding_superset_exists_exact(c))
                .collect();
            assert_eq!(batched, scalar, "compacted={compacted}");
        }
    }

    #[test]
    fn bounds_counters_and_escape_hatch() {
        let s = space();
        let mut p = table1(&s);
        let version = s.by_name("Version").unwrap();
        // Version = 1: two succeeding rows — the lower bound alone proves a
        // succeeding superset (short-circuit). Version = 2: one failing row —
        // the bound is inconclusive (hi = 1, lo = 0) and falls through.
        let d1 = Conjunction::new(vec![Predicate::eq(version, 1)]);
        let d2 = Conjunction::new(vec![Predicate::eq(version, 2)]);
        assert!(p.succeeding_superset_exists(&d1));
        assert!(!p.succeeding_superset_exists(&d2));
        let (short, fall) = p.bounds_counters();
        assert!(short >= 1, "lower-bound witness never short-circuited");
        assert!(fall >= 1, "inconclusive bound never fell through");
        // The escape hatch: disabling bounds routes every query to the exact
        // path, answers stay identical, and the counters freeze.
        p.set_bounds_enabled(false);
        assert!(!p.bounds_enabled());
        let before = p.bounds_counters();
        assert!(p.succeeding_superset_exists(&d1));
        assert!(!p.succeeding_superset_exists(&d2));
        assert_eq!(p.bounds_counters(), before);
    }

    /// Records the first `n` distinct instances of a 16×8 space (128 total,
    /// so several 64-run epochs fill) through a store with 64-run epochs;
    /// failing iff x == 3.
    fn epoch_store(n: usize) -> (Arc<ParamSpace>, ProvenanceStore) {
        let s = ParamSpace::builder()
            .ordinal("x", (0..16).collect::<Vec<_>>())
            .ordinal("y", (0..8).collect::<Vec<_>>())
            .build();
        let x = s.by_name("x").unwrap();
        let mut p = ProvenanceStore::with_epoch_size(s.clone(), 64);
        for inst in s.instances().take(n) {
            let outcome = Outcome::from_check(inst.get(x) != &crate::Value::from(3));
            p.record(inst, EvalResult::of(outcome));
        }
        (s, p)
    }

    #[test]
    fn compaction_preserves_queries_exactly() {
        let (s, mut p) = epoch_store(128);
        let n = p.len();
        assert_eq!(n, 128, "the whole 16×8 space is recorded");
        let x = s.by_name("x").unwrap();
        let y = s.by_name("y").unwrap();
        let causes = [
            Conjunction::new(vec![Predicate::eq(x, 3)]),
            Conjunction::new(vec![Predicate::eq(x, 3), Predicate::eq(y, 2)]),
            Conjunction::new(vec![Predicate::new(x, crate::Comparator::Le, 4)]),
            Conjunction::top(),
        ];
        let before: Vec<_> = causes
            .iter()
            .map(|c| {
                (
                    p.support(c),
                    p.satisfying_runs(c).map(|r| r.instance.clone()).collect::<Vec<_>>(),
                    p.succeeding_superset_exists(c),
                )
            })
            .collect();
        assert!(p.num_epochs() >= 1);
        let retired = p.compact(0);
        assert_eq!(retired, n / 64);
        assert_eq!(p.retired_epochs(), retired);
        for (c, (support, satisfying, superset)) in causes.iter().zip(&before) {
            assert_eq!(&p.support(c), support, "support changed for {}", c.display(&s));
            assert_eq!(
                &p.satisfying_runs(c).map(|r| r.instance.clone()).collect::<Vec<_>>(),
                satisfying
            );
            assert_eq!(&p.succeeding_superset_exists(c), superset);
        }
        // Re-compacting is a no-op; lookups still hit.
        assert_eq!(p.compact(0), 0);
        assert!(p.lookup(&s.instance_from_indices(&[3, 2])).is_some());
    }

    /// Parallel epoch fan-out returns bit-identical results to the
    /// sequential path — mid-compaction states included — and the
    /// observability counters tick only when parallelism actually engages.
    #[test]
    fn parallel_queries_match_sequential_and_count() {
        let s = ParamSpace::builder()
            .ordinal("a", (0..40).collect::<Vec<_>>())
            .ordinal("b", (0..16).collect::<Vec<_>>())
            .build();
        let mut seq = ProvenanceStore::with_epoch_size(s.clone(), 64);
        for (i, inst) in s.instances().take(600).enumerate() {
            seq.record(inst, EvalResult::of(Outcome::from_check(i % 7 != 0)));
        }
        seq.compact(4); // a mix of retired, frozen, and in-progress epochs
        let mut par = seq.clone();
        par.set_query_workers(4);
        par.set_parallel_epoch_threshold(2);
        assert_eq!(par.query_workers(), 4);

        let a = s.by_name("a").unwrap();
        let b = s.by_name("b").unwrap();
        let causes: Vec<Conjunction> = (0..12)
            .map(|v| match v % 3 {
                0 => Conjunction::new(vec![Predicate::eq(a, v as i64)]),
                1 => Conjunction::new(vec![Predicate::new(
                    a,
                    crate::Comparator::Le,
                    (3 * v) as i64,
                )]),
                _ => Conjunction::new(vec![
                    Predicate::new(a, crate::Comparator::Gt, v as i64),
                    Predicate::eq(b, (v % 16) as i64),
                ]),
            })
            .chain([Conjunction::top()])
            .collect();
        for cause in &causes {
            assert_eq!(seq.support(cause), par.support(cause));
            assert_eq!(
                seq.succeeding_superset_exists(cause),
                par.succeeding_superset_exists(cause)
            );
            let seq_set: Vec<_> = seq.satisfying_runs(cause).map(|r| &r.instance).collect();
            let par_set: Vec<_> = par.satisfying_runs(cause).map(|r| &r.instance).collect();
            assert_eq!(seq_set, par_set);
        }
        // Batched support agrees with one-at-a-time on both paths.
        let one_by_one: Vec<_> = causes.iter().map(|c| par.support(c)).collect();
        assert_eq!(par.support_many(&causes), one_by_one);
        assert_eq!(seq.support_many(&causes), one_by_one);

        let (par_queries, par_epochs) = par.query_counters();
        assert!(par_queries > 0, "parallel path engaged");
        assert!(par_epochs > 0);
        let (seq_queries, seq_epochs) = seq.query_counters();
        assert_eq!(seq_queries, 0, "workers=1 never parallelizes");
        assert!(seq_epochs > 0);
    }

    /// Below the epoch threshold (or with one worker) queries stay
    /// sequential even when workers are configured — no thread overhead on
    /// small logs, and the counters show it.
    #[test]
    fn parallel_threshold_gates_fan_out() {
        let (s, mut p) = epoch_store(128); // 2 full epochs of 64
        p.set_query_workers(8); // default threshold is 8 full epochs
        let x = s.by_name("x").unwrap();
        let c = Conjunction::new(vec![Predicate::eq(x, 3)]);
        let support = p.support(&c);
        assert_eq!(p.query_counters().0, 0, "below threshold: sequential");
        p.set_parallel_epoch_threshold(1);
        assert_eq!(p.support(&c), support, "fan-out changes nothing");
        assert_eq!(p.query_counters().0, 1);
    }

    #[test]
    fn index_bound_auto_compacts_on_record() {
        let (_, mut fresh) = epoch_store(0);
        fresh.set_index_bound(Some(1));
        let s = fresh.space().clone();
        // 40 distinct instances over 64-run epochs: fill several epochs by
        // inserting distinct keys (8*5 = 40 < 64, so widen via more records).
        let mut recorded = 0usize;
        for xi in 0..8u32 {
            for yi in 0..5u32 {
                let inst = s.instance_from_indices(&[xi, yi]);
                if fresh.record(inst, EvalResult::of(Outcome::from_check(xi != 3))) {
                    recorded += 1;
                }
            }
        }
        assert_eq!(recorded, 40); // one partial epoch only: nothing to retire
        assert_eq!(fresh.retired_epochs(), 0);
        let summary_bytes = fresh.index_bytes();
        assert!(summary_bytes > 0);
    }

    #[test]
    fn index_bound_retires_old_epochs() {
        let s = ParamSpace::builder()
            .ordinal("a", (0..40).collect::<Vec<_>>())
            .ordinal("b", (0..10).collect::<Vec<_>>())
            .build();
        let mut p = ProvenanceStore::with_epoch_size(s.clone(), 64);
        p.set_index_bound(Some(1));
        for (i, inst) in s.instances().enumerate() {
            p.record(
                inst,
                EvalResult::of(Outcome::from_check(i % 7 != 0)),
            );
        }
        assert_eq!(p.len(), 400);
        assert_eq!(p.num_epochs(), 7); // 400 runs / 64
        // All but the newest full epoch + the partial one are retired.
        assert!(p.retired_epochs() >= 5, "retired {}", p.retired_epochs());
        assert!(p.live_epochs() <= 2);
        // Summaries carry exact outcome counts.
        let total_failing: u32 = (0..p.num_epochs())
            .filter_map(|e| p.epoch_summary(e))
            .map(|s| s.failing)
            .sum();
        assert!(total_failing > 0);
        // Queries stay exact: compare against a fully-live store.
        let mut live = ProvenanceStore::with_epoch_size(s.clone(), 64);
        for run in p.runs() {
            live.record(run.instance.clone(), run.eval);
        }
        let a = s.by_name("a").unwrap();
        for v in 0..40 {
            let c = Conjunction::new(vec![Predicate::eq(a, v)]);
            assert_eq!(p.support(&c), live.support(&c), "a = {v}");
        }
    }

    #[test]
    fn tsv_layout() {
        let s = space();
        let p = table1(&s);
        let tsv = p.to_tsv();
        let mut lines = tsv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "Dataset\tEstimator\tVersion\tscore\tevaluation"
        );
        assert_eq!(lines.next().unwrap(), "Iris\tLR\t1\t0.9\tsucceed");
        assert_eq!(tsv.lines().count(), 4);
    }
}

#[cfg(test)]
mod tsv_tests {
    use super::*;
    use crate::value::Value;

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .categorical("Dataset", ["Iris", "Digits"])
            .ordinal("Version", [1, 2])
            .build()
    }

    #[test]
    fn roundtrip() {
        let s = space();
        let mut prov = ProvenanceStore::new(s.clone());
        prov.record(
            Instance::from_pairs(&s, [("Dataset", "Iris".into()), ("Version", 2.into())]),
            EvalResult::from_score_at_least(0.2, 0.6),
        );
        prov.record(
            Instance::from_pairs(&s, [("Dataset", "Digits".into()), ("Version", 1.into())]),
            EvalResult::of(Outcome::Succeed),
        );
        let parsed = ProvenanceStore::from_tsv(s.clone(), &prov.to_tsv()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.failing().count(), 1);
        let inst = Instance::from_pairs(&s, [("Dataset", "Iris".into()), ("Version", 2.into())]);
        assert_eq!(parsed.lookup(&inst).unwrap().score, Some(0.2));
        // Serializing again reproduces the text.
        assert_eq!(parsed.to_tsv(), prov.to_tsv());
    }

    #[test]
    fn header_mismatch() {
        let s = space();
        let err = ProvenanceStore::from_tsv(s, "A\tB\tscore\tevaluation\n").unwrap_err();
        assert!(matches!(err, TsvError::Header { .. }));
        assert!(err.to_string().contains("header mismatch"));
    }

    #[test]
    fn unknown_value_rejected() {
        let s = space();
        let text = "Dataset\tVersion\tscore\tevaluation\nWine\t1\t-\tsucceed\n";
        let err = ProvenanceStore::from_tsv(s, text).unwrap_err();
        assert!(matches!(err, TsvError::Value { ref param, .. } if param == "Dataset"));
    }

    #[test]
    fn bad_arity_and_score_and_eval() {
        let s = space();
        let base = "Dataset\tVersion\tscore\tevaluation\n";
        assert!(matches!(
            ProvenanceStore::from_tsv(s.clone(), &format!("{base}Iris\t1\tsucceed\n")).unwrap_err(),
            TsvError::Arity { .. }
        ));
        assert!(matches!(
            ProvenanceStore::from_tsv(s.clone(), &format!("{base}Iris\t1\tbad\tsucceed\n"))
                .unwrap_err(),
            TsvError::Score { .. }
        ));
        assert!(matches!(
            ProvenanceStore::from_tsv(s.clone(), &format!("{base}Iris\t1\t-\tmaybe\n"))
                .unwrap_err(),
            TsvError::Evaluation { .. }
        ));
        assert!(matches!(
            ProvenanceStore::from_tsv(s, "").unwrap_err(),
            TsvError::Empty
        ));
    }

    #[test]
    fn blank_lines_skipped() {
        let s = space();
        let text = "Dataset\tVersion\tscore\tevaluation\n\nIris\t1\t-\tsucceed\n\n";
        let parsed = ProvenanceStore::from_tsv(s, text).unwrap();
        assert_eq!(parsed.len(), 1);
        let _ = Value::from(1); // keep the import meaningful
    }

    /// Values containing the TSV structure characters — tabs, newlines,
    /// carriage returns, backslashes — must round-trip instead of smuggling
    /// extra cells or rows into the table.
    #[test]
    fn hostile_values_roundtrip() {
        let hostile = [
            "plain",
            "tab\there",
            "line\nbreak",
            "cr\rhere",
            "back\\slash",
            "\\t literal backslash-t",
            "trailing\\",
            "\t\n\r\\",
            "mix\tof\nall\r\\four",
        ];
        let s = ParamSpace::builder()
            .categorical("evil\tname", hostile)
            .ordinal("Version", [1, 2])
            .build();
        let mut prov = ProvenanceStore::new(s.clone());
        for (i, v) in hostile.iter().enumerate() {
            prov.record(
                Instance::from_pairs(&s, [("evil\tname", (*v).into()), ("Version", 1.into())]),
                EvalResult::of(Outcome::from_check(i % 2 == 0)),
            );
        }
        let tsv = prov.to_tsv();
        // Structure is intact: one header + one line per run, each with
        // exactly three tabs.
        assert_eq!(tsv.lines().count(), 1 + hostile.len());
        for line in tsv.lines() {
            assert_eq!(line.matches('\t').count(), 3, "line {line:?}");
        }
        let parsed = ProvenanceStore::from_tsv(s.clone(), &tsv).unwrap();
        assert_eq!(parsed.len(), prov.len());
        for (a, b) in parsed.runs().iter().zip(prov.runs()) {
            assert_eq!(a.instance, b.instance);
            assert_eq!(a.eval.outcome, b.eval.outcome);
        }
        assert_eq!(parsed.to_tsv(), tsv, "escaping is stable");
    }

    #[test]
    fn malformed_escape_rejected() {
        let s = space();
        let base = "Dataset\tVersion\tscore\tevaluation\n";
        // Lone trailing backslash.
        let err =
            ProvenanceStore::from_tsv(s.clone(), &format!("{base}Iris\\\t1\t-\tsucceed\n"))
                .unwrap_err();
        assert!(matches!(err, TsvError::Escape { line: 2, .. }), "{err}");
        assert!(err.to_string().contains("malformed backslash escape"));
        // Unknown escape pair.
        let err = ProvenanceStore::from_tsv(s, &format!("{base}\\qIris\t1\t-\tsucceed\n"))
            .unwrap_err();
        assert!(matches!(err, TsvError::Escape { .. }));
    }

    #[test]
    fn escape_helpers_invert() {
        for s in ["", "a", "a\\tb", "\\\\", "plain text", "\t\n\r\\ all"] {
            let mut escaped = String::new();
            escape_tsv_into(s, &mut escaped);
            assert_eq!(unescape_tsv(&escaped).as_deref(), Some(s));
            assert!(!escaped.contains('\t') && !escaped.contains('\n'));
        }
        assert_eq!(unescape_tsv("bad\\"), None);
        assert_eq!(unescape_tsv("\\x"), None);
        assert_eq!(unescape_tsv("ok\\t"), Some("ok\t".to_string()));
    }
}
