//! The provenance store: the execution history `CPI` of pipeline instances
//! and their evaluations.
//!
//! BugDoc's inputs are "a set of parameter-value pairs associated with
//! previously-run instances `G = CP_1 … CP_k`" (paper §3, Problem Definition),
//! and its cost measure counts executions *beyond* that set. The store is the
//! single source of truth both for what is already known (dedup/caching) and
//! for the queries the algorithms pose: find a failing instance, find
//! (mutually) disjoint successes, check whether a hypothetical cause has a
//! succeeding superset (the Shortcut sanity check).

use crate::cause::Conjunction;
use crate::instance::Instance;
use crate::outcome::{EvalResult, Outcome};
use crate::param::ParamSpace;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// One recorded execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Run {
    /// The executed instance.
    pub instance: Instance,
    /// Its evaluation.
    pub eval: EvalResult,
}

impl Run {
    /// The binary outcome.
    pub fn outcome(&self) -> Outcome {
        self.eval.outcome
    }
}

/// The execution history of a pipeline, deduplicated by instance.
///
/// The evaluation procedure is deterministic (paper §3, Def. 2), so recording
/// the same instance twice with conflicting outcomes is a bug; `record`
/// detects and reports it.
#[derive(Debug, Clone)]
pub struct ProvenanceStore {
    space: Arc<ParamSpace>,
    runs: Vec<Run>,
    by_instance: HashMap<Instance, usize>,
}

impl ProvenanceStore {
    /// An empty history over a space.
    pub fn new(space: Arc<ParamSpace>) -> Self {
        ProvenanceStore {
            space,
            runs: Vec::new(),
            by_instance: HashMap::new(),
        }
    }

    /// A history pre-seeded with given runs (the paper's "previously run
    /// instances"). Panics on conflicting duplicate evaluations.
    pub fn with_runs(space: Arc<ParamSpace>, runs: impl IntoIterator<Item = Run>) -> Self {
        let mut store = ProvenanceStore::new(space);
        for run in runs {
            store.record(run.instance, run.eval);
        }
        store
    }

    /// The parameter space.
    pub fn space(&self) -> &Arc<ParamSpace> {
        &self.space
    }

    /// Records an execution. Returns `true` if the instance was new. A
    /// duplicate with the same outcome is a silent no-op; a duplicate with a
    /// *different* outcome panics — it violates Def. 2's determinism and would
    /// silently corrupt every downstream guarantee.
    pub fn record(&mut self, instance: Instance, eval: EvalResult) -> bool {
        if let Some(&i) = self.by_instance.get(&instance) {
            assert_eq!(
                self.runs[i].eval.outcome,
                eval.outcome,
                "non-deterministic evaluation for instance {}",
                instance.display(&self.space)
            );
            return false;
        }
        self.by_instance.insert(instance.clone(), self.runs.len());
        self.runs.push(Run { instance, eval });
        true
    }

    /// Number of recorded runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True if no runs are recorded.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// All runs, in recording order.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// The recorded evaluation of an instance, if it was executed.
    pub fn lookup(&self, instance: &Instance) -> Option<&EvalResult> {
        self.by_instance.get(instance).map(|&i| &self.runs[i].eval)
    }

    /// The recorded outcome of an instance, if it was executed.
    pub fn outcome_of(&self, instance: &Instance) -> Option<Outcome> {
        self.lookup(instance).map(|e| e.outcome)
    }

    /// Iterates over failing instances (in recording order).
    pub fn failing(&self) -> impl Iterator<Item = &Instance> {
        self.runs
            .iter()
            .filter(|r| r.outcome().is_fail())
            .map(|r| &r.instance)
    }

    /// Iterates over succeeding instances (in recording order).
    pub fn succeeding(&self) -> impl Iterator<Item = &Instance> {
        self.runs
            .iter()
            .filter(|r| r.outcome().is_succeed())
            .map(|r| &r.instance)
    }

    /// The first failing instance, if any — the `CP_f` Stacked Shortcut picks
    /// from the history (Algorithm 2).
    pub fn first_failing(&self) -> Option<&Instance> {
        self.failing().next()
    }

    /// Succeeding instances disjoint from `from` (Def. 6), in recording order.
    pub fn disjoint_successes<'a>(
        &'a self,
        from: &'a Instance,
    ) -> impl Iterator<Item = &'a Instance> + 'a {
        self.succeeding().filter(move |g| g.is_disjoint_from(from))
    }

    /// Greedily selects up to `k` succeeding instances that are disjoint from
    /// `from` and mutually disjoint — the `CP_G` set of Algorithm 2. If fewer
    /// than `k` mutually disjoint successes exist, the result is shorter
    /// ("mutually disjoint if possible").
    pub fn mutually_disjoint_successes<'s>(
        &'s self,
        from: &Instance,
        k: usize,
    ) -> Vec<&'s Instance> {
        let mut picked: Vec<&'s Instance> = Vec::new();
        for run in &self.runs {
            if picked.len() == k {
                break;
            }
            let g = &run.instance;
            if run.outcome().is_succeed()
                && g.is_disjoint_from(from)
                && picked.iter().all(|p| p.is_disjoint_from(g))
            {
                picked.push(g);
            }
        }
        picked
    }

    /// The succeeding instance most different from `from` (maximum Hamming
    /// distance) — the heuristic fallback when the Disjointness Condition
    /// fails (paper §4.1: "take an instance that differs in as many
    /// parameter-values as possible"). Ties break to the earliest run.
    pub fn most_different_success(&self, from: &Instance) -> Option<&Instance> {
        self.succeeding()
            .map(|g| (g.hamming_distance(from), g))
            .max_by(|(da, a), (db, b)| {
                // max_by keeps the *last* maximal element; order by distance
                // then by reverse recording order so the earliest run wins ties.
                da.cmp(db).then_with(|| {
                    let ia = self.by_instance[*a];
                    let ib = self.by_instance[*b];
                    ib.cmp(&ia)
                })
            })
            .map(|(_, g)| g)
    }

    /// The Shortcut sanity check (Algorithm 1, final loop): is there a
    /// *succeeding* run whose parameter-values are a superset of the
    /// hypothetical root cause `D`? If so, `D` is not definitive.
    pub fn succeeding_superset_exists(&self, cause: &Conjunction) -> bool {
        self.succeeding().any(|g| cause.satisfied_by(g))
    }

    /// Instances in the history satisfying a conjunction, with outcomes.
    pub fn satisfying_runs<'a>(
        &'a self,
        cause: &'a Conjunction,
    ) -> impl Iterator<Item = &'a Run> + 'a {
        self.runs.iter().filter(|r| cause.satisfied_by(&r.instance))
    }

    /// Counts `(failing, succeeding)` runs satisfying a conjunction.
    pub fn support(&self, cause: &Conjunction) -> (usize, usize) {
        let mut fail = 0;
        let mut succeed = 0;
        for r in self.satisfying_runs(cause) {
            match r.outcome() {
                Outcome::Fail => fail += 1,
                Outcome::Succeed => succeed += 1,
            }
        }
        (fail, succeed)
    }

    /// Parses a history from the TSV layout produced by [`Self::to_tsv`]
    /// (parameter columns in space order, then `score`, then `evaluation`).
    /// Values are matched against the parameter domains by their display
    /// form; `score` is a float or `-`.
    pub fn from_tsv(space: Arc<ParamSpace>, text: &str) -> Result<Self, TsvError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(TsvError::Empty)?;
        let cols: Vec<&str> = header.split('\t').collect();
        let expected: Vec<String> = space
            .iter()
            .map(|(_, d)| d.name().to_string())
            .chain(["score".to_string(), "evaluation".to_string()])
            .collect();
        if cols != expected.iter().map(String::as_str).collect::<Vec<_>>() {
            return Err(TsvError::Header {
                expected: expected.join("\t"),
                found: header.to_string(),
            });
        }

        let mut store = ProvenanceStore::new(space.clone());
        for (line_no, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let cells: Vec<&str> = line.split('\t').collect();
            if cells.len() != space.len() + 2 {
                return Err(TsvError::Arity {
                    line: line_no + 1,
                    expected: space.len() + 2,
                    found: cells.len(),
                });
            }
            let mut values = Vec::with_capacity(space.len());
            for (p, cell) in space.ids().zip(cells.iter()) {
                let domain = space.domain(p);
                let value = domain
                    .values()
                    .iter()
                    .find(|v| v.to_string() == *cell)
                    .cloned()
                    .ok_or_else(|| TsvError::Value {
                        line: line_no + 1,
                        param: space.param(p).name().to_string(),
                        cell: cell.to_string(),
                    })?;
                values.push(value);
            }
            let score = match cells[space.len()] {
                "-" => None,
                s => Some(s.parse::<f64>().map_err(|_| TsvError::Score {
                    line: line_no + 1,
                    cell: s.to_string(),
                })?),
            };
            let outcome = match cells[space.len() + 1] {
                "succeed" => Outcome::Succeed,
                "fail" => Outcome::Fail,
                other => {
                    return Err(TsvError::Evaluation {
                        line: line_no + 1,
                        cell: other.to_string(),
                    })
                }
            };
            store.record(Instance::new(values), EvalResult { outcome, score });
        }
        Ok(store)
    }

    /// Serializes the history as a TSV table (header + one row per run):
    /// parameter columns, then `score`, then `evaluation` — the layout of the
    /// paper's Tables 1 and 2.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for (i, (_, def)) in self.space.iter().enumerate() {
            if i > 0 {
                out.push('\t');
            }
            out.push_str(def.name());
        }
        out.push_str("\tscore\tevaluation\n");
        for run in &self.runs {
            for (i, v) in run.instance.values().iter().enumerate() {
                if i > 0 {
                    out.push('\t');
                }
                let _ = write!(out, "{v}");
            }
            match run.eval.score {
                Some(s) => {
                    let _ = write!(out, "\t{s}");
                }
                None => out.push_str("\t-"),
            }
            let _ = writeln!(out, "\t{}", run.outcome());
        }
        out
    }
}

/// Why a provenance TSV could not be parsed; see [`ProvenanceStore::from_tsv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsvError {
    /// No header line.
    Empty,
    /// The header does not match the space's layout.
    Header {
        /// The layout the space requires.
        expected: String,
        /// The header found.
        found: String,
    },
    /// A row has the wrong number of cells.
    Arity {
        /// 1-based line number.
        line: usize,
        /// Expected cell count.
        expected: usize,
        /// Found cell count.
        found: usize,
    },
    /// A cell is not a value of its parameter's universe.
    Value {
        /// 1-based line number.
        line: usize,
        /// Parameter name.
        param: String,
        /// The offending cell.
        cell: String,
    },
    /// The score cell is neither a float nor `-`.
    Score {
        /// 1-based line number.
        line: usize,
        /// The offending cell.
        cell: String,
    },
    /// The evaluation cell is neither `succeed` nor `fail`.
    Evaluation {
        /// 1-based line number.
        line: usize,
        /// The offending cell.
        cell: String,
    },
}

impl std::fmt::Display for TsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsvError::Empty => write!(f, "empty provenance TSV"),
            TsvError::Header { expected, found } => {
                write!(f, "header mismatch: expected {expected:?}, found {found:?}")
            }
            TsvError::Arity {
                line,
                expected,
                found,
            } => write!(f, "line {line}: expected {expected} cells, found {found}"),
            TsvError::Value { line, param, cell } => write!(
                f,
                "line {line}: {cell:?} is not in the universe of parameter {param:?}"
            ),
            TsvError::Score { line, cell } => {
                write!(f, "line {line}: score {cell:?} is not a number or '-'")
            }
            TsvError::Evaluation { line, cell } => write!(
                f,
                "line {line}: evaluation {cell:?} must be 'succeed' or 'fail'"
            ),
        }
    }
}

impl std::error::Error for TsvError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::value::Value;

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .categorical("Dataset", ["Iris", "Digits", "Images"])
            .categorical("Estimator", ["LR", "DT", "GB"])
            .ordinal("Version", [1, 2])
            .build()
    }

    fn inst(s: &ParamSpace, d: &str, e: &str, v: i64) -> Instance {
        Instance::from_pairs(
            s,
            [
                ("Dataset", d.into()),
                ("Estimator", e.into()),
                ("Version", v.into()),
            ],
        )
    }

    /// The paper's Table 1 history.
    fn table1(s: &Arc<ParamSpace>) -> ProvenanceStore {
        ProvenanceStore::with_runs(
            s.clone(),
            [
                Run {
                    instance: inst(s, "Iris", "LR", 1),
                    eval: EvalResult::from_score_at_least(0.9, 0.6),
                },
                Run {
                    instance: inst(s, "Digits", "DT", 1),
                    eval: EvalResult::from_score_at_least(0.8, 0.6),
                },
                Run {
                    instance: inst(s, "Iris", "GB", 2),
                    eval: EvalResult::from_score_at_least(0.2, 0.6),
                },
            ],
        )
    }

    #[test]
    fn record_dedups_and_counts() {
        let s = space();
        let mut p = table1(&s);
        assert_eq!(p.len(), 3);
        // Re-recording the same instance/outcome is a no-op.
        assert!(!p.record(
            inst(&s, "Iris", "LR", 1),
            EvalResult::from_score_at_least(0.9, 0.6)
        ));
        assert_eq!(p.len(), 3);
        assert!(p.record(inst(&s, "Images", "GB", 1), Outcome::Succeed.into()));
        assert_eq!(p.len(), 4);
    }

    #[test]
    #[should_panic(expected = "non-deterministic evaluation")]
    fn conflicting_duplicate_panics() {
        let s = space();
        let mut p = table1(&s);
        p.record(inst(&s, "Iris", "LR", 1), Outcome::Fail.into());
    }

    #[test]
    fn failing_and_succeeding_queries() {
        let s = space();
        let p = table1(&s);
        assert_eq!(p.failing().count(), 1);
        assert_eq!(p.succeeding().count(), 2);
        assert_eq!(p.first_failing().unwrap(), &inst(&s, "Iris", "GB", 2));
        assert_eq!(p.outcome_of(&inst(&s, "Iris", "GB", 2)), Some(Outcome::Fail));
        assert_eq!(p.outcome_of(&inst(&s, "Images", "LR", 1)), None);
    }

    #[test]
    fn disjoint_successes_match_paper_example() {
        // Paper §4.1 Example 1: the only disjoint success w.r.t. CP_f
        // (Iris, GB, 2.0) is (Digits, DT, 1.0).
        let s = space();
        let p = table1(&s);
        let cpf = inst(&s, "Iris", "GB", 2);
        let disjoint: Vec<_> = p.disjoint_successes(&cpf).collect();
        assert_eq!(disjoint, vec![&inst(&s, "Digits", "DT", 1)]);
    }

    #[test]
    fn mutually_disjoint_selection() {
        let s = space();
        let mut p = table1(&s);
        // Add a second success disjoint from CP_f but NOT from (Digits,DT,1).
        p.record(inst(&s, "Digits", "LR", 1), Outcome::Succeed.into());
        // And one mutually disjoint from both.
        p.record(inst(&s, "Images", "DT", 1), Outcome::Succeed.into());
        let cpf = inst(&s, "Iris", "GB", 2);
        let picked = p.mutually_disjoint_successes(&cpf, 4);
        assert_eq!(picked.len(), 1, "Version=1 is shared, so only one pick");
        // With a distinct version the third is mutually disjoint... build one:
        // (Images, LR, 1) shares Version with all; the space only has 2
        // versions so mutual disjointness caps at 2 successes (versions 1,2).
        assert!(picked[0].is_disjoint_from(&cpf));
    }

    #[test]
    fn most_different_fallback() {
        let s = space();
        let mut p = ProvenanceStore::new(s.clone());
        let cpf = inst(&s, "Iris", "GB", 2);
        p.record(inst(&s, "Iris", "LR", 2), Outcome::Succeed.into()); // distance 1
        p.record(inst(&s, "Iris", "DT", 1), Outcome::Succeed.into()); // distance 2
        assert_eq!(
            p.most_different_success(&cpf).unwrap(),
            &inst(&s, "Iris", "DT", 1)
        );
        // Tie at distance 2 breaks to the earliest run.
        p.record(inst(&s, "Iris", "LR", 1), Outcome::Succeed.into()); // distance 2
        assert_eq!(
            p.most_different_success(&cpf).unwrap(),
            &inst(&s, "Iris", "DT", 1)
        );
    }

    #[test]
    fn succeeding_superset_check() {
        let s = space();
        let p = table1(&s);
        let version = s.by_name("Version").unwrap();
        // D = {Version = 1}: (Iris,LR,1) succeeded and contains it.
        let d1 = Conjunction::new(vec![Predicate::eq(version, 1)]);
        assert!(p.succeeding_superset_exists(&d1));
        // D = {Version = 2}: the only run with version 2 failed.
        let d2 = Conjunction::new(vec![Predicate::eq(version, 2)]);
        assert!(!p.succeeding_superset_exists(&d2));
    }

    #[test]
    fn support_counts() {
        let s = space();
        let p = table1(&s);
        let ds = s.by_name("Dataset").unwrap();
        let c = Conjunction::new(vec![Predicate::eq(ds, Value::from("Iris"))]);
        assert_eq!(p.support(&c), (1, 1));
        assert_eq!(p.support(&Conjunction::top()), (1, 2));
    }

    #[test]
    fn tsv_layout() {
        let s = space();
        let p = table1(&s);
        let tsv = p.to_tsv();
        let mut lines = tsv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "Dataset\tEstimator\tVersion\tscore\tevaluation"
        );
        assert_eq!(lines.next().unwrap(), "Iris\tLR\t1\t0.9\tsucceed");
        assert_eq!(tsv.lines().count(), 4);
    }
}

#[cfg(test)]
mod tsv_tests {
    use super::*;
    use crate::value::Value;

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .categorical("Dataset", ["Iris", "Digits"])
            .ordinal("Version", [1, 2])
            .build()
    }

    #[test]
    fn roundtrip() {
        let s = space();
        let mut prov = ProvenanceStore::new(s.clone());
        prov.record(
            Instance::from_pairs(&s, [("Dataset", "Iris".into()), ("Version", 2.into())]),
            EvalResult::from_score_at_least(0.2, 0.6),
        );
        prov.record(
            Instance::from_pairs(&s, [("Dataset", "Digits".into()), ("Version", 1.into())]),
            EvalResult::of(Outcome::Succeed),
        );
        let parsed = ProvenanceStore::from_tsv(s.clone(), &prov.to_tsv()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.failing().count(), 1);
        let inst = Instance::from_pairs(&s, [("Dataset", "Iris".into()), ("Version", 2.into())]);
        assert_eq!(parsed.lookup(&inst).unwrap().score, Some(0.2));
        // Serializing again reproduces the text.
        assert_eq!(parsed.to_tsv(), prov.to_tsv());
    }

    #[test]
    fn header_mismatch() {
        let s = space();
        let err = ProvenanceStore::from_tsv(s, "A\tB\tscore\tevaluation\n").unwrap_err();
        assert!(matches!(err, TsvError::Header { .. }));
        assert!(err.to_string().contains("header mismatch"));
    }

    #[test]
    fn unknown_value_rejected() {
        let s = space();
        let text = "Dataset\tVersion\tscore\tevaluation\nWine\t1\t-\tsucceed\n";
        let err = ProvenanceStore::from_tsv(s, text).unwrap_err();
        assert!(matches!(err, TsvError::Value { ref param, .. } if param == "Dataset"));
    }

    #[test]
    fn bad_arity_and_score_and_eval() {
        let s = space();
        let base = "Dataset\tVersion\tscore\tevaluation\n";
        assert!(matches!(
            ProvenanceStore::from_tsv(s.clone(), &format!("{base}Iris\t1\tsucceed\n")).unwrap_err(),
            TsvError::Arity { .. }
        ));
        assert!(matches!(
            ProvenanceStore::from_tsv(s.clone(), &format!("{base}Iris\t1\tbad\tsucceed\n"))
                .unwrap_err(),
            TsvError::Score { .. }
        ));
        assert!(matches!(
            ProvenanceStore::from_tsv(s.clone(), &format!("{base}Iris\t1\t-\tmaybe\n"))
                .unwrap_err(),
            TsvError::Evaluation { .. }
        ));
        assert!(matches!(
            ProvenanceStore::from_tsv(s, "").unwrap_err(),
            TsvError::Empty
        ));
    }

    #[test]
    fn blank_lines_skipped() {
        let s = space();
        let text = "Dataset\tVersion\tscore\tevaluation\n\nIris\t1\t-\tsucceed\n\n";
        let parsed = ProvenanceStore::from_tsv(s, text).unwrap();
        assert_eq!(parsed.len(), 1);
        let _ = Value::from(1); // keep the import meaningful
    }
}
