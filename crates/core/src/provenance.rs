//! The provenance store: the execution history `CPI` of pipeline instances
//! and their evaluations.
//!
//! BugDoc's inputs are "a set of parameter-value pairs associated with
//! previously-run instances `G = CP_1 … CP_k`" (paper §3, Problem Definition),
//! and its cost measure counts executions *beyond* that set. The store is the
//! single source of truth both for what is already known (dedup/caching) and
//! for the queries the algorithms pose: find a failing instance, find
//! (mutually) disjoint successes, check whether a hypothetical cause has a
//! succeeding superset (the Shortcut sanity check).
//!
//! # Index layout
//!
//! Because BugDoc's cost model counts only *new pipeline executions*, every
//! in-memory operation here must be effectively free even at large histories.
//! The store therefore maintains, alongside the append-only `runs` log:
//!
//! * **Dense instance keys** — each recorded instance is encoded as one
//!   domain index per parameter (`Box<[u32]>`, see [`ParamSpace::encode`]),
//!   and `by_key` maps that encoding (hashed with the cheap
//!   [`FxHasher`](crate::FxHasher)) to its run index. Lookup of an instance
//!   that carries its own key ([`Instance::dense_key`]) hashes a handful of
//!   `u32`s — no `Value` hashing, no instance cloning.
//! * **Per-(parameter, value) run bitsets** — `value_bits[offsets[p] + v]` is
//!   the [`RunSet`] of runs whose parameter `p` takes domain value `v`,
//!   alongside `fail_bits`/`succeed_bits` for the outcomes. A predicate's
//!   satisfying runs are the OR of the bitsets of its allowed values; a
//!   conjunction's are the AND across its predicates — so
//!   [`support`](ProvenanceStore::support),
//!   [`satisfying_runs`](ProvenanceStore::satisfying_runs), and
//!   [`succeeding_superset_exists`](ProvenanceStore::succeeding_superset_exists)
//!   are word-parallel bit operations over the log instead of per-run
//!   predicate interpretation.
//! * **Overflow list** — instances whose values fall outside their declared
//!   domains (possible via the unchecked [`Instance::new`]) cannot be
//!   encoded; they are tracked in `overflow` and handled by the original
//!   interpretive path, so the fast index never changes observable
//!   semantics.

use crate::bitset::RunSet;
use crate::cause::Conjunction;
use crate::fx::hash_dense_key;
use crate::instance::Instance;
use crate::outcome::{EvalResult, Outcome};
use crate::param::ParamSpace;
use std::fmt::Write as _;
use std::sync::Arc;

/// Open-addressing index from dense instance keys to run indices.
///
/// Slots hold `(fingerprint, run)` pairs; the key bytes live in a flat
/// side arena (`arity` `u32`s per run, zero-filled for unencodable runs), so
/// every probe is hash → slot → one contiguous arena row — no pointer chase
/// through the run log. A fingerprint match is always confirmed against the
/// arena row, so lookups are exact even under 64-bit hash collisions; this
/// is still a handful of nanoseconds against a 10k-run history, versus the
/// tens a general-purpose `HashMap<Box<[u32]>, _>` costs on the same probe.
#[derive(Debug, Clone)]
struct KeyIndex {
    /// Packed slots: high 32 bits = fingerprint tag (`fp >> 32`), low 32 =
    /// run index (`EMPTY` marks a free slot). 8 bytes per slot keeps the
    /// table cache-resident at large histories. Slot position is derived
    /// from the fingerprint's *low* bits, so tag and position are
    /// independent; a tag match is always confirmed against the arena.
    slots: Vec<u64>,
    mask: usize,
    len: usize,
    /// Dense keys, one `arity`-sized row per run (in run order).
    arena: Vec<u32>,
    /// Key length — the parameter count of the store's space.
    arity: usize,
}

const EMPTY: u32 = u32::MAX;
const FREE_SLOT: u64 = EMPTY as u64;

#[inline]
fn pack_slot(fp: u64, run: u32) -> u64 {
    (fp & 0xFFFF_FFFF_0000_0000) | run as u64
}

impl KeyIndex {
    fn new(arity: usize) -> Self {
        KeyIndex {
            slots: vec![FREE_SLOT; 16],
            mask: 15,
            len: 0,
            arena: Vec::new(),
            arity,
        }
    }

    /// The arena row holding run `r`'s dense key.
    #[inline]
    fn row(&self, r: usize) -> &[u32] {
        &self.arena[r * self.arity..(r + 1) * self.arity]
    }

    /// The run whose instance has dense key `key`, given `key`'s fingerprint.
    /// Exact: every tag match is confirmed against the stored key bytes.
    #[inline]
    fn get(&self, fp: u64, key: &[u32]) -> Option<usize> {
        let tag = fp & 0xFFFF_FFFF_0000_0000;
        let mut i = fp as usize & self.mask;
        loop {
            let slot = self.slots[i];
            let run = slot as u32;
            if run == EMPTY {
                return None;
            }
            if slot & 0xFFFF_FFFF_0000_0000 == tag && self.row(run as usize) == key {
                return Some(run as usize);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Appends run `run`'s key row (callers append rows strictly in run
    /// order) and indexes it. The key must be absent (checked by `get`) and
    /// `run` must be below [`EMPTY`].
    fn insert(&mut self, fp: u64, run: u32, key: &[u32]) {
        debug_assert_eq!(key.len(), self.arity);
        debug_assert_eq!(self.arena.len(), run as usize * self.arity);
        assert!(run < EMPTY, "run index overflow");
        self.arena.extend_from_slice(key);
        if (self.len + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mut i = fp as usize & self.mask;
        while self.slots[i] as u32 != EMPTY {
            i = (i + 1) & self.mask;
        }
        self.slots[i] = pack_slot(fp, run);
        self.len += 1;
    }

    /// Appends a zero-filled arena row for a run that has no dense key, so
    /// row addressing stays `run * arity`. (The row is never compared: only
    /// runs inserted into `slots` are.)
    fn push_overflow_row(&mut self, run: u32) {
        debug_assert_eq!(self.arena.len(), run as usize * self.arity);
        self.arena.extend(std::iter::repeat(0).take(self.arity));
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![FREE_SLOT; new_cap]);
        self.mask = new_cap - 1;
        for slot in old {
            if slot as u32 == EMPTY {
                continue;
            }
            // Re-derive the position from the stored run's key: the low
            // fingerprint bits are not stored, so rehash the arena row.
            let run = slot as u32;
            let fp = hash_dense_key(self.row(run as usize));
            let mut i = fp as usize & self.mask;
            while self.slots[i] as u32 != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = pack_slot(fp, run);
        }
    }
}

/// One recorded execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Run {
    /// The executed instance.
    pub instance: Instance,
    /// Its evaluation.
    pub eval: EvalResult,
}

impl Run {
    /// The binary outcome.
    pub fn outcome(&self) -> Outcome {
        self.eval.outcome
    }
}

/// The execution history of a pipeline, deduplicated by instance.
///
/// The evaluation procedure is deterministic (paper §3, Def. 2), so recording
/// the same instance twice with conflicting outcomes is a bug; `record`
/// detects and reports it. See the module docs for the dense-key and bitset
/// index this store maintains.
#[derive(Debug, Clone)]
pub struct ProvenanceStore {
    space: Arc<ParamSpace>,
    runs: Vec<Run>,
    /// Dense instance encoding → run index (no instance clone stored).
    by_key: KeyIndex,
    /// Start of parameter `p`'s slice of `value_bits`.
    offsets: Vec<u32>,
    /// `(parameter, value)` → set of runs assigning that value.
    value_bits: Vec<RunSet>,
    /// Runs that failed.
    fail_bits: RunSet,
    /// Runs that succeeded.
    succeed_bits: RunSet,
    /// Runs whose instances could not be densely encoded (out-of-domain
    /// values); they are absent from `by_key`/`value_bits` and served by the
    /// interpretive fallback paths.
    overflow: Vec<u32>,
}

impl ProvenanceStore {
    /// An empty history over a space.
    pub fn new(space: Arc<ParamSpace>) -> Self {
        let mut offsets = Vec::with_capacity(space.len());
        let mut total = 0u32;
        for p in space.ids() {
            offsets.push(total);
            total += space.domain(p).len() as u32;
        }
        let arity = space.len();
        ProvenanceStore {
            space,
            runs: Vec::new(),
            by_key: KeyIndex::new(arity),
            offsets,
            value_bits: vec![RunSet::new(); total as usize],
            fail_bits: RunSet::new(),
            succeed_bits: RunSet::new(),
            overflow: Vec::new(),
        }
    }

    /// The dense key for an instance: the cached one when present (debug-
    /// asserted against the space), else freshly encoded.
    fn key_of(&self, instance: &Instance) -> Option<Box<[u32]>> {
        if let Some(k) = instance.dense_key() {
            debug_assert_eq!(
                Some(k),
                self.space.encode(instance).as_deref(),
                "instance carries a dense key inconsistent with this store's space"
            );
            return Some(k.into());
        }
        self.space.encode(instance)
    }

    /// Run index of an unencodable instance, by value equality.
    fn overflow_find(&self, instance: &Instance) -> Option<usize> {
        self.overflow
            .iter()
            .map(|&i| i as usize)
            .find(|&i| &self.runs[i].instance == instance)
    }

    /// The set of runs satisfying `cause`, as a bitset over run indices.
    fn satisfying_set(&self, cause: &Conjunction) -> RunSet {
        if cause.is_empty() {
            return RunSet::full(self.runs.len());
        }
        let mut acc: Option<RunSet> = None;
        let mut pred_mask = RunSet::new();
        for pred in cause.predicates() {
            let domain = self.space.domain(pred.param);
            pred_mask.clear();
            let base = self.offsets[pred.param.index()] as usize;
            for idx in pred.allowed_indices(domain) {
                pred_mask.or_assign(&self.value_bits[base + idx]);
            }
            match &mut acc {
                None => acc = Some(pred_mask.clone()),
                Some(a) => a.and_assign(&pred_mask),
            }
            if acc.as_ref().is_some_and(RunSet::is_empty) {
                break;
            }
        }
        let mut set = acc.unwrap_or_default();
        // Unencodable runs never appear in `value_bits`; interpret them.
        for &i in &self.overflow {
            if cause.satisfied_by(&self.runs[i as usize].instance) {
                set.insert(i as usize);
            }
        }
        set
    }

    /// A history pre-seeded with given runs (the paper's "previously run
    /// instances"). Panics on conflicting duplicate evaluations.
    pub fn with_runs(space: Arc<ParamSpace>, runs: impl IntoIterator<Item = Run>) -> Self {
        let mut store = ProvenanceStore::new(space);
        for run in runs {
            store.record(run.instance, run.eval);
        }
        store
    }

    /// The parameter space.
    pub fn space(&self) -> &Arc<ParamSpace> {
        &self.space
    }

    /// Records an execution. Returns `true` if the instance was new. A
    /// duplicate with the same outcome is a silent no-op; a duplicate with a
    /// *different* outcome panics — it violates Def. 2's determinism and would
    /// silently corrupt every downstream guarantee.
    ///
    /// The map key is the instance's dense encoding (4 bytes per parameter),
    /// not a clone of the instance; the bitset index is updated in the same
    /// pass.
    pub fn record(&mut self, mut instance: Instance, eval: EvalResult) -> bool {
        let key = self.key_of(&instance);
        let fp = match (&key, instance.dense_fingerprint()) {
            (Some(_), Some(fp)) => fp,
            (Some(k), None) => hash_dense_key(k),
            (None, _) => 0,
        };
        let existing = match &key {
            Some(k) => self.by_key.get(fp, k.as_ref()),
            None => self.overflow_find(&instance),
        };
        if let Some(i) = existing {
            assert_eq!(
                self.runs[i].eval.outcome,
                eval.outcome,
                "non-deterministic evaluation for instance {}",
                instance.display(&self.space)
            );
            return false;
        }
        let idx = self.runs.len();
        match key {
            Some(k) => {
                for (p, &vi) in k.iter().enumerate() {
                    self.value_bits[self.offsets[p] as usize + vi as usize].insert(idx);
                }
                if instance.dense_key().is_none() {
                    instance.set_dense(k.clone());
                }
                self.by_key.insert(fp, idx as u32, &k);
            }
            None => {
                self.by_key.push_overflow_row(idx as u32);
                self.overflow.push(idx as u32);
            }
        }
        match eval.outcome {
            Outcome::Fail => self.fail_bits.insert(idx),
            Outcome::Succeed => self.succeed_bits.insert(idx),
        }
        self.runs.push(Run { instance, eval });
        true
    }

    /// Number of recorded runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True if no runs are recorded.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// All runs, in recording order.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// The recorded evaluation of an instance, if it was executed.
    ///
    /// When the probe carries its dense key (the common case on the hot
    /// path), this is a single FxHash probe over a few `u32`s.
    pub fn lookup(&self, instance: &Instance) -> Option<&EvalResult> {
        if let Some(k) = instance.dense_key() {
            debug_assert_eq!(
                Some(k),
                self.space.encode(instance).as_deref(),
                "instance carries a dense key inconsistent with this store's space"
            );
            let fp = instance
                .dense_fingerprint()
                .expect("fingerprint accompanies the dense key");
            return self.by_key.get(fp, k).map(|i| &self.runs[i].eval);
        }
        match self.space.encode(instance) {
            Some(k) => self
                .by_key
                .get(hash_dense_key(&k), &k)
                .map(|i| &self.runs[i].eval),
            None => self.overflow_find(instance).map(|i| &self.runs[i].eval),
        }
    }

    /// The recorded outcome of an instance, if it was executed.
    pub fn outcome_of(&self, instance: &Instance) -> Option<Outcome> {
        self.lookup(instance).map(|e| e.outcome)
    }

    /// Iterates over failing instances (in recording order).
    pub fn failing(&self) -> impl Iterator<Item = &Instance> {
        self.fail_bits.ones().map(|i| &self.runs[i].instance)
    }

    /// Iterates over succeeding instances (in recording order).
    pub fn succeeding(&self) -> impl Iterator<Item = &Instance> {
        self.succeed_bits.ones().map(|i| &self.runs[i].instance)
    }

    /// Number of failing runs (one popcount pass; no iteration).
    pub fn num_failing(&self) -> usize {
        self.fail_bits.count()
    }

    /// Number of succeeding runs (one popcount pass; no iteration).
    pub fn num_succeeding(&self) -> usize {
        self.succeed_bits.count()
    }

    /// The first failing instance, if any — the `CP_f` Stacked Shortcut picks
    /// from the history (Algorithm 2).
    pub fn first_failing(&self) -> Option<&Instance> {
        self.failing().next()
    }

    /// Succeeding instances disjoint from `from` (Def. 6), in recording order.
    pub fn disjoint_successes<'a>(
        &'a self,
        from: &'a Instance,
    ) -> impl Iterator<Item = &'a Instance> + 'a {
        self.succeeding().filter(move |g| g.is_disjoint_from(from))
    }

    /// Greedily selects up to `k` succeeding instances that are disjoint from
    /// `from` and mutually disjoint — the `CP_G` set of Algorithm 2. If fewer
    /// than `k` mutually disjoint successes exist, the result is shorter
    /// ("mutually disjoint if possible").
    pub fn mutually_disjoint_successes<'s>(
        &'s self,
        from: &Instance,
        k: usize,
    ) -> Vec<&'s Instance> {
        let mut picked: Vec<&'s Instance> = Vec::new();
        for run in &self.runs {
            if picked.len() == k {
                break;
            }
            let g = &run.instance;
            if run.outcome().is_succeed()
                && g.is_disjoint_from(from)
                && picked.iter().all(|p| p.is_disjoint_from(g))
            {
                picked.push(g);
            }
        }
        picked
    }

    /// The succeeding instance most different from `from` (maximum Hamming
    /// distance) — the heuristic fallback when the Disjointness Condition
    /// fails (paper §4.1: "take an instance that differs in as many
    /// parameter-values as possible"). Ties break to the earliest run.
    pub fn most_different_success(&self, from: &Instance) -> Option<&Instance> {
        let mut best: Option<(usize, &Instance)> = None;
        // Recording order + strict improvement ⇒ the earliest run wins ties.
        for g in self.succeeding() {
            let d = g.hamming_distance(from);
            if best.is_none_or(|(bd, _)| d > bd) {
                best = Some((d, g));
            }
        }
        best.map(|(_, g)| g)
    }

    /// The Shortcut sanity check (Algorithm 1, final loop): is there a
    /// *succeeding* run whose parameter-values are a superset of the
    /// hypothetical root cause `D`? If so, `D` is not definitive.
    /// One bitset intersection over the log.
    pub fn succeeding_superset_exists(&self, cause: &Conjunction) -> bool {
        self.satisfying_set(cause).intersects(&self.succeed_bits)
    }

    /// Instances in the history satisfying a conjunction, with outcomes —
    /// driven by the bitset index, yielded in recording order.
    pub fn satisfying_runs<'a>(
        &'a self,
        cause: &'a Conjunction,
    ) -> impl Iterator<Item = &'a Run> + 'a {
        self.satisfying_set(cause)
            .ones()
            .map(|i| &self.runs[i])
            .collect::<Vec<_>>()
            .into_iter()
    }

    /// Counts `(failing, succeeding)` runs satisfying a conjunction: an
    /// AND + popcount over the bitset index instead of a log scan.
    pub fn support(&self, cause: &Conjunction) -> (usize, usize) {
        let sat = self.satisfying_set(cause);
        (
            sat.intersection_count(&self.fail_bits),
            sat.intersection_count(&self.succeed_bits),
        )
    }

    /// Parses a history from the TSV layout produced by [`Self::to_tsv`]
    /// (parameter columns in space order, then `score`, then `evaluation`).
    /// Values are matched against the parameter domains by their display
    /// form; `score` is a float or `-`.
    pub fn from_tsv(space: Arc<ParamSpace>, text: &str) -> Result<Self, TsvError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(TsvError::Empty)?;
        let cols: Vec<&str> = header.split('\t').collect();
        let expected: Vec<String> = space
            .iter()
            .map(|(_, d)| d.name().to_string())
            .chain(["score".to_string(), "evaluation".to_string()])
            .collect();
        if cols != expected.iter().map(String::as_str).collect::<Vec<_>>() {
            return Err(TsvError::Header {
                expected: expected.join("\t"),
                found: header.to_string(),
            });
        }

        let mut store = ProvenanceStore::new(space.clone());
        for (line_no, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let cells: Vec<&str> = line.split('\t').collect();
            if cells.len() != space.len() + 2 {
                return Err(TsvError::Arity {
                    line: line_no + 1,
                    expected: space.len() + 2,
                    found: cells.len(),
                });
            }
            let mut indices = Vec::with_capacity(space.len());
            for (p, cell) in space.ids().zip(cells.iter()) {
                let domain = space.domain(p);
                let idx = domain
                    .values()
                    .iter()
                    .position(|v| v.to_string() == *cell)
                    .ok_or_else(|| TsvError::Value {
                        line: line_no + 1,
                        param: space.param(p).name().to_string(),
                        cell: cell.to_string(),
                    })?;
                indices.push(idx as u32);
            }
            let score = match cells[space.len()] {
                "-" => None,
                s => Some(s.parse::<f64>().map_err(|_| TsvError::Score {
                    line: line_no + 1,
                    cell: s.to_string(),
                })?),
            };
            let outcome = match cells[space.len() + 1] {
                "succeed" => Outcome::Succeed,
                "fail" => Outcome::Fail,
                other => {
                    return Err(TsvError::Evaluation {
                        line: line_no + 1,
                        cell: other.to_string(),
                    })
                }
            };
            store.record(
                space.instance_from_indices(&indices),
                EvalResult { outcome, score },
            );
        }
        Ok(store)
    }

    /// Serializes the history as a TSV table (header + one row per run):
    /// parameter columns, then `score`, then `evaluation` — the layout of the
    /// paper's Tables 1 and 2.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for (i, (_, def)) in self.space.iter().enumerate() {
            if i > 0 {
                out.push('\t');
            }
            out.push_str(def.name());
        }
        out.push_str("\tscore\tevaluation\n");
        for run in &self.runs {
            for (i, v) in run.instance.values().iter().enumerate() {
                if i > 0 {
                    out.push('\t');
                }
                let _ = write!(out, "{v}");
            }
            match run.eval.score {
                Some(s) => {
                    let _ = write!(out, "\t{s}");
                }
                None => out.push_str("\t-"),
            }
            let _ = writeln!(out, "\t{}", run.outcome());
        }
        out
    }
}

/// Why a provenance TSV could not be parsed; see [`ProvenanceStore::from_tsv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsvError {
    /// No header line.
    Empty,
    /// The header does not match the space's layout.
    Header {
        /// The layout the space requires.
        expected: String,
        /// The header found.
        found: String,
    },
    /// A row has the wrong number of cells.
    Arity {
        /// 1-based line number.
        line: usize,
        /// Expected cell count.
        expected: usize,
        /// Found cell count.
        found: usize,
    },
    /// A cell is not a value of its parameter's universe.
    Value {
        /// 1-based line number.
        line: usize,
        /// Parameter name.
        param: String,
        /// The offending cell.
        cell: String,
    },
    /// The score cell is neither a float nor `-`.
    Score {
        /// 1-based line number.
        line: usize,
        /// The offending cell.
        cell: String,
    },
    /// The evaluation cell is neither `succeed` nor `fail`.
    Evaluation {
        /// 1-based line number.
        line: usize,
        /// The offending cell.
        cell: String,
    },
}

impl std::fmt::Display for TsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsvError::Empty => write!(f, "empty provenance TSV"),
            TsvError::Header { expected, found } => {
                write!(f, "header mismatch: expected {expected:?}, found {found:?}")
            }
            TsvError::Arity {
                line,
                expected,
                found,
            } => write!(f, "line {line}: expected {expected} cells, found {found}"),
            TsvError::Value { line, param, cell } => write!(
                f,
                "line {line}: {cell:?} is not in the universe of parameter {param:?}"
            ),
            TsvError::Score { line, cell } => {
                write!(f, "line {line}: score {cell:?} is not a number or '-'")
            }
            TsvError::Evaluation { line, cell } => write!(
                f,
                "line {line}: evaluation {cell:?} must be 'succeed' or 'fail'"
            ),
        }
    }
}

impl std::error::Error for TsvError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::value::Value;

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .categorical("Dataset", ["Iris", "Digits", "Images"])
            .categorical("Estimator", ["LR", "DT", "GB"])
            .ordinal("Version", [1, 2])
            .build()
    }

    fn inst(s: &ParamSpace, d: &str, e: &str, v: i64) -> Instance {
        Instance::from_pairs(
            s,
            [
                ("Dataset", d.into()),
                ("Estimator", e.into()),
                ("Version", v.into()),
            ],
        )
    }

    /// The paper's Table 1 history.
    fn table1(s: &Arc<ParamSpace>) -> ProvenanceStore {
        ProvenanceStore::with_runs(
            s.clone(),
            [
                Run {
                    instance: inst(s, "Iris", "LR", 1),
                    eval: EvalResult::from_score_at_least(0.9, 0.6),
                },
                Run {
                    instance: inst(s, "Digits", "DT", 1),
                    eval: EvalResult::from_score_at_least(0.8, 0.6),
                },
                Run {
                    instance: inst(s, "Iris", "GB", 2),
                    eval: EvalResult::from_score_at_least(0.2, 0.6),
                },
            ],
        )
    }

    #[test]
    fn record_dedups_and_counts() {
        let s = space();
        let mut p = table1(&s);
        assert_eq!(p.len(), 3);
        // Re-recording the same instance/outcome is a no-op.
        assert!(!p.record(
            inst(&s, "Iris", "LR", 1),
            EvalResult::from_score_at_least(0.9, 0.6)
        ));
        assert_eq!(p.len(), 3);
        assert!(p.record(inst(&s, "Images", "GB", 1), Outcome::Succeed.into()));
        assert_eq!(p.len(), 4);
    }

    #[test]
    #[should_panic(expected = "non-deterministic evaluation")]
    fn conflicting_duplicate_panics() {
        let s = space();
        let mut p = table1(&s);
        p.record(inst(&s, "Iris", "LR", 1), Outcome::Fail.into());
    }

    #[test]
    fn failing_and_succeeding_queries() {
        let s = space();
        let p = table1(&s);
        assert_eq!(p.failing().count(), 1);
        assert_eq!(p.succeeding().count(), 2);
        assert_eq!(p.first_failing().unwrap(), &inst(&s, "Iris", "GB", 2));
        assert_eq!(p.outcome_of(&inst(&s, "Iris", "GB", 2)), Some(Outcome::Fail));
        assert_eq!(p.outcome_of(&inst(&s, "Images", "LR", 1)), None);
    }

    #[test]
    fn disjoint_successes_match_paper_example() {
        // Paper §4.1 Example 1: the only disjoint success w.r.t. CP_f
        // (Iris, GB, 2.0) is (Digits, DT, 1.0).
        let s = space();
        let p = table1(&s);
        let cpf = inst(&s, "Iris", "GB", 2);
        let disjoint: Vec<_> = p.disjoint_successes(&cpf).collect();
        assert_eq!(disjoint, vec![&inst(&s, "Digits", "DT", 1)]);
    }

    #[test]
    fn mutually_disjoint_selection() {
        let s = space();
        let mut p = table1(&s);
        // Add a second success disjoint from CP_f but NOT from (Digits,DT,1).
        p.record(inst(&s, "Digits", "LR", 1), Outcome::Succeed.into());
        // And one mutually disjoint from both.
        p.record(inst(&s, "Images", "DT", 1), Outcome::Succeed.into());
        let cpf = inst(&s, "Iris", "GB", 2);
        let picked = p.mutually_disjoint_successes(&cpf, 4);
        assert_eq!(picked.len(), 1, "Version=1 is shared, so only one pick");
        // With a distinct version the third is mutually disjoint... build one:
        // (Images, LR, 1) shares Version with all; the space only has 2
        // versions so mutual disjointness caps at 2 successes (versions 1,2).
        assert!(picked[0].is_disjoint_from(&cpf));
    }

    #[test]
    fn most_different_fallback() {
        let s = space();
        let mut p = ProvenanceStore::new(s.clone());
        let cpf = inst(&s, "Iris", "GB", 2);
        p.record(inst(&s, "Iris", "LR", 2), Outcome::Succeed.into()); // distance 1
        p.record(inst(&s, "Iris", "DT", 1), Outcome::Succeed.into()); // distance 2
        assert_eq!(
            p.most_different_success(&cpf).unwrap(),
            &inst(&s, "Iris", "DT", 1)
        );
        // Tie at distance 2 breaks to the earliest run.
        p.record(inst(&s, "Iris", "LR", 1), Outcome::Succeed.into()); // distance 2
        assert_eq!(
            p.most_different_success(&cpf).unwrap(),
            &inst(&s, "Iris", "DT", 1)
        );
    }

    #[test]
    fn succeeding_superset_check() {
        let s = space();
        let p = table1(&s);
        let version = s.by_name("Version").unwrap();
        // D = {Version = 1}: (Iris,LR,1) succeeded and contains it.
        let d1 = Conjunction::new(vec![Predicate::eq(version, 1)]);
        assert!(p.succeeding_superset_exists(&d1));
        // D = {Version = 2}: the only run with version 2 failed.
        let d2 = Conjunction::new(vec![Predicate::eq(version, 2)]);
        assert!(!p.succeeding_superset_exists(&d2));
    }

    #[test]
    fn support_counts() {
        let s = space();
        let p = table1(&s);
        let ds = s.by_name("Dataset").unwrap();
        let c = Conjunction::new(vec![Predicate::eq(ds, Value::from("Iris"))]);
        assert_eq!(p.support(&c), (1, 1));
        assert_eq!(p.support(&Conjunction::top()), (1, 2));
    }

    #[test]
    fn tsv_layout() {
        let s = space();
        let p = table1(&s);
        let tsv = p.to_tsv();
        let mut lines = tsv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "Dataset\tEstimator\tVersion\tscore\tevaluation"
        );
        assert_eq!(lines.next().unwrap(), "Iris\tLR\t1\t0.9\tsucceed");
        assert_eq!(tsv.lines().count(), 4);
    }
}

#[cfg(test)]
mod tsv_tests {
    use super::*;
    use crate::value::Value;

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .categorical("Dataset", ["Iris", "Digits"])
            .ordinal("Version", [1, 2])
            .build()
    }

    #[test]
    fn roundtrip() {
        let s = space();
        let mut prov = ProvenanceStore::new(s.clone());
        prov.record(
            Instance::from_pairs(&s, [("Dataset", "Iris".into()), ("Version", 2.into())]),
            EvalResult::from_score_at_least(0.2, 0.6),
        );
        prov.record(
            Instance::from_pairs(&s, [("Dataset", "Digits".into()), ("Version", 1.into())]),
            EvalResult::of(Outcome::Succeed),
        );
        let parsed = ProvenanceStore::from_tsv(s.clone(), &prov.to_tsv()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.failing().count(), 1);
        let inst = Instance::from_pairs(&s, [("Dataset", "Iris".into()), ("Version", 2.into())]);
        assert_eq!(parsed.lookup(&inst).unwrap().score, Some(0.2));
        // Serializing again reproduces the text.
        assert_eq!(parsed.to_tsv(), prov.to_tsv());
    }

    #[test]
    fn header_mismatch() {
        let s = space();
        let err = ProvenanceStore::from_tsv(s, "A\tB\tscore\tevaluation\n").unwrap_err();
        assert!(matches!(err, TsvError::Header { .. }));
        assert!(err.to_string().contains("header mismatch"));
    }

    #[test]
    fn unknown_value_rejected() {
        let s = space();
        let text = "Dataset\tVersion\tscore\tevaluation\nWine\t1\t-\tsucceed\n";
        let err = ProvenanceStore::from_tsv(s, text).unwrap_err();
        assert!(matches!(err, TsvError::Value { ref param, .. } if param == "Dataset"));
    }

    #[test]
    fn bad_arity_and_score_and_eval() {
        let s = space();
        let base = "Dataset\tVersion\tscore\tevaluation\n";
        assert!(matches!(
            ProvenanceStore::from_tsv(s.clone(), &format!("{base}Iris\t1\tsucceed\n")).unwrap_err(),
            TsvError::Arity { .. }
        ));
        assert!(matches!(
            ProvenanceStore::from_tsv(s.clone(), &format!("{base}Iris\t1\tbad\tsucceed\n"))
                .unwrap_err(),
            TsvError::Score { .. }
        ));
        assert!(matches!(
            ProvenanceStore::from_tsv(s.clone(), &format!("{base}Iris\t1\t-\tmaybe\n"))
                .unwrap_err(),
            TsvError::Evaluation { .. }
        ));
        assert!(matches!(
            ProvenanceStore::from_tsv(s, "").unwrap_err(),
            TsvError::Empty
        ));
    }

    #[test]
    fn blank_lines_skipped() {
        let s = space();
        let text = "Dataset\tVersion\tscore\tevaluation\n\nIris\t1\t-\tsucceed\n\n";
        let parsed = ProvenanceStore::from_tsv(s, text).unwrap();
        assert_eq!(parsed.len(), 1);
        let _ = Value::from(1); // keep the import meaningful
    }
}
