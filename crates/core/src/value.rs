//! Parameter values.
//!
//! BugDoc treats pipelines as black boxes whose manipulable parameters take
//! values from finite universes (paper §3, Def. 1). Values may be ordinal
//! (numbers, versions) or categorical (names, flags); the paper's synthetic
//! generator draws both kinds with probability ½ (§5.1).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A finite, totally ordered floating-point wrapper.
///
/// `f64` is not `Ord`/`Eq`/`Hash` because of NaN; parameter values must be all
/// three so that instances can be deduplicated in the provenance store and
/// ordinal comparators (`≤`, `>`) are well defined. NaN is rejected at
/// construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64(f64);

impl F64 {
    /// Wraps a finite float. Returns `None` for NaN (infinities are allowed:
    /// they are ordered and hash consistently).
    pub fn new(v: f64) -> Option<Self> {
        if v.is_nan() {
            None
        } else {
            // Normalize -0.0 to 0.0 so that `==` agrees with `hash`.
            Some(F64(if v == 0.0 { 0.0 } else { v }))
        }
    }

    /// The wrapped float.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for F64 {}

impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Hash for F64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A single parameter value.
///
/// Values are cheap to clone: strings are reference-counted, everything else
/// is `Copy`-sized. The ordering is total — values of different variants are
/// ordered by variant tag — but well-formed pipelines only compare values
/// drawn from the same parameter domain, which are homogeneous.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// Boolean flag (e.g., `use_alpha`).
    Bool(bool),
    /// Integer-valued ordinal (e.g., `n_steps`).
    Int(i64),
    /// Real-valued ordinal (e.g., a learning rate).
    Float(F64),
    /// Categorical label (e.g., an estimator name).
    Str(Arc<str>),
}

impl Value {
    /// Constructs a float value, panicking on NaN. Use [`F64::new`] directly
    /// to handle NaN without panicking.
    pub fn float(v: f64) -> Self {
        Value::Float(F64::new(v).expect("parameter values must not be NaN"))
    }

    /// Constructs a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True if this value is numeric (`Int` or `Float`) or boolean — i.e.,
    /// naturally ordered.
    pub fn is_ordinal_kind(&self) -> bool {
        !matches!(self, Value::Str(_))
    }

    /// Numeric view of the value, if it has one. Used by surrogate models
    /// (random forests) that need a coordinate embedding.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(f.get()),
            Value::Str(_) => None,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            // Mixed Int/Float compare numerically so ordinal domains may mix
            // integer and real literals.
            (Int(a), Float(b)) => F64::new(*a as f64).unwrap().cmp(b),
            (Float(a), Int(b)) => a.cmp(&F64::new(*b as f64).unwrap()),
            // Remaining cross-variant pairs: order by variant tag.
            (a, b) => tag(a).cmp(&tag(b)),
        }
    }
}

fn tag(v: &Value) -> u8 {
    match v {
        Value::Bool(_) => 0,
        Value::Int(_) => 1,
        Value::Float(_) => 2,
        Value::Str(_) => 3,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn f64_rejects_nan() {
        assert!(F64::new(f64::NAN).is_none());
        assert!(F64::new(1.5).is_some());
        assert!(F64::new(f64::INFINITY).is_some());
    }

    #[test]
    fn f64_negative_zero_normalized() {
        let a = F64::new(0.0).unwrap();
        let b = F64::new(-0.0).unwrap();
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn f64_total_order() {
        let mut v = vec![
            F64::new(f64::INFINITY).unwrap(),
            F64::new(-1.0).unwrap(),
            F64::new(0.0).unwrap(),
            F64::new(f64::NEG_INFINITY).unwrap(),
        ];
        v.sort();
        assert_eq!(
            v.iter().map(|x| x.get()).collect::<Vec<_>>(),
            vec![f64::NEG_INFINITY, -1.0, 0.0, f64::INFINITY]
        );
    }

    #[test]
    fn value_ordering_same_variant() {
        assert!(Value::from(1) < Value::from(2));
        assert!(Value::from("a") < Value::from("b"));
        assert!(Value::from(false) < Value::from(true));
        assert!(Value::from(1.5) < Value::from(2.5));
    }

    #[test]
    fn value_int_float_compare_numerically() {
        assert!(Value::from(1) < Value::from(1.5));
        assert!(Value::from(2.5) > Value::from(2));
        assert_eq!(Value::from(2).cmp(&Value::from(2.0)), Ordering::Equal);
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::from("Iris").to_string(), "Iris");
        assert_eq!(Value::from(3).to_string(), "3");
        assert_eq!(Value::from(true).to_string(), "true");
        assert_eq!(Value::float(0.25).to_string(), "0.25");
    }

    #[test]
    fn value_as_f64() {
        assert_eq!(Value::from(3).as_f64(), Some(3.0));
        assert_eq!(Value::from(true).as_f64(), Some(1.0));
        assert_eq!(Value::from(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::from("x").as_f64(), None);
    }

    #[test]
    fn string_values_share_storage_on_clone() {
        let a = Value::str("gradient boosting");
        let b = a.clone();
        if let (Value::Str(x), Value::Str(y)) = (&a, &b) {
            assert!(Arc::ptr_eq(x, y));
        } else {
            unreachable!()
        }
    }
}
