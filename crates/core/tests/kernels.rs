//! Differential suite for the chunked word kernels: every fused /
//! multi-word primitive in [`bugdoc_core::kernels`] against a naive
//! one-word-at-a-time reference, on ragged operand lengths.
//!
//! The kernels are the substrate of every provenance query, and they earn
//! their speed from chunked loops with separate remainder handling — exactly
//! the structure where an off-by-one at a chunk boundary silently corrupts
//! only the last few words. The property tests drive random lengths and
//! contents; the deterministic sweep pins the boundary lengths (0, 1, 63,
//! 64, 65, one-word-short-of-a-chunk, one-past) crosswise for both operands.

use bugdoc_core::kernels;
use proptest::prelude::*;

/// Deterministic word fill (xorshift64), biased so roughly half the words
/// are all-zeros or all-ones — the patterns the early-exit predicates
/// (`is_zero`, `and_any`, `and_not_any`) branch on.
fn words(seed: u64, len: usize) -> Vec<u64> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            match x % 4 {
                0 => 0,
                1 => u64::MAX,
                _ => x,
            }
        })
        .collect()
}

// The scalar references: the semantics the chunked kernels must reproduce,
// written with no chunking at all.

fn ref_or(dst: &[u64], src: &[u64]) -> Vec<u64> {
    let mut out = dst.to_vec();
    for (d, s) in out.iter_mut().zip(src) {
        *d |= s;
    }
    out
}

fn ref_and(dst: &[u64], src: &[u64]) -> Vec<u64> {
    let mut out = dst.to_vec();
    for (d, s) in out.iter_mut().zip(src) {
        *d &= s;
    }
    out // tail beyond src untouched, by the kernel contract
}

fn ref_popcount(a: &[u64]) -> usize {
    a.iter().map(|w| w.count_ones() as usize).sum()
}

fn ref_and_popcount(a: &[u64], b: &[u64]) -> usize {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x & y).count_ones() as usize)
        .sum()
}

fn ref_and_any(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).any(|(x, y)| x & y != 0)
}

fn ref_and_not_any(a: &[u64], b: &[u64]) -> bool {
    (0..a.len()).any(|i| a[i] & !b.get(i).copied().unwrap_or(0) != 0)
}

fn ref_or_multi(len: usize, srcs: &[&[u64]]) -> Vec<u64> {
    (0..len)
        .map(|i| srcs.iter().fold(0u64, |m, s| m | s[i]))
        .collect()
}

/// Union of a term list — plain sources whole, difference pairs as
/// `hi & !lo` — the operand shape of the prefix-row term kernels.
fn ref_terms_union(len: usize, full: &[&[u64]], diff: &[(&[u64], &[u64])]) -> Vec<u64> {
    (0..len)
        .map(|i| {
            let f = full.iter().fold(0u64, |m, s| m | s[i]);
            diff.iter().fold(f, |m, (hi, lo)| m | (hi[i] & !lo[i]))
        })
        .collect()
}

/// Checks every kernel against its reference on one `(a, b)` operand pair.
fn check_pair(a: &[u64], b: &[u64]) {
    let ctx = format!("lengths {}x{}", a.len(), b.len());

    let mut d = a.to_vec();
    kernels::or_into(&mut d, b);
    assert_eq!(d, ref_or(a, b), "or_into {ctx}");

    let mut d = a.to_vec();
    kernels::and_into(&mut d, b);
    assert_eq!(d, ref_and(a, b), "and_into {ctx}");

    assert_eq!(kernels::popcount(a), ref_popcount(a), "popcount {ctx}");
    assert_eq!(
        kernels::and_popcount(a, b),
        ref_and_popcount(a, b),
        "and_popcount {ctx}"
    );
    assert_eq!(kernels::is_zero(a), ref_popcount(a) == 0, "is_zero {ctx}");
    assert_eq!(kernels::and_any(a, b), ref_and_any(a, b), "and_any {ctx}");
    assert_eq!(
        kernels::and_not_any(a, b),
        ref_and_not_any(a, b),
        "and_not_any {ctx}"
    );
    // The asymmetric kernels, with the operands swapped too.
    let mut d = b.to_vec();
    kernels::or_into(&mut d, a);
    assert_eq!(d, ref_or(b, a), "or_into swapped {ctx}");
    assert_eq!(
        kernels::and_not_any(b, a),
        ref_and_not_any(b, a),
        "and_not_any swapped {ctx}"
    );
}

/// Checks the multi-source fused kernels on `n_srcs` sources over `len`
/// destination words; sources are longer than the destination on purpose
/// (the frozen-epoch rows are exactly `epoch_words`, but the kernels only
/// require ≥).
fn check_multi(seed: u64, len: usize, n_srcs: usize) {
    let ctx = format!("len {len} x {n_srcs} srcs");
    let owned: Vec<Vec<u64>> = (0..n_srcs)
        .map(|k| words(seed ^ (k as u64).wrapping_mul(0x9e37), len + (k % 3)))
        .collect();
    let srcs: Vec<&[u64]> = owned.iter().map(Vec::as_slice).collect();
    let acc0 = words(seed ^ 0xacc0, len);
    let union = ref_or_multi(len, &srcs);

    let mut dst = words(seed ^ 0xd57, len); // overwritten: contents must not matter
    kernels::or_multi_into(&mut dst, &srcs);
    assert_eq!(dst, union, "or_multi_into {ctx}");

    let mut acc = acc0.clone();
    kernels::and_or_multi_into(&mut acc, &srcs);
    assert_eq!(acc, ref_and(&acc0, &union), "and_or_multi_into {ctx}");

    assert_eq!(
        kernels::and_or_popcount(&acc0, &srcs),
        ref_and_popcount(&acc0, &union),
        "and_or_popcount {ctx}"
    );
}

/// Checks the term kernels (prefix-row unions of plain sources and
/// `hi & !lo` difference pairs) on `n_full` + `n_diff` terms over `len`
/// destination words; sources again deliberately longer than the
/// destination.
fn check_terms(seed: u64, len: usize, n_full: usize, n_diff: usize) {
    let ctx = format!("len {len} x {n_full} full + {n_diff} diff");
    let full_owned: Vec<Vec<u64>> = (0..n_full)
        .map(|k| words(seed ^ (k as u64).wrapping_mul(0x51ed), len + (k % 3)))
        .collect();
    let diff_owned: Vec<(Vec<u64>, Vec<u64>)> = (0..n_diff)
        .map(|k| {
            let s = seed ^ (k as u64).wrapping_mul(0xd1ff);
            (words(s, len + (k % 2)), words(s ^ 0x10, len + ((k + 1) % 3)))
        })
        .collect();
    let full: Vec<&[u64]> = full_owned.iter().map(Vec::as_slice).collect();
    let diff: Vec<(&[u64], &[u64])> = diff_owned
        .iter()
        .map(|(h, l)| (h.as_slice(), l.as_slice()))
        .collect();
    let union = ref_terms_union(len, &full, &diff);
    let acc0 = words(seed ^ 0x7e45, len);

    let mut dst = words(seed ^ 0xd57, len); // overwritten: contents must not matter
    kernels::or_terms_into(&mut dst, &full, &diff);
    assert_eq!(dst, union, "or_terms_into {ctx}");

    let mut acc = acc0.clone();
    kernels::and_terms_into(&mut acc, &full, &diff);
    assert_eq!(acc, ref_and(&acc0, &union), "and_terms_into {ctx}");

    assert_eq!(
        kernels::and_terms_popcount(&acc0, &full, &diff),
        ref_and_popcount(&acc0, &union),
        "and_terms_popcount {ctx}"
    );
}

/// Chunk-boundary sweep: every pairing of the lengths where the
/// `chunks_exact` / remainder split changes shape.
#[test]
fn boundary_lengths_crosswise() {
    const LENGTHS: [usize; 11] = [0, 1, 3, 4, 5, 7, 8, 63, 64, 65, 129];
    for (i, &la) in LENGTHS.iter().enumerate() {
        for (j, &lb) in LENGTHS.iter().enumerate() {
            let seed = (i * 31 + j) as u64 + 1;
            check_pair(&words(seed, la), &words(seed ^ 0xb0b, lb));
        }
    }
    for &len in &LENGTHS {
        for n_srcs in 0..4 {
            check_multi(len as u64 + 7, len, n_srcs);
        }
        for n_full in 0..3 {
            for n_diff in 0..3 {
                check_terms(len as u64 + 11, len, n_full, n_diff);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random lengths and contents: the two-operand kernels agree with the
    /// scalar reference everywhere, not just at the pinned boundaries.
    #[test]
    fn pairwise_kernels_match_scalar_reference(
        seed in any::<u64>(),
        la in 0usize..170,
        lb in 0usize..170,
    ) {
        check_pair(&words(seed, la), &words(seed ^ 0xfeed, lb));
    }

    /// The fused multi-source kernels agree with OR-then-consume composed
    /// from the scalar references, for any source count (including none).
    #[test]
    fn fused_multi_source_kernels_match_composition(
        seed in any::<u64>(),
        len in 0usize..140,
        n_srcs in 0usize..6,
    ) {
        check_multi(seed, len, n_srcs);
    }

    /// The term kernels agree with union-then-consume composed from the
    /// scalar references, for any mix of plain and difference terms
    /// (including none of either).
    #[test]
    fn term_kernels_match_composition(
        seed in any::<u64>(),
        len in 0usize..140,
        n_full in 0usize..4,
        n_diff in 0usize..4,
    ) {
        check_terms(seed, len, n_full, n_diff);
    }
}
