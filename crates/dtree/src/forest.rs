//! A random-forest regressor over pipeline instances.
//!
//! Substrate for the SMAC baseline (paper §5): SMAC models the response
//! surface with a random forest and uses the per-tree prediction spread as
//! the uncertainty estimate feeding expected improvement (Hutter et al.,
//! LION 2011). Each tree is trained on a bootstrap resample with per-node
//! feature subsampling (√|P| by default).

use crate::tree::{DecisionTree, FeatureSampler, TreeConfig};
use bugdoc_core::{Instance, ParamId, ParamSpace};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Forest configuration.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees. SMAC traditionally uses 10.
    pub n_trees: usize,
    /// Per-node feature subset size (`None` = √|P|, at least 1).
    pub features_per_split: Option<usize>,
    /// Depth cap per tree (`None` = grow fully).
    pub max_depth: Option<usize>,
    /// Minimum rows to split.
    pub min_samples_split: usize,
    /// RNG seed (bootstraps and feature subsets are reproducible).
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 10,
            features_per_split: None,
            max_depth: None,
            min_samples_split: 2,
            seed: 0,
        }
    }
}

/// Mean/variance prediction across the forest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Mean of the per-tree predictions.
    pub mean: f64,
    /// Population variance of the per-tree predictions — SMAC's uncertainty.
    pub variance: f64,
}

struct RngSampler<'a> {
    rng: &'a mut StdRng,
}

impl FeatureSampler for RngSampler<'_> {
    fn sample(&mut self, all: &[ParamId], k: usize) -> Vec<ParamId> {
        let mut pool = all.to_vec();
        pool.shuffle(self.rng);
        pool.truncate(k.clamp(1, all.len()));
        // Keep candidate order stable so trees differ only through the
        // sampled subset, not its ordering.
        pool.sort();
        pool
    }
}

/// A bootstrap-aggregated ensemble of regression trees.
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Fits a forest on `(instance, label)` rows.
    pub fn fit(space: &ParamSpace, rows: &[(Instance, f64)], config: &ForestConfig) -> Self {
        assert!(!rows.is_empty(), "cannot fit a forest on zero rows");
        assert!(config.n_trees > 0, "forest needs at least one tree");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let k = config
            .features_per_split
            .unwrap_or_else(|| (space.len() as f64).sqrt().ceil() as usize)
            .clamp(1, space.len().max(1));
        let tree_config = TreeConfig {
            max_depth: config.max_depth,
            min_samples_split: config.min_samples_split,
            feature_subset: Some(k),
        };
        let trees = (0..config.n_trees)
            .map(|_| {
                // Bootstrap resample (with replacement, same size).
                let sample: Vec<(Instance, f64)> = (0..rows.len())
                    .map(|_| rows[rng.gen_range(0..rows.len())].clone())
                    .collect();
                let mut sampler = RngSampler { rng: &mut rng };
                DecisionTree::fit_with_sampler(space, &sample, &tree_config, &mut sampler)
            })
            .collect();
        RandomForest { trees }
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True if the forest has no trees (never: `fit` requires ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Mean/variance prediction for an instance.
    pub fn predict(&self, instance: &Instance) -> Prediction {
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(instance)).collect();
        let n = preds.len() as f64;
        let mean = preds.iter().sum::<f64>() / n;
        let variance = preds.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / n;
        Prediction { mean, variance }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::{ParamSpace, Value};
    use std::sync::Arc;

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .ordinal("a", [1, 2, 3, 4, 5])
            .ordinal("b", [1, 2, 3, 4, 5])
            .categorical("c", ["x", "y", "z"])
            .build()
    }

    fn inst(s: &ParamSpace, a: i64, b: i64, c: &str) -> Instance {
        Instance::from_pairs(
            s,
            [("a", Value::from(a)), ("b", Value::from(b)), ("c", c.into())],
        )
    }

    fn rows(s: &ParamSpace) -> Vec<(Instance, f64)> {
        let mut out = Vec::new();
        for a in 1..=5 {
            for b in 1..=5 {
                for c in ["x", "y", "z"] {
                    // Fail region: a ≥ 4 ∧ c = "x".
                    let y = if a >= 4 && c == "x" { 1.0 } else { 0.0 };
                    out.push((inst(s, a, b, c), y));
                }
            }
        }
        out
    }

    #[test]
    fn forest_learns_fail_region() {
        let s = space();
        let forest = RandomForest::fit(&s, &rows(&s), &ForestConfig::default());
        assert_eq!(forest.len(), 10);
        let hot = forest.predict(&inst(&s, 5, 3, "x"));
        let cold = forest.predict(&inst(&s, 1, 3, "y"));
        assert!(
            hot.mean > cold.mean + 0.5,
            "hot={:.2} cold={:.2}",
            hot.mean,
            cold.mean
        );
    }

    #[test]
    fn forest_is_reproducible_per_seed() {
        let s = space();
        let data = rows(&s);
        let f1 = RandomForest::fit(&s, &data, &ForestConfig::default());
        let f2 = RandomForest::fit(&s, &data, &ForestConfig::default());
        let probe = inst(&s, 4, 2, "x");
        assert_eq!(f1.predict(&probe), f2.predict(&probe));
        let f3 = RandomForest::fit(
            &s,
            &data,
            &ForestConfig {
                seed: 99,
                ..ForestConfig::default()
            },
        );
        // Different seed may produce a different (valid) model; just ensure
        // the call works and stays in range.
        let p = f3.predict(&probe);
        assert!((0.0..=1.0).contains(&p.mean));
    }

    #[test]
    fn variance_reflects_disagreement() {
        let s = space();
        // Tiny, noisy training set: points far from any training data should
        // show nonzero spread across bootstraps more often than points the
        // trees agree on. We only assert variance is finite and non-negative.
        let data: Vec<(Instance, f64)> = (1..=5).map(|a| (inst(&s, a, 1, "x"), a as f64)).collect();
        let forest = RandomForest::fit(&s, &data, &ForestConfig::default());
        let p = forest.predict(&inst(&s, 3, 5, "z"));
        assert!(p.variance >= 0.0 && p.variance.is_finite());
    }

    #[test]
    fn single_tree_forest_works() {
        let s = space();
        let forest = RandomForest::fit(
            &s,
            &rows(&s),
            &ForestConfig {
                n_trees: 1,
                ..ForestConfig::default()
            },
        );
        assert_eq!(forest.len(), 1);
        assert!(!forest.is_empty());
        let p = forest.predict(&inst(&s, 5, 5, "x"));
        assert_eq!(p.variance, 0.0);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_fit_panics() {
        let s = space();
        RandomForest::fit(&s, &[], &ForestConfig::default());
    }
}
