//! # bugdoc-dtree
//!
//! Decision-tree substrates for the BugDoc reproduction:
//!
//! * [`DecisionTree`] — a *full, unpruned* binary tree whose inner nodes are
//!   (Parameter, Comparator, Value) triples, exactly as Debugging Decision
//!   Trees uses it to mine suspect fail-paths (paper §4.2);
//! * [`RandomForest`] — a bootstrap-aggregated regression ensemble, the
//!   surrogate model of the SMAC baseline (paper §5).

#![warn(missing_docs)]

mod forest;
mod tree;

pub use forest::{ForestConfig, Prediction, RandomForest};
pub use tree::{AllFeatures, DecisionTree, FeatureSampler, LeafInfo, Node, Path, TreeConfig};
