//! A full (unpruned) binary decision tree over pipeline instances.
//!
//! "An inner node of the decision tree is a triple (Parameter, Comparator,
//! Value)" (paper §4.2). BugDoc "build[s] a complete decision tree, i.e.,
//! with no pruning", because the tree is not a predictor: it is a device for
//! discovering short paths to pure-`fail` leaves — the *suspects*.
//!
//! The same learner, with a depth cap and per-node feature sampling, serves
//! as the base learner of the random-forest surrogate used by the SMAC
//! baseline (see [`crate::forest`]).

use bugdoc_core::{
    Comparator, Conjunction, DomainKind, Instance, ParamId, ParamSpace, Predicate,
};
use std::fmt::Write as _;

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum tree depth (`None` = grow until pure — the DDT setting).
    pub max_depth: Option<usize>,
    /// Minimum rows required to attempt a split.
    pub min_samples_split: usize,
    /// If set, the number of parameters sampled (without replacement) as
    /// split candidates at each node — the random-forest setting. `None`
    /// considers every parameter (deterministic, the DDT setting).
    pub feature_subset: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: None,
            min_samples_split: 2,
            feature_subset: None,
        }
    }
}

/// Summary of the labels reaching a leaf.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafInfo {
    /// Number of training rows at the leaf.
    pub n: usize,
    /// Mean label. With fail=1/succeed=0 labels this is the failure rate.
    pub mean: f64,
    /// True if all labels at the leaf are identical — a *pure* leaf.
    pub pure: bool,
}

impl LeafInfo {
    /// True if this is a pure-`fail` leaf (all labels 1) — a DDT suspect.
    pub fn is_pure_fail(&self) -> bool {
        self.pure && self.n > 0 && self.mean > 0.5
    }

    /// True if this is a pure-`succeed` leaf (all labels 0).
    pub fn is_pure_succeed(&self) -> bool {
        self.pure && self.n > 0 && self.mean < 0.5
    }
}

/// A tree node.
#[derive(Debug, Clone)]
pub enum Node {
    /// A terminal node.
    Leaf(LeafInfo),
    /// An internal test: instances satisfying `pred` descend into `yes`,
    /// the rest into `no` (where the negated predicate holds).
    Inner {
        /// The (Parameter, Comparator, Value) test.
        pred: Predicate,
        /// Subtree where the test holds.
        yes: Box<Node>,
        /// Subtree where the negated test holds.
        no: Box<Node>,
    },
}

/// A root-to-leaf path: the conjunction of edge predicates plus the leaf
/// summary. Paths to pure-fail leaves are DDT's suspects.
#[derive(Debug, Clone)]
pub struct Path {
    /// The conjunction of predicates along the path (edge-ordered).
    pub conjunction: Conjunction,
    /// The leaf at the end of the path.
    pub leaf: LeafInfo,
}

/// A trained decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
}

/// Source of per-node feature subsets (only used by random forests).
pub trait FeatureSampler {
    /// Chooses the parameters to consider at one node.
    fn sample(&mut self, all: &[ParamId], k: usize) -> Vec<ParamId>;
}

/// Considers all features — the deterministic single-tree setting.
pub struct AllFeatures;

impl FeatureSampler for AllFeatures {
    fn sample(&mut self, all: &[ParamId], _k: usize) -> Vec<ParamId> {
        all.to_vec()
    }
}

impl DecisionTree {
    /// Fits a tree on `(instance, label)` rows. Labels are real-valued; the
    /// split criterion is sum-of-squared-error reduction, which for binary
    /// fail=1/succeed=0 labels coincides (up to a constant) with Gini
    /// impurity, so one criterion serves classification and regression.
    pub fn fit(space: &ParamSpace, rows: &[(Instance, f64)], config: &TreeConfig) -> Self {
        Self::fit_with_sampler(space, rows, config, &mut AllFeatures)
    }

    /// Fits a tree with an explicit feature sampler (used by random forests).
    pub fn fit_with_sampler(
        space: &ParamSpace,
        rows: &[(Instance, f64)],
        config: &TreeConfig,
        sampler: &mut dyn FeatureSampler,
    ) -> Self {
        assert!(!rows.is_empty(), "cannot fit a tree on zero rows");
        let all_params: Vec<ParamId> = space.ids().collect();
        let idx: Vec<usize> = (0..rows.len()).collect();
        let root = grow(space, rows, &idx, config, sampler, &all_params, 0);
        DecisionTree { root }
    }

    /// The root node.
    pub fn root(&self) -> &Node {
        &self.root
    }

    /// Predicted mean label for an instance (failure probability with binary
    /// labels).
    pub fn predict(&self, instance: &Instance) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(info) => return info.mean,
                Node::Inner { pred, yes, no } => {
                    node = if pred.satisfied_by(instance) { yes } else { no };
                }
            }
        }
    }

    /// All root-to-leaf paths, in left-to-right (yes-first) order.
    pub fn paths(&self) -> Vec<Path> {
        let mut out = Vec::new();
        collect_paths(&self.root, &mut Vec::new(), &mut out);
        out
    }

    /// Paths ending in pure-`fail` leaves — the DDT suspects — sorted by
    /// ascending conjunction length (short suspects first, since DDT looks
    /// for *minimal* causes), ties broken by tree order.
    pub fn fail_paths(&self) -> Vec<Path> {
        let mut fails: Vec<Path> = self
            .paths()
            .into_iter()
            .filter(|p| p.leaf.is_pure_fail())
            .collect();
        fails.sort_by_key(|p| p.conjunction.len());
        fails
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf(_) => 1,
                Node::Inner { yes, no, .. } => count(yes) + count(no),
            }
        }
        count(&self.root)
    }

    /// Maximum depth (a lone leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth(node: &Node) -> usize {
            match node {
                Node::Leaf(_) => 0,
                Node::Inner { yes, no, .. } => 1 + depth(yes).max(depth(no)),
            }
        }
        depth(&self.root)
    }

    /// ASCII rendering for debugging and reports.
    pub fn render(&self, space: &ParamSpace) -> String {
        let mut out = String::new();
        fn walk(node: &Node, space: &ParamSpace, indent: usize, out: &mut String) {
            let pad = "  ".repeat(indent);
            match node {
                Node::Leaf(info) => {
                    let _ = writeln!(
                        out,
                        "{pad}leaf n={} mean={:.2}{}",
                        info.n,
                        info.mean,
                        if info.pure { " (pure)" } else { "" }
                    );
                }
                Node::Inner { pred, yes, no } => {
                    let _ = writeln!(out, "{pad}if {}:", pred.display(space));
                    walk(yes, space, indent + 1, out);
                    let _ = writeln!(out, "{pad}else:");
                    walk(no, space, indent + 1, out);
                }
            }
        }
        walk(&self.root, space, 0, &mut out);
        out
    }
}

fn collect_paths(node: &Node, prefix: &mut Vec<Predicate>, out: &mut Vec<Path>) {
    match node {
        Node::Leaf(info) => out.push(Path {
            conjunction: Conjunction::new(prefix.clone()),
            leaf: *info,
        }),
        Node::Inner { pred, yes, no } => {
            prefix.push(pred.clone());
            collect_paths(yes, prefix, out);
            prefix.pop();
            prefix.push(pred.negated());
            collect_paths(no, prefix, out);
            prefix.pop();
        }
    }
}

/// Label statistics for an index set.
struct Stats {
    n: usize,
    sum: f64,
    sum_sq: f64,
}

impl Stats {
    fn of(rows: &[(Instance, f64)], idx: &[usize]) -> Self {
        let mut s = Stats {
            n: idx.len(),
            sum: 0.0,
            sum_sq: 0.0,
        };
        for &i in idx {
            let y = rows[i].1;
            s.sum += y;
            s.sum_sq += y * y;
        }
        s
    }

    fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Sum of squared errors around the mean — the impurity.
    fn sse(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.sum_sq - self.sum * self.sum / self.n as f64).max(0.0)
        }
    }
}

fn is_pure(rows: &[(Instance, f64)], idx: &[usize]) -> bool {
    let first = rows[idx[0]].1;
    idx.iter().all(|&i| (rows[i].1 - first).abs() < 1e-12)
}

fn leaf(rows: &[(Instance, f64)], idx: &[usize]) -> Node {
    let stats = Stats::of(rows, idx);
    Node::Leaf(LeafInfo {
        n: stats.n,
        mean: stats.mean(),
        pure: is_pure(rows, idx),
    })
}

fn grow(
    space: &ParamSpace,
    rows: &[(Instance, f64)],
    idx: &[usize],
    config: &TreeConfig,
    sampler: &mut dyn FeatureSampler,
    all_params: &[ParamId],
    depth: usize,
) -> Node {
    if idx.len() < config.min_samples_split
        || is_pure(rows, idx)
        || config.max_depth.is_some_and(|d| depth >= d)
    {
        return leaf(rows, idx);
    }

    let k = config
        .feature_subset
        .unwrap_or(all_params.len())
        .clamp(1, all_params.len());
    let candidates = sampler.sample(all_params, k);

    match best_split(space, rows, idx, &candidates) {
        None => leaf(rows, idx),
        Some(split) => {
            let (yes_idx, no_idx): (Vec<usize>, Vec<usize>) = idx
                .iter()
                .partition(|&&i| split.satisfied_by(&rows[i].0));
            debug_assert!(!yes_idx.is_empty() && !no_idx.is_empty());
            Node::Inner {
                pred: split,
                yes: Box::new(grow(
                    space, rows, &yes_idx, config, sampler, all_params, depth + 1,
                )),
                no: Box::new(grow(
                    space, rows, &no_idx, config, sampler, all_params, depth + 1,
                )),
            }
        }
    }
}

/// Exhaustive split search: for each candidate parameter, enumerate `= v`
/// tests (categorical) or `≤ v` tests (ordinal) over the values observed at
/// this node, and keep the split with the largest SSE reduction. Ties break
/// deterministically by (gain, parameter id, domain index) so identical
/// inputs grow identical trees.
fn best_split(
    space: &ParamSpace,
    rows: &[(Instance, f64)],
    idx: &[usize],
    candidates: &[ParamId],
) -> Option<Predicate> {
    let parent = Stats::of(rows, idx).sse();
    let mut best: Option<(f64, Predicate)> = None;

    for &p in candidates {
        let domain = space.domain(p);
        // Observed value indices at this node, deduplicated via a mask.
        let mut present = vec![false; domain.len()];
        for &i in idx {
            if let Some(vi) = domain.index_of(rows[i].0.get(p)) {
                present[vi] = true;
            }
        }
        let observed: Vec<usize> = (0..domain.len()).filter(|&v| present[v]).collect();
        if observed.len() < 2 {
            continue; // constant at this node: no split possible
        }

        let tests: Vec<Predicate> = match domain.kind() {
            DomainKind::Categorical => observed
                .iter()
                .map(|&v| Predicate::new(p, Comparator::Eq, domain.value(v).clone()))
                .collect(),
            // For ordinal domains, `≤ v` for every observed value except the
            // largest (which would send everything left).
            DomainKind::Ordinal => observed[..observed.len() - 1]
                .iter()
                .map(|&v| Predicate::new(p, Comparator::Le, domain.value(v).clone()))
                .collect(),
        };

        for test in tests {
            let mut yes = Stats {
                n: 0,
                sum: 0.0,
                sum_sq: 0.0,
            };
            let mut no = Stats {
                n: 0,
                sum: 0.0,
                sum_sq: 0.0,
            };
            for &i in idx {
                let y = rows[i].1;
                let side = if test.satisfied_by(&rows[i].0) {
                    &mut yes
                } else {
                    &mut no
                };
                side.n += 1;
                side.sum += y;
                side.sum_sq += y * y;
            }
            if yes.n == 0 || no.n == 0 {
                continue;
            }
            let gain = parent - yes.sse() - no.sse();
            let better = match &best {
                None => true,
                Some((bg, bp)) => {
                    gain > *bg + 1e-12
                        || ((gain - *bg).abs() <= 1e-12
                            && (test.param, &test.value) < (bp.param, &bp.value))
                }
            };
            if better && gain > -1e-12 {
                best = Some((gain, test));
            }
        }
    }

    // A full tree must separate distinguishable rows even when no split
    // reduces SSE (e.g. XOR patterns): accept zero-gain splits as long as the
    // node is impure, otherwise stop.
    match best {
        Some((gain, pred)) => {
            let impure = !is_pure(rows, idx);
            if gain > 1e-12 || impure {
                Some(pred)
            } else {
                None
            }
        }
        None => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::{Outcome, ParamSpace, Value};
    use std::sync::Arc;

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .ordinal("n", [1, 2, 3, 4, 5])
            .categorical("color", ["red", "green", "blue"])
            .build()
    }

    fn inst(s: &ParamSpace, n: i64, color: &str) -> Instance {
        Instance::from_pairs(s, [("n", Value::from(n)), ("color", color.into())])
    }

    fn label(o: Outcome) -> f64 {
        if o.is_fail() {
            1.0
        } else {
            0.0
        }
    }

    /// Rows failing iff n > 3.
    fn threshold_rows(s: &ParamSpace) -> Vec<(Instance, f64)> {
        let mut rows = Vec::new();
        for n in 1..=5 {
            for color in ["red", "green", "blue"] {
                let fail = n > 3;
                rows.push((
                    inst(s, n, color),
                    label(Outcome::from_check(!fail)),
                ));
            }
        }
        rows
    }

    #[test]
    fn learns_threshold_with_single_split() {
        let s = space();
        let tree = DecisionTree::fit(&s, &threshold_rows(&s), &TreeConfig::default());
        // A single `n ≤ 3` split suffices.
        assert_eq!(tree.depth(), 1);
        assert_eq!(tree.n_leaves(), 2);
        assert_eq!(tree.predict(&inst(&s, 5, "red")), 1.0);
        assert_eq!(tree.predict(&inst(&s, 2, "blue")), 0.0);
    }

    #[test]
    fn fail_paths_extracts_suspect() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let tree = DecisionTree::fit(&s, &threshold_rows(&s), &TreeConfig::default());
        let fails = tree.fail_paths();
        assert_eq!(fails.len(), 1);
        // The suspect is `n > 3` (the negation of the `≤` split).
        let expected = Conjunction::new(vec![Predicate::new(n, Comparator::Gt, 3)]);
        assert_eq!(
            fails[0].conjunction.canonicalize(&s),
            expected.canonicalize(&s)
        );
        assert!(fails[0].leaf.is_pure_fail());
    }

    #[test]
    fn learns_categorical_equality() {
        let s = space();
        let color = s.by_name("color").unwrap();
        let mut rows = Vec::new();
        for nn in 1..=5 {
            for c in ["red", "green", "blue"] {
                let fail = c == "green";
                rows.push((inst(&s, nn, c), label(Outcome::from_check(!fail))));
            }
        }
        let tree = DecisionTree::fit(&s, &rows, &TreeConfig::default());
        let fails = tree.fail_paths();
        assert_eq!(fails.len(), 1);
        let expected = Conjunction::new(vec![Predicate::eq(color, "green")]);
        assert_eq!(
            fails[0].conjunction.canonicalize(&s),
            expected.canonicalize(&s)
        );
    }

    #[test]
    fn learns_conjunction_cause() {
        let s = space();
        // Fail iff n > 3 AND color = red.
        let mut rows = Vec::new();
        for nn in 1..=5 {
            for c in ["red", "green", "blue"] {
                let fail = nn > 3 && c == "red";
                rows.push((inst(&s, nn, c), label(Outcome::from_check(!fail))));
            }
        }
        let tree = DecisionTree::fit(&s, &rows, &TreeConfig::default());
        let fails = tree.fail_paths();
        assert_eq!(fails.len(), 1);
        let canon = fails[0].conjunction.canonicalize(&s);
        // Semantically: n ∈ {4,5} ∧ color = red.
        let n = s.by_name("n").unwrap();
        let color = s.by_name("color").unwrap();
        let expected = Conjunction::new(vec![
            Predicate::new(n, Comparator::Gt, 3),
            Predicate::eq(color, "red"),
        ]);
        assert_eq!(canon, expected.canonicalize(&s));
    }

    #[test]
    fn grows_full_tree_on_xor() {
        // XOR-style labels have zero first-split gain; the full tree must
        // still separate them (no pruning, paper §4.2).
        let s = ParamSpace::builder()
            .ordinal("a", [0, 1])
            .ordinal("b", [0, 1])
            .build();
        let rows: Vec<(Instance, f64)> = [(0, 0, 0.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 0.0)]
            .into_iter()
            .map(|(a, b, y)| {
                (
                    Instance::from_pairs(&s, [("a", a.into()), ("b", b.into())]),
                    y,
                )
            })
            .collect();
        let tree = DecisionTree::fit(&s, &rows, &TreeConfig::default());
        for (i, y) in &rows {
            assert_eq!(tree.predict(i), *y);
        }
        assert_eq!(tree.fail_paths().len(), 2);
    }

    #[test]
    fn paths_partition_the_space() {
        let s = space();
        let tree = DecisionTree::fit(&s, &threshold_rows(&s), &TreeConfig::default());
        let paths = tree.paths();
        // Every instance matches exactly one path.
        for n in 1..=5 {
            for c in ["red", "green", "blue"] {
                let i = inst(&s, n, c);
                let matching = paths
                    .iter()
                    .filter(|p| p.conjunction.satisfied_by(&i))
                    .count();
                assert_eq!(matching, 1, "instance {} on {} paths", i.display(&s), matching);
            }
        }
        // Leaf sizes sum to the training set size.
        let total: usize = paths.iter().map(|p| p.leaf.n).sum();
        assert_eq!(total, 15);
    }

    #[test]
    fn max_depth_caps_growth() {
        let s = space();
        let mut rows = Vec::new();
        for nn in 1..=5 {
            for c in ["red", "green", "blue"] {
                let fail = nn > 3 && c == "red";
                rows.push((inst(&s, nn, c), label(Outcome::from_check(!fail))));
            }
        }
        let tree = DecisionTree::fit(
            &s,
            &rows,
            &TreeConfig {
                max_depth: Some(1),
                ..TreeConfig::default()
            },
        );
        assert!(tree.depth() <= 1);
        // Predictions are means, not necessarily 0/1.
        let p = tree.predict(&inst(&s, 5, "red"));
        assert!(p > 0.0 && p <= 1.0);
    }

    #[test]
    fn deterministic_given_same_rows() {
        let s = space();
        let rows = threshold_rows(&s);
        let t1 = DecisionTree::fit(&s, &rows, &TreeConfig::default());
        let t2 = DecisionTree::fit(&s, &rows, &TreeConfig::default());
        assert_eq!(t1.render(&s), t2.render(&s));
    }

    #[test]
    fn regression_labels_predict_means() {
        let s = space();
        // Labels = n as f64; the full tree memorizes them.
        let rows: Vec<(Instance, f64)> = (1..=5).map(|n| (inst(&s, n, "red"), n as f64)).collect();
        let tree = DecisionTree::fit(&s, &rows, &TreeConfig::default());
        for (i, y) in &rows {
            assert!((tree.predict(i) - y).abs() < 1e-9);
        }
    }

    #[test]
    fn render_contains_split() {
        let s = space();
        let tree = DecisionTree::fit(&s, &threshold_rows(&s), &TreeConfig::default());
        let txt = tree.render(&s);
        assert!(txt.contains("n ≤ 3"), "got:\n{txt}");
        assert!(txt.contains("(pure)"));
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_fit_panics() {
        let s = space();
        DecisionTree::fit(&s, &[], &TreeConfig::default());
    }
}
