//! Property tests for the decision-tree substrate: a *complete* (unpruned)
//! tree must memorize any consistent training set, its paths must partition
//! the space, and pure-fail paths must cover exactly the failing rows.

use bugdoc_core::{Conjunction, Instance, ParamSpace, Value};
use bugdoc_dtree::{DecisionTree, TreeConfig};
use proptest::prelude::*;
use std::sync::Arc;

fn space(shape: &[(usize, bool)]) -> Arc<ParamSpace> {
    let mut builder = ParamSpace::builder();
    for (i, (n, ordinal)) in shape.iter().enumerate() {
        if *ordinal {
            builder = builder.ordinal(format!("p{i}"), (0..*n as i64).collect::<Vec<_>>());
        } else {
            builder = builder.categorical(
                format!("p{i}"),
                (0..*n).map(|v| format!("v{v}")).collect::<Vec<_>>(),
            );
        }
    }
    builder.build()
}

fn arb_shape() -> impl Strategy<Value = Vec<(usize, bool)>> {
    proptest::collection::vec((2usize..=4, any::<bool>()), 2..=3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A full tree memorizes any deterministic labeling of distinct rows.
    #[test]
    fn full_tree_memorizes_training_data(
        shape in arb_shape(),
        label_bits in any::<u64>(),
    ) {
        let space = space(&shape);
        let rows: Vec<(Instance, f64)> = space
            .instances()
            .enumerate()
            .map(|(i, inst)| (inst, if label_bits >> (i % 64) & 1 == 1 { 1.0 } else { 0.0 }))
            .collect();
        let tree = DecisionTree::fit(&space, &rows, &TreeConfig::default());
        for (inst, y) in &rows {
            prop_assert_eq!(tree.predict(inst), *y, "row {}", inst.display(&space));
        }
    }

    /// Tree paths partition the space: every instance matches exactly one
    /// root-to-leaf conjunction, and leaf sizes sum to the training size.
    #[test]
    fn paths_partition_space(
        shape in arb_shape(),
        label_bits in any::<u64>(),
    ) {
        let space = space(&shape);
        let rows: Vec<(Instance, f64)> = space
            .instances()
            .enumerate()
            .map(|(i, inst)| (inst, if label_bits >> (i % 64) & 1 == 1 { 1.0 } else { 0.0 }))
            .collect();
        let tree = DecisionTree::fit(&space, &rows, &TreeConfig::default());
        let paths = tree.paths();
        for inst in space.instances() {
            let matching = paths
                .iter()
                .filter(|p| p.conjunction.satisfied_by(&inst))
                .count();
            prop_assert_eq!(matching, 1);
        }
        let total: usize = paths.iter().map(|p| p.leaf.n).sum();
        prop_assert_eq!(total, rows.len());
    }

    /// Pure-fail paths cover exactly the failing training rows and none of
    /// the succeeding ones.
    #[test]
    fn fail_paths_cover_failures_exactly(
        shape in arb_shape(),
        label_bits in any::<u64>(),
    ) {
        let space = space(&shape);
        let rows: Vec<(Instance, f64)> = space
            .instances()
            .enumerate()
            .map(|(i, inst)| (inst, if label_bits >> (i % 64) & 1 == 1 { 1.0 } else { 0.0 }))
            .collect();
        let tree = DecisionTree::fit(&space, &rows, &TreeConfig::default());
        let fail_paths: Vec<Conjunction> = tree
            .fail_paths()
            .into_iter()
            .map(|p| p.conjunction)
            .collect();
        for (inst, y) in &rows {
            let covered = fail_paths.iter().any(|c| c.satisfied_by(inst));
            prop_assert_eq!(covered, *y == 1.0, "row {}", inst.display(&space));
        }
        // Suspects come sorted by length (shortest-first).
        let lens: Vec<usize> = tree.fail_paths().iter().map(|p| p.conjunction.len()).collect();
        prop_assert!(lens.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Depth caps are honored and capped trees still predict within [0, 1]
    /// for binary labels.
    #[test]
    fn depth_cap_honored(
        shape in arb_shape(),
        label_bits in any::<u64>(),
        depth in 0usize..=2,
    ) {
        let space = space(&shape);
        let rows: Vec<(Instance, f64)> = space
            .instances()
            .enumerate()
            .map(|(i, inst)| (inst, if label_bits >> (i % 64) & 1 == 1 { 1.0 } else { 0.0 }))
            .collect();
        let tree = DecisionTree::fit(
            &space,
            &rows,
            &TreeConfig {
                max_depth: Some(depth),
                ..TreeConfig::default()
            },
        );
        prop_assert!(tree.depth() <= depth);
        for (inst, _) in &rows {
            let p = tree.predict(inst);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }
}

/// Duplicate rows with consistent labels are fine; the tree still memorizes.
#[test]
fn duplicate_rows_consistent() {
    let space = space(&[(3, true), (3, false)]);
    let inst = Instance::new(vec![Value::from(1), Value::from("v0")]);
    let rows = vec![(inst.clone(), 1.0), (inst.clone(), 1.0), (inst.clone(), 1.0)];
    let tree = DecisionTree::fit(&space, &rows, &TreeConfig::default());
    assert_eq!(tree.predict(&inst), 1.0);
    assert_eq!(tree.n_leaves(), 1);
}
