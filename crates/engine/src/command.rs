//! Driving real programs as black-box pipelines.
//!
//! The paper's prototype debugs VisTrails workflows; the equivalent
//! language-independent integration here is a subprocess runner: each
//! instance becomes one invocation of a user command, with parameter values
//! substituted into the argument list (`{param_name}` placeholders) and
//! exported as `BUGDOC_<PARAM_NAME>` environment variables. The evaluation
//! procedure is either the exit code or a score parsed from the last line
//! of stdout and thresholded — "normally, the evaluation procedure will be
//! code that looks at some property of the result" (paper §3, Def. 2).

use crate::pipeline::{Pipeline, PipelineError, SimTime};
use bugdoc_core::{EvalResult, Instance, Outcome, ParamSpace};
use std::process::Command;
use std::sync::Arc;

/// How a command's result is evaluated.
#[derive(Debug, Clone, PartialEq)]
pub enum CommandEval {
    /// Succeed iff the process exits with status 0.
    ExitCode,
    /// Parse the last non-empty stdout line as a score; succeed iff
    /// `score >= threshold`. Nonzero exit or an unparseable score is `fail`.
    StdoutScoreAtLeast(f64),
    /// As above, but succeed iff `score <= threshold` (error metrics).
    StdoutScoreAtMost(f64),
}

/// A pipeline that executes a subprocess per instance.
pub struct CommandPipeline {
    space: Arc<ParamSpace>,
    /// `argv[0]` is the program; later elements may contain `{param}`
    /// placeholders replaced by the instance's values.
    argv: Vec<String>,
    eval: CommandEval,
    name: String,
}

impl CommandPipeline {
    /// Creates a command pipeline. Placeholders are validated against the
    /// space eagerly: an unknown `{param}` is a configuration bug.
    pub fn new(space: Arc<ParamSpace>, argv: Vec<String>, eval: CommandEval) -> Self {
        assert!(!argv.is_empty(), "command must have a program name");
        for arg in &argv {
            for token in placeholder_names(arg) {
                assert!(
                    space.by_name(&token).is_some(),
                    "placeholder {{{token}}} does not name a parameter"
                );
            }
        }
        let name = format!("command:{}", argv[0]);
        CommandPipeline {
            space,
            argv,
            eval,
            name,
        }
    }

    /// The argv with an instance's values substituted.
    pub fn render_argv(&self, instance: &Instance) -> Vec<String> {
        self.argv
            .iter()
            .map(|arg| substitute(arg, &self.space, instance))
            .collect()
    }

    /// The environment variables exported for an instance:
    /// `BUGDOC_<UPPERCASED_PARAM_NAME>` → value.
    pub fn render_env(&self, instance: &Instance) -> Vec<(String, String)> {
        self.space
            .iter()
            .map(|(id, def)| {
                (
                    format!("BUGDOC_{}", sanitize_env(def.name())),
                    instance.get(id).to_string(),
                )
            })
            .collect()
    }
}

fn sanitize_env(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_uppercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Extracts `{name}` placeholder names from a template string.
fn placeholder_names(template: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut rest = template;
    while let Some(open) = rest.find('{') {
        let Some(close_rel) = rest[open + 1..].find('}') else {
            break;
        };
        names.push(rest[open + 1..open + 1 + close_rel].to_string());
        rest = &rest[open + 1 + close_rel + 1..];
    }
    names
}

fn substitute(template: &str, space: &ParamSpace, instance: &Instance) -> String {
    let mut out = template.to_string();
    for (id, def) in space.iter() {
        let needle = format!("{{{}}}", def.name());
        if out.contains(&needle) {
            out = out.replace(&needle, &instance.get(id).to_string());
        }
    }
    out
}

impl Pipeline for CommandPipeline {
    fn space(&self) -> &Arc<ParamSpace> {
        &self.space
    }

    fn execute(&self, instance: &Instance) -> Result<EvalResult, PipelineError> {
        let argv = self.render_argv(instance);
        let mut cmd = Command::new(&argv[0]);
        cmd.args(&argv[1..]);
        for (k, v) in self.render_env(instance) {
            cmd.env(k, v);
        }
        let output = cmd.output().map_err(|_| PipelineError::Unavailable)?;

        match &self.eval {
            CommandEval::ExitCode => Ok(EvalResult::of(Outcome::from_check(
                output.status.success(),
            ))),
            CommandEval::StdoutScoreAtLeast(threshold) => {
                if !output.status.success() {
                    return Ok(EvalResult::of(Outcome::Fail));
                }
                match parse_score(&output.stdout) {
                    Some(score) => Ok(EvalResult::from_score_at_least(score, *threshold)),
                    None => Ok(EvalResult::of(Outcome::Fail)),
                }
            }
            CommandEval::StdoutScoreAtMost(threshold) => {
                if !output.status.success() {
                    return Ok(EvalResult::of(Outcome::Fail));
                }
                match parse_score(&output.stdout) {
                    Some(score) => Ok(EvalResult::from_score_at_most(score, *threshold)),
                    None => Ok(EvalResult::of(Outcome::Fail)),
                }
            }
        }
    }

    fn cost(&self, _instance: &Instance) -> SimTime {
        SimTime::from_secs(1.0)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

fn parse_score(stdout: &[u8]) -> Option<f64> {
    let text = String::from_utf8_lossy(stdout);
    text.lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .and_then(|l| l.trim().parse::<f64>().ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::{ParamSpace, Value};

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .ordinal("x", [1, 2, 3])
            .categorical("mode", ["fast", "slow"])
            .build()
    }

    fn inst(s: &ParamSpace, x: i64, mode: &str) -> Instance {
        Instance::from_pairs(s, [("x", Value::from(x)), ("mode", mode.into())])
    }

    #[test]
    fn placeholder_extraction_and_substitution() {
        assert_eq!(placeholder_names("--x={x} {mode}"), vec!["x", "mode"]);
        assert_eq!(placeholder_names("no placeholders"), Vec::<String>::new());
        let s = space();
        let p = CommandPipeline::new(
            s.clone(),
            vec!["prog".into(), "--x={x}".into(), "{mode}".into()],
            CommandEval::ExitCode,
        );
        assert_eq!(
            p.render_argv(&inst(&s, 2, "fast")),
            vec!["prog", "--x=2", "fast"]
        );
    }

    #[test]
    #[should_panic(expected = "does not name a parameter")]
    fn unknown_placeholder_rejected() {
        CommandPipeline::new(
            space(),
            vec!["prog".into(), "{nope}".into()],
            CommandEval::ExitCode,
        );
    }

    #[test]
    fn env_rendering() {
        let s = space();
        let p = CommandPipeline::new(s.clone(), vec!["prog".into()], CommandEval::ExitCode);
        let env = p.render_env(&inst(&s, 3, "slow"));
        assert!(env.contains(&("BUGDOC_X".into(), "3".into())));
        assert!(env.contains(&("BUGDOC_MODE".into(), "slow".into())));
    }

    #[test]
    fn exit_code_evaluation_via_sh() {
        // Fails iff x = 3 (the shell reads the exported env var).
        let s = space();
        let p = CommandPipeline::new(
            s.clone(),
            vec![
                "/bin/sh".into(),
                "-c".into(),
                "[ \"$BUGDOC_X\" != 3 ]".into(),
            ],
            CommandEval::ExitCode,
        );
        assert!(p.execute(&inst(&s, 1, "fast")).unwrap().outcome.is_succeed());
        assert!(p.execute(&inst(&s, 3, "fast")).unwrap().outcome.is_fail());
    }

    #[test]
    fn stdout_score_evaluation_via_sh() {
        // Prints 0.9 for mode=fast, 0.2 otherwise; threshold 0.6.
        let s = space();
        let p = CommandPipeline::new(
            s.clone(),
            vec![
                "/bin/sh".into(),
                "-c".into(),
                "if [ \"$BUGDOC_MODE\" = fast ]; then echo 0.9; else echo 0.2; fi".into(),
            ],
            CommandEval::StdoutScoreAtLeast(0.6),
        );
        let good = p.execute(&inst(&s, 1, "fast")).unwrap();
        assert!(good.outcome.is_succeed());
        assert_eq!(good.score, Some(0.9));
        let bad = p.execute(&inst(&s, 1, "slow")).unwrap();
        assert!(bad.outcome.is_fail());
        assert_eq!(bad.score, Some(0.2));
    }

    #[test]
    fn score_at_most_mode() {
        let s = space();
        let p = CommandPipeline::new(
            s.clone(),
            vec!["/bin/sh".into(), "-c".into(), "echo 42".into()],
            CommandEval::StdoutScoreAtMost(50.0),
        );
        assert!(p.execute(&inst(&s, 1, "fast")).unwrap().outcome.is_succeed());
        let p = CommandPipeline::new(
            s.clone(),
            vec!["/bin/sh".into(), "-c".into(), "echo 99".into()],
            CommandEval::StdoutScoreAtMost(50.0),
        );
        assert!(p.execute(&inst(&s, 1, "fast")).unwrap().outcome.is_fail());
    }

    #[test]
    fn unparseable_score_fails() {
        let s = space();
        let p = CommandPipeline::new(
            s.clone(),
            vec!["/bin/sh".into(), "-c".into(), "echo not-a-number".into()],
            CommandEval::StdoutScoreAtLeast(0.5),
        );
        assert!(p.execute(&inst(&s, 1, "fast")).unwrap().outcome.is_fail());
    }

    #[test]
    fn missing_program_is_unavailable() {
        let s = space();
        let p = CommandPipeline::new(
            s.clone(),
            vec!["/definitely/not/a/program".into()],
            CommandEval::ExitCode,
        );
        assert_eq!(
            p.execute(&inst(&s, 1, "fast")),
            Err(PipelineError::Unavailable)
        );
    }

    #[test]
    fn parse_score_takes_last_nonempty_line() {
        assert_eq!(parse_score(b"log line\n0.75\n\n"), Some(0.75));
        assert_eq!(parse_score(b""), None);
        assert_eq!(parse_score(b"nan-ish\n"), None);
    }
}
