//! The execution engine: a caching, budgeted, parallel dispatcher for
//! pipeline instances.
//!
//! "The current prototype of BugDoc contains a dispatching component that
//! runs in a single thread and spawns multiple pipeline instances in
//! parallel. In our experiments, we used five execution engine workers"
//! (paper §5). The executor reproduces that architecture:
//!
//! * every execution is recorded in the [`ProvenanceStore`]; re-evaluating a
//!   known instance is a cache hit and costs nothing (the paper's cost
//!   measure counts only *new* executions);
//! * an optional **instance budget** bounds new executions — the evaluation
//!   grants each baseline "the same number of instances" (§5);
//! * batches run on a worker pool (real threads via crossbeam), and a
//!   **virtual clock** accumulates the schedule makespan at the configured
//!   worker count, which is what the scalability study measures (§5.2).
//!
//! # Concurrency layout
//!
//! The executor is built so cache hits — by far the most frequent operation
//! the search layers issue — never serialize behind a global lock:
//!
//! * a **sharded read cache** maps dense instance keys to outcomes across
//!   [`CACHE_SHARDS`] independently locked shards (readers of different
//!   shards never touch the same lock, and shard write locks are held only
//!   for the instant a new result is published or an entry is evicted);
//! * the full [`ProvenanceStore`] sits behind one `RwLock`, write-locked only
//!   to record new executions (and read-locked for snapshot/queries and for
//!   the rare instance that has no dense key);
//! * statistics are individual atomics ([`Ordering::SeqCst`] reservations for
//!   the budget, relaxed counters elsewhere), so `stats()` never blocks the
//!   workers.
//!
//! Budget accounting stays exact under concurrency: a new execution
//! *reserves* its budget slot with a compare-and-swap before running, releases
//! it if the pipeline is unavailable, and reclassifies itself as a cache hit
//! if another worker recorded the same instance first (the determinism
//! guarantee makes the two results interchangeable), so
//! `new_executions == provenance.len() - seeded` always holds.
//!
//! # Memory-bounded mode
//!
//! By default the read cache is write-through and unbounded. Under a
//! [`MemoryBudget`] (entry or byte cap, split evenly across the shards) each
//! shard evicts with the CLOCK (second-chance) policy: reads set a per-entry
//! reference bit (an atomic, so the shared lock suffices) and the insert
//! path sweeps a clock hand, demoting referenced entries once and evicting
//! the first unreferenced one. Eviction never loses information — the
//! provenance log remains the source of truth, so a probe that misses the
//! cache falls back to one `ProvenanceStore::lookup` under the read lock
//! and, on a hit, re-publishes the entry (counted in
//! [`ExecStats::log_rederivations`]) instead of re-executing. A genuinely
//! unknown instance still goes through the CAS budget reservation, so the
//! `new_executions` invariant above is unaffected by eviction.

use crate::pipeline::{Pipeline, PipelineError, SimTime};
use bugdoc_core::{
    hash_dense_key, EvalResult, Instance, Outcome, ParamSpace, ProvenanceStore, Run,
};
use bugdoc_store::{DurableStore, PersistConfig, PersistError, Recovery};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Number of read-cache shards (power of two; see the module docs).
pub const CACHE_SHARDS: usize = 16;

/// Latency of cache-miss log re-derivations (the exact-provenance fallback
/// behind an evicting shard cache). The handle is cached so the registry
/// lock is touched once per process, not per probe.
fn rederive_ns() -> &'static bugdoc_telemetry::Histogram {
    static H: OnceLock<&'static bugdoc_telemetry::Histogram> = OnceLock::new();
    H.get_or_init(|| {
        bugdoc_telemetry::histogram(
            "bugdoc_executor_rederive_ns",
            "Latency of shard-cache misses re-derived exactly from the provenance log (ns)",
        )
    })
}

/// Eviction-pressure flight events are sampled: one event per
/// `EVICTION_SAMPLE` evictions on a shard, so a thrashing cache surfaces in
/// the flight ring without flooding it.
const EVICTION_SAMPLE: usize = 1024;

/// Re-derivation latency samples are taken for one miss in this many: the
/// histogram still sees the distribution while the other misses pay only a
/// relaxed counter load on top of the log walk they were already doing.
const REDERIVE_SAMPLE: usize = 64;

/// Why the executor could not evaluate an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The new-instance budget is exhausted. Algorithms treat this as "stop
    /// refining and report the best assertion so far".
    BudgetExhausted,
    /// The pipeline cannot execute this instance (historical replay gap).
    Unavailable,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::BudgetExhausted => write!(f, "instance budget exhausted"),
            ExecError::Unavailable => write!(f, "instance unavailable"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Bound on the executor's in-memory read cache (see the module docs).
///
/// The budget is split evenly across the [`CACHE_SHARDS`] shards; each shard
/// enforces its slice with CLOCK (second-chance) eviction. The provenance
/// log is unaffected — evicted outcomes are re-derived from it on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryBudget {
    /// Never evict (the cache mirrors the whole history).
    #[default]
    Unbounded,
    /// At most this many cached outcomes across all shards.
    Entries(usize),
    /// At most approximately this many bytes of cached keys and entries
    /// across all shards (accounted per entry as key bytes plus a fixed
    /// slot/map overhead).
    Bytes(usize),
}

impl MemoryBudget {
    /// The per-shard cap this budget implies: `(entries, bytes)` with `None`
    /// meaning unlimited on that axis. Caps are rounded up so the total is
    /// never below the requested budget, and floored at one entry per shard
    /// (a cache that cannot hold anything would only thrash).
    fn per_shard(self) -> (Option<usize>, Option<usize>) {
        match self {
            MemoryBudget::Unbounded => (None, None),
            MemoryBudget::Entries(n) => (Some(n.div_ceil(CACHE_SHARDS).max(1)), None),
            MemoryBudget::Bytes(b) => (None, Some(b.div_ceil(CACHE_SHARDS))),
        }
    }
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Worker threads for batch execution. The paper used 5.
    pub workers: usize,
    /// Maximum number of *new* pipeline executions (cache hits are free).
    /// `None` = unbounded.
    pub budget: Option<usize>,
    /// Bound on the read cache's memory (default: unbounded).
    pub memory: MemoryBudget,
    /// Durable provenance (default: off). When set, the executor recovers
    /// any history already in the directory at construction (a warm start —
    /// recovered runs behave exactly like seeded provenance) and tees every
    /// newly recorded execution to the write-ahead log; see [`PersistConfig`]
    /// and the `bugdoc-store` crate docs.
    pub persist: Option<PersistConfig>,
    /// Bound-guided pruning of provenance queries (default: on). Pruning is
    /// exact-preserving — diagnosis outputs are bit-identical either way —
    /// so this is an escape hatch / differential-testing switch, not a
    /// correctness knob. Mirrors the spec keyword `bounds off`.
    pub bounds: bool,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            workers: 5,
            budget: None,
            memory: MemoryBudget::Unbounded,
            persist: None,
            bounds: true,
        }
    }
}

/// Execution statistics, for reports and the scalability figures.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Instances executed by this executor (excludes pre-seeded provenance).
    pub new_executions: usize,
    /// Evaluations answered from provenance without executing (shard-cache
    /// hits, log re-derivations, and racing duplicates combined).
    pub cache_hits: usize,
    /// Requests refused because the pipeline could not run the instance.
    pub unavailable: usize,
    /// Requests refused because the budget was exhausted.
    pub budget_refusals: usize,
    /// Cache entries evicted under a [`MemoryBudget`].
    pub evictions: usize,
    /// Keyed probes that missed the shard cache (evicted or collided) but
    /// were answered exactly from the provenance log without re-executing.
    pub log_rederivations: usize,
    /// Virtual time elapsed: the makespan of all executions scheduled on
    /// `workers` machines.
    pub sim_time: SimTime,
    /// Provenance queries that fanned epochs out across the worker pool
    /// (large logs only; small logs stay on the sequential path).
    pub parallel_epoch_queries: u64,
    /// Total frozen/retired epochs visited by provenance queries, across
    /// both the sequential and parallel paths.
    pub epochs_scanned: u64,
    /// Search subtrees / candidate causes the algorithms discarded on the
    /// strength of an admissible bound alone, skipping their verification
    /// queries entirely (exact-preserving — the skipped work was provably
    /// decided).
    pub bounds_pruned_subtrees: u64,
    /// Provenance queries fully answered by the bounds layer's integer
    /// arithmetic, with no word-level scan.
    pub bounds_short_circuits: u64,
    /// Provenance queries whose bounds were inconclusive and fell through
    /// to the exact kernel path (the bound cost is then pure overhead).
    pub bounds_fallthroughs: u64,
}

/// Pass-through hasher for keys that are already FxHash fingerprints.
#[derive(Default)]
struct IdentityHasher(u64);

impl std::hash::Hasher for IdentityHasher {
    fn write(&mut self, _bytes: &[u8]) {
        // lint: allow(W003, reason = "the map's key type is u64, so the hasher only ever receives write_u64; reaching this is a type-level contract violation")
        unreachable!("identity hasher is only fed u64 fingerprints");
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = i;
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type IdentityBuild = std::hash::BuildHasherDefault<IdentityHasher>;

/// Fixed per-entry overhead charged against a byte budget, on top of the key
/// bytes: the slot struct, the fingerprint→slot map entry, and the reference
/// bit. Approximate by design — the budget bounds growth, it is not an
/// allocator audit.
const ENTRY_OVERHEAD_BYTES: usize = 64;

#[inline]
fn entry_bytes(key_len: usize) -> usize {
    key_len * 4 + ENTRY_OVERHEAD_BYTES
}

/// One cached outcome: the verified key disambiguates the (astronomically
/// rare) fingerprint collision — a mismatch reads as a cache miss, and the
/// provenance fallback keeps the answer exact. The second-chance bit lives
/// inline with the payload (an atomic, so the *shared* lock suffices to set
/// it on the hit path) — one cache line per entry.
struct CacheEntry {
    key: Box<[u32]>,
    outcome: Outcome,
    referenced: AtomicBool,
}

/// The mutable core of one shard: payloads inline in the fingerprint map
/// (exactly the write-through layout of the eviction-free cache), plus — in
/// bounded mode only — a ring of fingerprints the CLOCK hand sweeps. The
/// ring and the map always hold the same fingerprints: insertion pushes,
/// and eviction happens *at* the hand, so a `swap_remove` there keeps the
/// correspondence without tombstones.
#[derive(Default)]
struct ShardInner {
    /// Fingerprint → cached outcome.
    map: HashMap<u64, CacheEntry, IdentityBuild>,
    /// CLOCK ring of fingerprints (empty and untouched when unbounded).
    ring: Vec<u64>,
    /// The clock hand: next ring position the eviction sweep examines.
    hand: usize,
    /// Bytes charged so far (only meaningful under a byte budget).
    bytes: usize,
}

impl ShardInner {
    /// Inserts or overwrites `fp`'s entry, evicting with CLOCK while the
    /// shard is over either cap. Returns the number of evictions performed.
    fn insert(
        &mut self,
        fp: u64,
        key: Box<[u32]>,
        outcome: Outcome,
        max_entries: Option<usize>,
        max_bytes: Option<usize>,
    ) -> usize {
        // One hash probe covers both the refresh case (the benign
        // duplicate-publish race) and, when unbounded, the plain append —
        // the write-through path costs exactly what the eviction-free cache
        // it replaces did.
        let unbounded = max_entries.is_none() && max_bytes.is_none();
        match self.map.entry(fp) {
            std::collections::hash_map::Entry::Occupied(occupied) => {
                let entry = occupied.into_mut();
                self.bytes = self.bytes + entry_bytes(key.len()) - entry_bytes(entry.key.len());
                entry.key = key;
                entry.outcome = outcome;
                *entry.referenced.get_mut() = true;
                return 0;
            }
            std::collections::hash_map::Entry::Vacant(vacant) => {
                if unbounded {
                    vacant.insert(CacheEntry {
                        key,
                        outcome,
                        referenced: AtomicBool::new(false),
                    });
                    return 0;
                }
            }
        }
        let incoming = entry_bytes(key.len());
        let mut evicted = 0usize;
        // Make room *before* inserting so the caps hold as invariants. The
        // entry floor (at least one entry per shard) keeps a tiny byte
        // budget from refusing everything.
        while !self.ring.is_empty()
            && (max_entries.is_some_and(|m| self.map.len() >= m)
                || max_bytes.is_some_and(|m| self.bytes + incoming > m))
        {
            self.evict_one();
            evicted += 1;
        }
        self.bytes += incoming;
        self.ring.push(fp);
        self.map.insert(
            fp,
            CacheEntry {
                key,
                outcome,
                referenced: AtomicBool::new(true),
            },
        );
        evicted
    }

    /// One CLOCK sweep: clears reference bits until an unreferenced entry is
    /// found, then evicts it at the hand (the ring `swap_remove` keeps the
    /// ring↔map correspondence exact).
    // lint: allow(W003, reason = "the hand is wrapped to ring.len() at the top of every sweep iteration, and the ring and map hold the same fingerprints by the insert/evict invariant the expect states", scope = "block")
    fn evict_one(&mut self) {
        debug_assert!(!self.ring.is_empty(), "evict_one on an empty shard");
        loop {
            if self.hand >= self.ring.len() {
                self.hand = 0;
            }
            let fp = self.ring[self.hand];
            let entry = self.map.get_mut(&fp).expect("ring fingerprint is mapped");
            if std::mem::take(entry.referenced.get_mut()) {
                self.hand += 1; // second chance
                continue;
            }
            self.bytes -= entry_bytes(entry.key.len());
            self.map.remove(&fp);
            self.ring.swap_remove(self.hand);
            return;
        }
    }
}

/// One cache shard, padded to its own cache line so shard locks and hit
/// counters on different shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct CacheShard {
    inner: RwLock<ShardInner>,
    /// Cache hits served by this shard (summed into [`ExecStats`]).
    hits: AtomicUsize,
    /// Entries this shard evicted under a memory budget.
    evictions: AtomicUsize,
}

/// The sharded dense-key → outcome read cache (see the module docs).
struct ReadCache {
    shards: Vec<CacheShard>,
    /// Per-shard caps derived from the [`MemoryBudget`].
    max_entries: Option<usize>,
    max_bytes: Option<usize>,
}

impl ReadCache {
    fn new(budget: MemoryBudget) -> Self {
        let (max_entries, max_bytes) = budget.per_shard();
        ReadCache {
            shards: (0..CACHE_SHARDS).map(|_| CacheShard::default()).collect(),
            max_entries,
            max_bytes,
        }
    }

    /// Shard selection uses the fingerprint's *high* bits; the map's bucket
    /// index uses the low bits, so the two stay independent. The shift is
    /// derived from `CACHE_SHARDS` so resizing the shard count keeps every
    /// shard reachable.
    #[inline]
    fn shard(&self, fp: u64) -> &CacheShard {
        const _: () = assert!(CACHE_SHARDS.is_power_of_two());
        // lint: allow(W003, reason = "the index is masked by CACHE_SHARDS - 1 and shards holds exactly CACHE_SHARDS entries")
        &self.shards[(fp >> (64 - CACHE_SHARDS.trailing_zeros())) as usize & (CACHE_SHARDS - 1)]
    }

    /// Looks a key up by its precomputed fingerprint and, on a hit, counts
    /// it on the shard's local counter and marks the entry recently used.
    #[inline]
    fn get_counted(&self, fp: u64, key: &[u32]) -> Option<Outcome> {
        let shard = self.shard(fp);
        let bounded = self.is_bounded();
        let inner = shard.inner.read();
        let hit = match inner.map.get(&fp) {
            Some(entry) if entry.key.as_ref() == key => {
                // The second-chance bit only matters when eviction can
                // happen; unbounded mode skips the shared-line write.
                // Relaxed: a lost race just ages the entry one sweep early.
                if bounded {
                    entry.referenced.store(true, Ordering::Relaxed);
                }
                Some(entry.outcome)
            }
            _ => None,
        };
        drop(inner);
        // Relaxed: telemetry-only hit counter, never read for control flow.
        if hit.is_some() {
            shard.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    fn insert(&self, fp: u64, key: Box<[u32]>, outcome: Outcome) {
        let shard = self.shard(fp);
        let evicted = shard
            .inner
            .write()
            .insert(fp, key, outcome, self.max_entries, self.max_bytes);
        // Relaxed: telemetry-only eviction counter.
        if evicted > 0 {
            let before = shard.evictions.fetch_add(evicted, Ordering::Relaxed);
            let after = before + evicted;
            // Sampled flight event when the shard's eviction count crosses
            // an EVICTION_SAMPLE boundary: cheap enough to stay always-on,
            // frequent enough that sustained thrash is visible in FLIGHT.
            if before / EVICTION_SAMPLE != after / EVICTION_SAMPLE {
                bugdoc_telemetry::event(
                    bugdoc_telemetry::EventKind::EvictionPressure,
                    after as u64,
                    evicted as u64,
                    0,
                );
            }
        }
    }

    /// True when a memory budget is in force (entries can be evicted, so a
    /// shard miss is not authoritative).
    #[inline]
    fn is_bounded(&self) -> bool {
        self.max_entries.is_some() || self.max_bytes.is_some()
    }

    fn hits(&self) -> usize {
        self.shards
            .iter()
            // Relaxed: summing telemetry counters for a diagnostic readout.
            .map(|s| s.hits.load(Ordering::Relaxed))
            .sum()
    }

    fn evictions(&self) -> usize {
        self.shards
            .iter()
            // Relaxed: summing telemetry counters for a diagnostic readout.
            .map(|s| s.evictions.load(Ordering::Relaxed))
            .sum()
    }

    /// Entries currently cached across all shards.
    fn entries(&self) -> usize {
        self.shards.iter().map(|s| s.inner.read().map.len()).sum()
    }
}

impl ExecStats {
    /// The statistics accrued since `baseline` was snapshotted — the
    /// per-session view a diagnosis service reports when many sessions
    /// share one executor. Counters subtract saturating (a counter can
    /// only grow, but `release_slot`/`reclassify_as_hit` make
    /// `new_executions` momentarily non-monotonic under races).
    pub fn since(&self, baseline: &ExecStats) -> ExecStats {
        ExecStats {
            new_executions: self.new_executions.saturating_sub(baseline.new_executions),
            cache_hits: self.cache_hits.saturating_sub(baseline.cache_hits),
            unavailable: self.unavailable.saturating_sub(baseline.unavailable),
            budget_refusals: self.budget_refusals.saturating_sub(baseline.budget_refusals),
            evictions: self.evictions.saturating_sub(baseline.evictions),
            log_rederivations: self
                .log_rederivations
                .saturating_sub(baseline.log_rederivations),
            sim_time: SimTime::from_secs((self.sim_time.secs() - baseline.sim_time.secs()).max(0.0)),
            parallel_epoch_queries: self
                .parallel_epoch_queries
                .saturating_sub(baseline.parallel_epoch_queries),
            epochs_scanned: self.epochs_scanned.saturating_sub(baseline.epochs_scanned),
            bounds_pruned_subtrees: self
                .bounds_pruned_subtrees
                .saturating_sub(baseline.bounds_pruned_subtrees),
            bounds_short_circuits: self
                .bounds_short_circuits
                .saturating_sub(baseline.bounds_short_circuits),
            bounds_fallthroughs: self
                .bounds_fallthroughs
                .saturating_sub(baseline.bounds_fallthroughs),
        }
    }

    /// Every counter field as a `(name, value)` pair, in declaration order.
    /// This is the single source of truth consumers iterate instead of
    /// naming fields one by one — the serve daemon's `STATS` block and the
    /// `METRICS` bridge both render from it, so adding a counter here
    /// automatically surfaces it everywhere (and the wire-parity test
    /// fails if a renderer goes stale). `sim_time` is excluded: it is a
    /// duration, not a counter.
    pub fn counter_fields(&self) -> [(&'static str, u64); 11] {
        [
            ("new_executions", self.new_executions as u64),
            ("cache_hits", self.cache_hits as u64),
            ("unavailable", self.unavailable as u64),
            ("budget_refusals", self.budget_refusals as u64),
            ("evictions", self.evictions as u64),
            ("log_rederivations", self.log_rederivations as u64),
            ("parallel_epoch_queries", self.parallel_epoch_queries),
            ("epochs_scanned", self.epochs_scanned),
            ("bounds_pruned_subtrees", self.bounds_pruned_subtrees),
            ("bounds_short_circuits", self.bounds_short_circuits),
            ("bounds_fallthroughs", self.bounds_fallthroughs),
        ]
    }
}

/// Lock-free execution statistics (assembled into [`ExecStats`] on demand).
#[derive(Default)]
struct AtomicStats {
    new_executions: AtomicUsize,
    cache_hits: AtomicUsize,
    unavailable: AtomicUsize,
    budget_refusals: AtomicUsize,
    log_rederivations: AtomicUsize,
    /// Budget slots reserved by diagnosis sessions but not yet executed
    /// (admission control; see [`Executor::try_reserve_session`]).
    session_reserved: AtomicUsize,
    /// Virtual-clock seconds, stored as `f64` bits.
    sim_time_bits: AtomicU64,
    /// Candidates the algorithms pruned on a bound alone (see
    /// [`ExecStats::bounds_pruned_subtrees`]).
    bounds_pruned_subtrees: AtomicU64,
}

impl AtomicStats {
    fn add_sim_time(&self, t: SimTime) {
        let _ = self
            .sim_time_bits
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |bits| {
                Some((f64::from_bits(bits) + t.secs()).to_bits())
            });
    }

    /// Snapshot; `shard_hits`/`evictions` are the sums of the read cache's
    /// per-shard counters (keyed cache hits are counted at the shard they
    /// touch), `(parallel_epoch_queries, epochs_scanned)` comes from the
    /// provenance store's query counters, and
    /// `(bounds_short_circuits, bounds_fallthroughs)` from its bounds
    /// counters.
    fn snapshot(
        &self,
        shard_hits: usize,
        evictions: usize,
        (parallel_epoch_queries, epochs_scanned): (u64, u64),
        (bounds_short_circuits, bounds_fallthroughs): (u64, u64),
    ) -> ExecStats {
        ExecStats {
            new_executions: self.new_executions.load(Ordering::SeqCst),
            cache_hits: self.cache_hits.load(Ordering::SeqCst) + shard_hits,
            unavailable: self.unavailable.load(Ordering::SeqCst),
            budget_refusals: self.budget_refusals.load(Ordering::SeqCst),
            evictions,
            log_rederivations: self.log_rederivations.load(Ordering::SeqCst),
            sim_time: SimTime::from_secs(f64::from_bits(
                self.sim_time_bits.load(Ordering::SeqCst),
            )),
            parallel_epoch_queries,
            epochs_scanned,
            bounds_pruned_subtrees: self.bounds_pruned_subtrees.load(Ordering::SeqCst),
            bounds_short_circuits,
            bounds_fallthroughs,
        }
    }
}

/// The caching, budgeted, parallel instance dispatcher.
pub struct Executor {
    pipeline: Arc<dyn Pipeline>,
    config: ExecutorConfig,
    provenance: RwLock<ProvenanceStore>,
    cache: ReadCache,
    stats: AtomicStats,
    /// The durable-provenance writer, when persistence is configured. Locked
    /// only on the new-execution record path (never on cache hits), always
    /// while the provenance write lock is held, so WAL frame order equals
    /// run-log order. The inner `Option` exists for [`Executor::shutdown`],
    /// which takes the store out (from `&self`) to close it gracefully; it
    /// is `Some` for the executor's whole serving life.
    persist: Option<Mutex<Option<DurableStore>>>,
    /// What recovery found at construction (persistence only).
    recovery: Option<Recovery>,
}

impl Executor {
    /// Creates an executor with an empty history.
    ///
    /// Panics if [`ExecutorConfig::persist`] is set and the durable store
    /// cannot be opened; use [`Executor::try_new`] to handle that.
    pub fn new(pipeline: Arc<dyn Pipeline>, config: ExecutorConfig) -> Self {
        Executor::try_new(pipeline, config)
            // lint: allow(W003, reason = "documented panicking constructor; try_new is the fallible variant")
            .unwrap_or_else(|e| panic!("cannot open durable provenance: {e}"))
    }

    /// Creates an executor pre-seeded with previously-run instances. Seeded
    /// runs do not count against the budget or the execution statistics.
    ///
    /// Panics if [`ExecutorConfig::persist`] is set and the durable store
    /// cannot be opened; use [`Executor::try_with_provenance`] to handle
    /// that.
    pub fn with_provenance(
        pipeline: Arc<dyn Pipeline>,
        config: ExecutorConfig,
        provenance: ProvenanceStore,
    ) -> Self {
        Executor::try_with_provenance(pipeline, config, provenance)
            // lint: allow(W003, reason = "documented panicking constructor; try_with_provenance is the fallible variant")
            .unwrap_or_else(|e| panic!("cannot open durable provenance: {e}"))
    }

    /// Like [`Executor::new`], surfacing durable-store errors.
    pub fn try_new(
        pipeline: Arc<dyn Pipeline>,
        config: ExecutorConfig,
    ) -> Result<Self, PersistError> {
        let provenance = ProvenanceStore::new(pipeline.space().clone());
        Executor::try_with_provenance(pipeline, config, provenance)
    }

    /// Like [`Executor::with_provenance`], surfacing durable-store errors.
    ///
    /// With persistence configured this is the **warm-start path**: the
    /// directory's existing history is recovered first, then the caller's
    /// seed runs are merged in (novel ones are appended to the WAL), and the
    /// union seeds the executor. Seeded and recovered runs alike are
    /// answered as cache hits, so
    /// `new_executions == provenance.len() - seeded` keeps holding.
    pub fn try_with_provenance(
        pipeline: Arc<dyn Pipeline>,
        config: ExecutorConfig,
        provenance: ProvenanceStore,
    ) -> Result<Self, PersistError> {
        let space = pipeline.space().clone();
        let (mut provenance, persist, recovery) = match &config.persist {
            None => (provenance, None, None),
            Some(persist_config) => {
                let (mut recovered, mut durable, recovery) =
                    DurableStore::open(&space, persist_config)?;
                for run in provenance.runs() {
                    if recovered.record(run.instance.clone(), run.eval) {
                        // lint: allow(W003, reason = "record returned true, so the run log is non-empty and last() is the run just appended")
                        let stored = recovered.runs().last().expect("just recorded");
                        durable.append_with_snapshot(stored, &recovered)?;
                    }
                }
                (recovered, Some(Mutex::new(Some(durable))), Some(recovery))
            }
        };
        // Provenance queries may fan out across the same worker pool the
        // dispatcher simulates; below the epoch threshold they stay
        // sequential, so a small log never pays for threads.
        provenance.set_query_workers(config.workers);
        provenance.set_bounds_enabled(config.bounds);
        let cache = ReadCache::new(config.memory);
        for run in provenance.runs() {
            let key: Option<Box<[u32]>> = run
                .instance
                .dense_key()
                .map(Into::into)
                .or_else(|| space.encode(&run.instance));
            if let Some(key) = key {
                let fp = run
                    .instance
                    .dense_fingerprint()
                    .unwrap_or_else(|| hash_dense_key(&key));
                cache.insert(fp, key, run.outcome());
            }
        }
        Ok(Executor {
            pipeline,
            config,
            provenance: RwLock::new(provenance),
            cache,
            stats: AtomicStats::default(),
            persist,
            recovery,
        })
    }

    /// What crash recovery found when the durable store was opened (`None`
    /// when persistence is off).
    pub fn recovery(&self) -> Option<Recovery> {
        self.recovery
    }

    /// Tees the just-recorded last run of `prov` to the write-ahead log.
    /// Called with the provenance write lock held so frame order matches
    /// run-log order; a no-op (one `None` check) when persistence is off.
    /// Returns whether a snapshot is due — the caller triggers it via
    /// [`Executor::persist_snapshot_if_due`] *after* releasing the write
    /// lock, so serializing the whole store (and its fsync) never stalls
    /// the worker pool behind the exclusive lock.
    /// An I/O failure here panics: the executor cannot honor its durability
    /// contract, and continuing would silently fork disk from memory.
    // lint: allow(W003, reason = "called only with the just-recorded run in the log (the expect); the panics on WAL I/O failure and on a post-shutdown record are the documented durability contract -- continuing would silently fork disk from memory", scope = "block")
    fn persist_record(&self, prov: &ProvenanceStore) -> bool {
        match &self.persist {
            None => false,
            Some(persist) => {
                let run = prov.runs().last().expect("a run was just recorded");
                let mut slot = persist.lock();
                let durable = slot
                    .as_mut()
                    .expect("record after Executor::shutdown closed the durable store");
                durable
                    .append(run, prov.space())
                    .unwrap_or_else(|e| panic!("durable provenance write failed: {e}"));
                durable.snapshot_due()
            }
        }
    }

    /// Writes the due snapshot under a provenance *read* lock (every
    /// record's WAL append happened under the write lock, so a read-locked
    /// store is exactly the appended prefix — the snapshot is consistent
    /// with the log position it covers). Racing callers are fine: the due
    /// flag is re-checked under the persist lock and the loser no-ops.
    // lint: allow(W003, reason = "the panic on snapshot I/O failure is the documented durability contract, as in persist_record", scope = "block")
    fn persist_snapshot_if_due(&self, due: bool) {
        if !due {
            return;
        }
        if let Some(persist) = &self.persist {
            let prov = self.provenance.read();
            let mut slot = persist.lock();
            // A shutdown racing the due snapshot already wrote a final one.
            if let Some(durable) = slot.as_mut() {
                if durable.snapshot_due() {
                    durable
                        .snapshot(&prov)
                        .unwrap_or_else(|e| panic!("durable provenance snapshot failed: {e}"));
                }
            }
        }
    }

    /// Gracefully closes durable provenance: fsyncs the WAL, writes a final
    /// snapshot of the current history, and releases the persist-directory
    /// lock — the SIGTERM path of a long-lived serving process, after which
    /// the directory warm-starts cleanly in the next process. Idempotent;
    /// a no-op (returning `false`) when persistence is off or already shut
    /// down. Callers must have stopped issuing evaluations first: a record
    /// arriving after shutdown is a durability-contract panic, not a
    /// silent fork of disk from memory.
    pub fn shutdown(&self) -> Result<bool, PersistError> {
        let Some(persist) = &self.persist else {
            return Ok(false);
        };
        // Same order as persist_snapshot_if_due: provenance read lock, then
        // the persist lock.
        let prov = self.provenance.read();
        let taken = persist.lock().take();
        match taken {
            Some(durable) => durable.close(&prov).map(|()| true),
            None => Ok(false),
        }
    }

    /// The pipeline's parameter space.
    pub fn space(&self) -> Arc<ParamSpace> {
        self.pipeline.space().clone()
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// The executable instance set, if the pipeline is a finite replay
    /// (see [`Pipeline::available_instances`]).
    pub fn available_instances(&self) -> Option<Vec<Instance>> {
        self.pipeline.available_instances()
    }

    /// Remaining new-execution budget (`None` = unbounded).
    pub fn remaining_budget(&self) -> Option<usize> {
        self.config
            .budget
            .map(|b| b.saturating_sub(self.stats.new_executions.load(Ordering::SeqCst)))
    }

    /// Reserves `n` budget slots for a diagnosis session — **admission
    /// control**, not execution accounting. A multi-session service calls
    /// this before admitting a session so concurrent sessions cannot
    /// collectively oversubscribe the shared budget: the CAS succeeds only
    /// while `executed + reserved + n <= budget`. The reservation does not
    /// change what [`Executor::evaluate`] admits (the per-execution gate
    /// stays exact); pair every successful call with
    /// [`Executor::release_session`] when the session ends. Always succeeds
    /// when the budget is unbounded.
    pub fn try_reserve_session(&self, n: usize) -> bool {
        let Some(budget) = self.config.budget else {
            return true;
        };
        self.stats
            .session_reserved
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |reserved| {
                let executed = self.stats.new_executions.load(Ordering::SeqCst);
                (executed.saturating_add(reserved).saturating_add(n) <= budget)
                    .then(|| reserved + n)
            })
            .is_ok()
    }

    /// Returns `n` slots reserved by [`Executor::try_reserve_session`].
    /// Saturating, so releasing more than was reserved (a session-manager
    /// bug) clamps at zero instead of wrapping the admission gate open.
    pub fn release_session(&self, n: usize) {
        let _ = self
            .stats
            .session_reserved
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |reserved| {
                Some(reserved.saturating_sub(n))
            });
    }

    /// Budget slots currently reserved by admitted sessions.
    pub fn session_reserved(&self) -> usize {
        self.stats.session_reserved.load(Ordering::SeqCst)
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> ExecStats {
        let (query_counters, bounds_counters) = {
            let prov = self.provenance.read();
            (prov.query_counters(), prov.bounds_counters())
        };
        self.stats.snapshot(
            self.cache.hits(),
            self.cache.evictions(),
            query_counters,
            bounds_counters,
        )
    }

    /// Counts `n` candidate causes / search subtrees that an algorithm
    /// discarded on the strength of an admissible bound alone (surfaced as
    /// [`ExecStats::bounds_pruned_subtrees`]).
    pub fn note_bounds_pruned(&self, n: u64) {
        if n > 0 {
            // Relaxed: telemetry-only counter, no control-flow reads.
            self.stats
                .bounds_pruned_subtrees
                .fetch_add(n, Ordering::Relaxed);
            // Bounds-gate decisions are rare (per pruned subtree, not per
            // query), so each one earns a flight event.
            bugdoc_telemetry::event(bugdoc_telemetry::EventKind::BoundsPruned, n, 0, 0);
        }
    }

    /// Outcomes currently held in the read cache (equals the number of
    /// encodable recorded instances when the memory budget is unbounded;
    /// bounded by the budget otherwise).
    pub fn cache_entries(&self) -> usize {
        self.cache.entries()
    }

    /// A snapshot of the current provenance.
    pub fn provenance(&self) -> ProvenanceStore {
        self.provenance.read().clone()
    }

    /// Runs a closure against the live provenance without cloning it.
    ///
    /// The closure holds a read lock: it may query freely but must not call
    /// back into `evaluate`/`evaluate_batch` (which may need the write lock).
    pub fn with_provenance_ref<R>(&self, f: impl FnOnce(&ProvenanceStore) -> R) -> R {
        f(&self.provenance.read())
    }

    /// The probe key for an instance: its cached dense key, or a fresh
    /// encoding against the pipeline's space.
    #[inline]
    fn key_for(&self, instance: &Instance) -> Option<Box<[u32]>> {
        instance
            .dense_key()
            .map(Into::into)
            .or_else(|| self.pipeline.space().encode(instance))
    }

    /// Reserves one budget slot. Returns `false` when the budget is already
    /// fully reserved.
    fn try_reserve(&self) -> bool {
        match self.config.budget {
            None => {
                self.stats.new_executions.fetch_add(1, Ordering::SeqCst);
                true
            }
            Some(budget) => self
                .stats
                .new_executions
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                    (n < budget).then_some(n + 1)
                })
                .is_ok(),
        }
    }

    /// Releases a reserved slot (pipeline unavailable).
    fn release_slot(&self) {
        self.stats.new_executions.fetch_sub(1, Ordering::SeqCst);
    }

    /// Reclassifies a reserved slot as a cache hit: another worker recorded
    /// the same instance while this one was executing it.
    fn reclassify_as_hit(&self) {
        self.stats.new_executions.fetch_sub(1, Ordering::SeqCst);
        // Relaxed: the budget gate reads new_executions (SeqCst above);
        // cache_hits is telemetry only.
        self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Cache probe, counting the hit where it is found: on the shard's local
    /// counter for keyed probes, on the residual counter for key-less ones.
    ///
    /// Under a memory budget, a keyed probe that misses the shard cache is
    /// not yet a miss: the entry may have been evicted, so the provenance
    /// log — the source of truth — gets the final word. A log hit
    /// re-publishes the entry so the hot set re-warms after eviction. With
    /// an unbounded cache (write-through, never evicts) a shard miss is
    /// authoritative and the extra probe is skipped, keeping the cold path
    /// identical to the eviction-free executor.
    #[inline]
    fn probe_counted(&self, instance: &Instance, key: Option<(u64, &[u32])>) -> Option<Outcome> {
        match key {
            Some((fp, k)) => {
                if let Some(outcome) = self.cache.get_counted(fp, k) {
                    return Some(outcome);
                }
                if !self.cache.is_bounded() {
                    return None;
                }
                // Sampled latency probe (1 in REDERIVE_SAMPLE): deciding up
                // front lets unsampled misses skip both clock reads — at a
                // thrashing 25% cache budget the miss path is hot enough to
                // trip the bench gate if every miss paid two `Instant::now`
                // calls. Relaxed: telemetry-only sampling decision.
                let timed = self.stats.log_rederivations.load(Ordering::Relaxed)
                    % REDERIVE_SAMPLE
                    == 0;
                let started = timed.then(Instant::now);
                let rederived = self.provenance.read().lookup(instance).map(|e| e.outcome);
                if let Some(outcome) = rederived {
                    // Relaxed: telemetry-only counters.
                    self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    self.stats.log_rederivations.fetch_add(1, Ordering::Relaxed);
                    self.cache.insert(fp, k.into(), outcome);
                    if let Some(started) = started {
                        // Off the shard-hit fast path by construction: only
                        // an evicted/collided probe pays the log walk, and
                        // its latency is the signal a memory-budget tuner
                        // needs.
                        rederive_ns().record_elapsed(started);
                    }
                }
                rederived
            }
            None => {
                let hit = self.provenance.read().lookup(instance).map(|e| e.outcome);
                // Relaxed: telemetry-only counter.
                if hit.is_some() {
                    self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                }
                hit
            }
        }
    }

    /// Evaluates one instance: provenance hit if known, otherwise a budgeted
    /// execution. Advances the virtual clock by the instance cost (a single
    /// evaluation cannot be overlapped with anything).
    pub fn evaluate(&self, instance: &Instance) -> Result<Outcome, ExecError> {
        // Borrow the instance's own dense key when it carries one: the
        // cache-hit path then allocates nothing. Encoding is needed only for
        // key-less probes, and boxing only when a new result is published.
        let encoded: Option<Box<[u32]>> = if instance.dense_key().is_some() {
            None
        } else {
            self.pipeline.space().encode(instance)
        };
        let key: Option<(u64, &[u32])> = match (instance.dense_key(), &encoded) {
            (Some(k), _) => Some((
                instance
                    .dense_fingerprint()
                    // lint: allow(W003, reason = "Instance invariant: a dense key and its fingerprint travel together")
                    .expect("fingerprint accompanies the dense key"),
                k,
            )),
            (None, Some(k)) => Some((hash_dense_key(k), k)),
            (None, None) => None,
        };
        if let Some(outcome) = self.probe_counted(instance, key) {
            return Ok(outcome);
        }
        if !self.try_reserve() {
            // Relaxed: telemetry-only counter.
            self.stats.budget_refusals.fetch_add(1, Ordering::Relaxed);
            return Err(ExecError::BudgetExhausted);
        }
        let result = self.pipeline.execute(instance);
        let cost = self.pipeline.cost(instance);
        match result {
            Ok(eval) => {
                let (fresh, snapshot_due) = {
                    let mut prov = self.provenance.write();
                    let fresh = prov.record(instance.clone(), eval);
                    (fresh, fresh && self.persist_record(&prov))
                };
                self.persist_snapshot_if_due(snapshot_due);
                if fresh {
                    self.stats.add_sim_time(cost);
                    if let Some((fp, k)) = key {
                        self.cache.insert(fp, k.into(), eval.outcome);
                    }
                } else {
                    self.reclassify_as_hit();
                }
                Ok(eval.outcome)
            }
            Err(PipelineError::Unavailable) => {
                self.release_slot();
                // Relaxed: telemetry-only counter.
                self.stats.unavailable.fetch_add(1, Ordering::Relaxed);
                Err(ExecError::Unavailable)
            }
        }
    }

    /// Evaluates a batch of instances in parallel on the worker pool.
    ///
    /// Results are positionally aligned with the input. Duplicate instances
    /// within the batch are executed once. The budget is applied in input
    /// order: once exhausted, remaining *new* instances get
    /// [`ExecError::BudgetExhausted`] (cache hits are still answered).
    ///
    /// The virtual clock advances by the makespan of greedy list scheduling
    /// of the executed instances' costs on `workers` machines — the quantity
    /// the paper's Figure 6 tracks as core counts grow.
    // lint: allow(W003, reason = "results/keys/encoded are all sized to instances.len() and indexed by batch positions from the same enumerate (to_run holds such positions); the scope/join expects propagate worker panics; first_occurrence is populated before any duplicate reads it", scope = "block")
    pub fn evaluate_batch(&self, instances: &[Instance]) -> Vec<Result<Outcome, ExecError>> {
        let mut results: Vec<Option<Result<Outcome, ExecError>>> = vec![None; instances.len()];
        // Like `evaluate`, borrow each instance's own dense key; only
        // instances without one get a freshly encoded (owned) key. Pure
        // cache-hit probes therefore allocate nothing.
        let space = self.pipeline.space();
        let encoded: Vec<Option<Box<[u32]>>> = instances
            .iter()
            .map(|i| {
                if i.dense_key().is_some() {
                    None
                } else {
                    space.encode(i)
                }
            })
            .collect();
        let keys: Vec<Option<(u64, &[u32])>> = instances
            .iter()
            .zip(&encoded)
            .map(|(i, enc)| match (i.dense_key(), enc) {
                (Some(k), _) => Some((
                    i.dense_fingerprint()
                        .expect("fingerprint accompanies the dense key"),
                    k,
                )),
                (None, Some(k)) => Some((hash_dense_key(k), k.as_ref())),
                (None, None) => None,
            })
            .collect();
        // Positions in the batch that need execution, deduplicated: the first
        // occurrence executes; later duplicates copy its result.
        let mut to_run: Vec<usize> = Vec::new();
        let mut first_occurrence: std::collections::HashMap<&Instance, usize> =
            std::collections::HashMap::new();

        // Probe phase: sharded cache reads plus budget reservations, in input
        // order — no exclusive lock anywhere.
        for (i, instance) in instances.iter().enumerate() {
            if let Some(outcome) = self.probe_counted(instance, keys[i]) {
                results[i] = Some(Ok(outcome));
                continue;
            }
            if first_occurrence.contains_key(instance) {
                continue; // duplicate of an earlier new instance
            }
            if self.try_reserve() {
                first_occurrence.insert(instance, i);
                to_run.push(i);
            } else {
                // Relaxed: telemetry-only counter.
                self.stats.budget_refusals.fetch_add(1, Ordering::Relaxed);
                results[i] = Some(Err(ExecError::BudgetExhausted));
                first_occurrence.insert(instance, i);
            }
        }

        // Execute the new instances on the worker pool.
        let outcomes: Vec<(usize, Result<EvalResult, PipelineError>, SimTime)> = if to_run
            .is_empty()
        {
            Vec::new()
        } else {
            let next = AtomicUsize::new(0);
            let collected: Mutex<Vec<(usize, Result<EvalResult, PipelineError>, SimTime)>> =
                Mutex::new(Vec::with_capacity(to_run.len()));
            let workers = self.config.workers.max(1).min(to_run.len());
            crossbeam::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|_| loop {
                        // Relaxed: a pure fetch_add ticket counter — each
                        // worker gets a unique k; no other state rides on it.
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= to_run.len() {
                            break;
                        }
                        let pos = to_run[k];
                        let instance = &instances[pos];
                        let res = self.pipeline.execute(instance);
                        let cost = self.pipeline.cost(instance);
                        collected.lock().push((pos, res, cost));
                    });
                }
            })
            .expect("executor worker panicked");
            collected.into_inner()
        };

        // Record results, settle the virtual clock, fill duplicates. Sorting
        // by batch position keeps the provenance order (and the greedy
        // scheduler's job order) deterministic regardless of which worker
        // finished first. This is the only phase holding the write lock.
        {
            let mut outcomes = outcomes;
            outcomes.sort_by_key(|(pos, _, _)| *pos);
            let mut executed_costs: Vec<SimTime> = Vec::with_capacity(outcomes.len());
            let mut snapshot_due = false;
            let mut prov = self.provenance.write();
            for (pos, res, cost) in outcomes {
                match res {
                    Ok(eval) => {
                        if prov.record(instances[pos].clone(), eval) {
                            snapshot_due |= self.persist_record(&prov);
                            executed_costs.push(cost);
                            if let Some((fp, k)) = keys[pos] {
                                self.cache.insert(fp, k.into(), eval.outcome);
                            }
                        } else {
                            self.reclassify_as_hit();
                        }
                        results[pos] = Some(Ok(eval.outcome));
                    }
                    Err(PipelineError::Unavailable) => {
                        self.release_slot();
                        // Relaxed: telemetry-only counter.
                        self.stats.unavailable.fetch_add(1, Ordering::Relaxed);
                        results[pos] = Some(Err(ExecError::Unavailable));
                    }
                }
            }
            drop(prov);
            self.persist_snapshot_if_due(snapshot_due);
            self.stats
                .add_sim_time(makespan(&executed_costs, self.config.workers.max(1)));
            for (i, instance) in instances.iter().enumerate() {
                if results[i].is_none() {
                    let first = first_occurrence[instance];
                    results[i] = Some(
                        results[first]
                            .clone()
                            .expect("first occurrence must be resolved"),
                    );
                }
            }
        }

        results.into_iter().map(|r| r.expect("resolved")).collect()
    }

    /// Records an externally-obtained evaluation (e.g. seeding mid-run).
    pub fn record_external(&self, instance: Instance, eval: EvalResult) {
        let key = self.key_for(&instance);
        let fp = instance
            .dense_fingerprint()
            .or_else(|| key.as_deref().map(hash_dense_key));
        let (fresh, snapshot_due) = {
            let mut prov = self.provenance.write();
            let fresh = prov.record(instance, eval);
            (fresh, fresh && self.persist_record(&prov))
        };
        self.persist_snapshot_if_due(snapshot_due);
        if fresh {
            if let (Some(k), Some(fp)) = (key, fp) {
                self.cache.insert(fp, k, eval.outcome);
            }
        }
    }

    /// Convenience: all runs recorded so far.
    pub fn runs(&self) -> Vec<Run> {
        self.provenance.read().runs().to_vec()
    }
}

/// Greedy list-scheduling makespan of `costs` on `machines` identical
/// machines: each job goes to the least-loaded machine, in order. This is the
/// schedule the dispatcher actually produces (jobs are pulled by idle
/// workers), so the virtual clock matches the real pool's behaviour.
// lint: allow(W003, reason = "loads is built non-empty (machines.max(1)) right above, so min_by always yields an in-bounds index", scope = "block")
fn makespan(costs: &[SimTime], machines: usize) -> SimTime {
    if costs.is_empty() {
        return SimTime::ZERO;
    }
    let mut loads = vec![0.0f64; machines.max(1)];
    for c in costs {
        // Index of the least-loaded machine. `total_cmp` keeps the schedule
        // well-defined even when a pipeline reports a NaN cost (a NaN load
        // sorts above every finite load, so it stops attracting jobs instead
        // of panicking the comparator).
        let (idx, _) = loads
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .expect("at least one machine");
        loads[idx] += c.secs();
    }
    SimTime::from_secs(loads.into_iter().fold(0.0, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{FnPipeline, HistoricalPipeline};
    use bugdoc_core::{ParamSpace, Value};

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .ordinal("x", [1, 2, 3, 4, 5])
            .ordinal("y", [1, 2, 3, 4, 5])
            .build()
    }

    fn inst(s: &ParamSpace, x: i64, y: i64) -> Instance {
        Instance::from_pairs(s, [("x", Value::from(x)), ("y", Value::from(y))])
    }

    /// Pipeline failing iff x = 3.
    fn pipe(s: &Arc<ParamSpace>) -> Arc<dyn Pipeline> {
        let x = s.by_name("x").unwrap();
        Arc::new(FnPipeline::new(s.clone(), move |i: &Instance| {
            EvalResult::of(Outcome::from_check(i.get(x) != &Value::from(3)))
        }))
    }

    #[test]
    fn evaluate_caches() {
        let s = space();
        let exec = Executor::new(pipe(&s), ExecutorConfig::default());
        let i = inst(&s, 3, 1);
        assert_eq!(exec.evaluate(&i), Ok(Outcome::Fail));
        assert_eq!(exec.evaluate(&i), Ok(Outcome::Fail));
        let stats = exec.stats();
        assert_eq!(stats.new_executions, 1);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn budget_enforced_and_counts_only_new() {
        let s = space();
        let exec = Executor::new(
            pipe(&s),
            ExecutorConfig {
                workers: 2,
                budget: Some(2),
                ..Default::default()
            },
        );
        assert!(exec.evaluate(&inst(&s, 1, 1)).is_ok());
        assert!(exec.evaluate(&inst(&s, 1, 1)).is_ok()); // cache hit, free
        assert!(exec.evaluate(&inst(&s, 2, 1)).is_ok());
        assert_eq!(
            exec.evaluate(&inst(&s, 3, 1)),
            Err(ExecError::BudgetExhausted)
        );
        assert_eq!(exec.remaining_budget(), Some(0));
        assert_eq!(exec.stats().budget_refusals, 1);
    }

    #[test]
    fn seeded_provenance_is_free() {
        let s = space();
        let mut prov = ProvenanceStore::new(s.clone());
        prov.record(inst(&s, 3, 3), EvalResult::of(Outcome::Fail));
        let exec = Executor::with_provenance(
            pipe(&s),
            ExecutorConfig {
                workers: 1,
                budget: Some(0),
                ..Default::default()
            },
            prov,
        );
        // Known instance: answered despite a zero budget.
        assert_eq!(exec.evaluate(&inst(&s, 3, 3)), Ok(Outcome::Fail));
        assert_eq!(exec.stats().new_executions, 0);
    }

    #[test]
    fn batch_positions_and_dedup() {
        let s = space();
        let exec = Executor::new(pipe(&s), ExecutorConfig::default());
        let batch = vec![inst(&s, 1, 1), inst(&s, 3, 2), inst(&s, 1, 1)];
        let results = exec.evaluate_batch(&batch);
        assert_eq!(results[0], Ok(Outcome::Succeed));
        assert_eq!(results[1], Ok(Outcome::Fail));
        assert_eq!(results[2], Ok(Outcome::Succeed));
        // The duplicate executed once.
        assert_eq!(exec.stats().new_executions, 2);
    }

    #[test]
    fn batch_budget_partial() {
        let s = space();
        let exec = Executor::new(
            pipe(&s),
            ExecutorConfig {
                workers: 4,
                budget: Some(2),
                ..Default::default()
            },
        );
        let batch: Vec<_> = (1..=4).map(|x| inst(&s, x, 1)).collect();
        let results = exec.evaluate_batch(&batch);
        let ok = results.iter().filter(|r| r.is_ok()).count();
        let refused = results
            .iter()
            .filter(|r| **r == Err(ExecError::BudgetExhausted))
            .count();
        assert_eq!(ok, 2);
        assert_eq!(refused, 2);
    }

    #[test]
    fn unavailable_does_not_consume_budget() {
        let s = space();
        let hist = HistoricalPipeline::new(
            s.clone(),
            [(inst(&s, 1, 1), EvalResult::of(Outcome::Succeed))],
        );
        let exec = Executor::new(
            Arc::new(hist),
            ExecutorConfig {
                workers: 1,
                budget: Some(1),
                ..Default::default()
            },
        );
        assert_eq!(exec.evaluate(&inst(&s, 2, 2)), Err(ExecError::Unavailable));
        // Budget slot released: the available instance still runs.
        assert_eq!(exec.evaluate(&inst(&s, 1, 1)), Ok(Outcome::Succeed));
        let stats = exec.stats();
        assert_eq!(stats.unavailable, 1);
        assert_eq!(stats.new_executions, 1);
    }

    #[test]
    fn virtual_clock_scales_with_workers() {
        let s = space();
        let make = |workers| {
            let x = s.by_name("x").unwrap();
            let p = FnPipeline::new(s.clone(), move |i: &Instance| {
                EvalResult::of(Outcome::from_check(i.get(x) != &Value::from(3)))
            })
            .with_cost(SimTime::from_mins(20.0));
            Executor::new(
                Arc::new(p),
                ExecutorConfig {
                    workers,
                    budget: None,
                    ..Default::default()
                },
            )
        };
        let batch: Vec<_> = (1..=5)
            .flat_map(|x| (1..=2).map(move |y| (x, y)))
            .map(|(x, y)| inst(&s, x, y))
            .collect();
        assert_eq!(batch.len(), 10);

        let exec1 = make(1);
        exec1.evaluate_batch(&batch);
        assert_eq!(exec1.stats().sim_time.secs(), 10.0 * 1200.0);

        let exec5 = make(5);
        exec5.evaluate_batch(&batch);
        assert_eq!(exec5.stats().sim_time.secs(), 2.0 * 1200.0);
    }

    #[test]
    fn makespan_greedy() {
        let c = |s: f64| SimTime::from_secs(s);
        assert_eq!(makespan(&[], 4), SimTime::ZERO);
        assert_eq!(makespan(&[c(3.0), c(2.0), c(1.0)], 1).secs(), 6.0);
        // Two machines, jobs 3,2,1 -> loads {3,1+2} -> makespan 3.
        assert_eq!(makespan(&[c(3.0), c(2.0), c(1.0)], 2).secs(), 3.0);
        // More machines than jobs -> longest job dominates.
        assert_eq!(makespan(&[c(3.0), c(2.0)], 8).secs(), 3.0);
    }

    #[test]
    fn parallel_batch_matches_sequential_results() {
        let s = space();
        let exec_par = Executor::new(pipe(&s), ExecutorConfig { workers: 8, budget: None, ..Default::default() });
        let exec_seq = Executor::new(pipe(&s), ExecutorConfig { workers: 1, budget: None, ..Default::default() });
        let batch: Vec<_> = (1..=5)
            .flat_map(|x| (1..=5).map(move |y| (x, y)))
            .map(|(x, y)| inst(&s, x, y))
            .collect();
        let a = exec_par.evaluate_batch(&batch);
        let b = exec_seq.evaluate_batch(&batch);
        assert_eq!(a, b);
        assert_eq!(exec_par.stats().new_executions, 25);
    }

    #[test]
    fn nan_cost_does_not_panic_scheduling() {
        // Regression: `makespan` used `partial_cmp(..).unwrap()`, so one NaN
        // cost (or NaN-score pipeline reporting a NaN duration) panicked the
        // suspect-ranking batch path. With a total order it must complete.
        let s = space();
        let x = s.by_name("x").unwrap();
        let p = FnPipeline::new(s.clone(), move |i: &Instance| EvalResult {
            outcome: Outcome::from_check(i.get(x) != &Value::from(3)),
            score: Some(f64::NAN),
        })
        .with_cost(SimTime::from_secs(f64::NAN));
        let exec = Executor::new(
            Arc::new(p),
            ExecutorConfig {
                workers: 3,
                ..Default::default()
            },
        );
        let batch: Vec<_> = (1..=5).map(|v| inst(&s, v, 1)).collect();
        let results = exec.evaluate_batch(&batch);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(exec.stats().new_executions, 5);
        // NaN loads lose `f64::max`, so the clock stays well-defined (the
        // NaN-cost jobs simply do not extend the makespan).
        assert!(!exec.stats().sim_time.secs().is_sign_negative());
    }

    #[test]
    fn makespan_with_nan_costs_is_total() {
        let c = |s: f64| SimTime::from_secs(s);
        // Must not panic; NaN ends up on some machine and poisons the max.
        let m = makespan(&[c(1.0), c(f64::NAN), c(2.0)], 2);
        assert!(m.secs().is_nan() || m.secs() >= 2.0);
    }

    #[test]
    fn bounded_cache_evicts_and_stays_exact() {
        let s = space(); // 25 instances
        let exec = Executor::new(
            pipe(&s),
            ExecutorConfig {
                workers: 1,
                budget: None,
                memory: MemoryBudget::Entries(6),
                ..Default::default()
            },
        );
        let all: Vec<_> = (1..=5)
            .flat_map(|x| (1..=5).map(move |y| (x, y)))
            .map(|(x, y)| inst(&s, x, y))
            .collect();
        // Two full passes: the second is all cache hits *or* log
        // re-derivations, never re-executions.
        for i in &all {
            exec.evaluate(i).unwrap();
        }
        for i in &all {
            let expected = Outcome::from_check(i.get(s.by_name("x").unwrap()) != &Value::from(3));
            assert_eq!(exec.evaluate(i), Ok(expected));
        }
        let stats = exec.stats();
        assert_eq!(stats.new_executions, 25, "eviction must not re-execute");
        assert_eq!(stats.cache_hits, 25);
        assert!(stats.evictions > 0, "a 6-entry cache over 25 keys must evict");
        assert!(stats.log_rederivations > 0);
        assert!(
            exec.cache_entries() <= 16,
            "per-shard floor is 1 entry; got {}",
            exec.cache_entries()
        );
        assert_eq!(exec.provenance().len(), 25);
    }

    #[test]
    fn byte_budget_bounds_cache() {
        let s = space();
        let exec = Executor::new(
            pipe(&s),
            ExecutorConfig {
                workers: 1,
                budget: None,
                memory: MemoryBudget::Bytes(4 * 1024),
                ..Default::default()
            },
        );
        let all: Vec<_> = (1..=5)
            .flat_map(|x| (1..=5).map(move |y| (x, y)))
            .map(|(x, y)| inst(&s, x, y))
            .collect();
        for i in &all {
            exec.evaluate(i).unwrap();
        }
        assert_eq!(exec.stats().new_executions, 25);
        // 25 entries × (8 key bytes + overhead) fits 4 KiB, so nothing evicts;
        // shrink to 1 KiB and eviction must kick in.
        let tight = Executor::new(
            pipe(&s),
            ExecutorConfig {
                workers: 1,
                budget: None,
                memory: MemoryBudget::Bytes(CACHE_SHARDS * ENTRY_OVERHEAD_BYTES),
                ..Default::default()
            },
        );
        for i in &all {
            tight.evaluate(i).unwrap();
        }
        for i in &all {
            tight.evaluate(i).unwrap();
        }
        assert_eq!(tight.stats().new_executions, 25);
        assert!(tight.stats().evictions > 0);
    }

    #[test]
    fn unbounded_mode_never_evicts() {
        let s = space();
        let exec = Executor::new(pipe(&s), ExecutorConfig::default());
        let all: Vec<_> = (1..=5)
            .flat_map(|x| (1..=5).map(move |y| (x, y)))
            .map(|(x, y)| inst(&s, x, y))
            .collect();
        for _ in 0..2 {
            for i in &all {
                exec.evaluate(i).unwrap();
            }
        }
        let stats = exec.stats();
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.log_rederivations, 0);
        assert_eq!(exec.cache_entries(), 25);
    }

    fn persist_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bugdoc-exec-persist-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persistence_tees_and_warm_starts() {
        let dir = persist_dir("warm");
        let s = space();
        let config = || ExecutorConfig {
            workers: 2,
            persist: Some(PersistConfig::new(&dir)),
            ..Default::default()
        };
        let all: Vec<_> = (1..=5)
            .flat_map(|x| (1..=5).map(move |y| (x, y)))
            .map(|(x, y)| inst(&s, x, y))
            .collect();
        let exec = Executor::new(pipe(&s), config());
        assert_eq!(exec.recovery(), Some(Default::default()));
        for i in &all {
            exec.evaluate(i).unwrap();
        }
        assert_eq!(exec.stats().new_executions, 25);
        drop(exec);

        // A fresh process: everything is recovered, nothing re-executes.
        let exec = Executor::new(pipe(&s), config());
        let recovery = exec.recovery().unwrap();
        assert_eq!(recovery.runs, 25);
        assert_eq!(recovery.truncated_bytes, 0);
        for i in &all {
            let expected = Outcome::from_check(i.get(s.by_name("x").unwrap()) != &Value::from(3));
            assert_eq!(exec.evaluate(i), Ok(expected));
        }
        let stats = exec.stats();
        assert_eq!(stats.new_executions, 0, "warm start must not re-execute");
        assert_eq!(stats.cache_hits, 25);
        assert_eq!(exec.provenance().len(), 25);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistence_covers_batch_and_external_records() {
        let dir = persist_dir("batch");
        let s = space();
        let config = || ExecutorConfig {
            workers: 4,
            persist: Some(PersistConfig {
                snapshot_every: Some(4),
                ..PersistConfig::new(&dir)
            }),
            ..Default::default()
        };
        let exec = Executor::new(pipe(&s), config());
        let batch: Vec<_> = (1..=5).map(|x| inst(&s, x, 1)).collect();
        exec.evaluate_batch(&batch);
        exec.record_external(inst(&s, 1, 5), EvalResult::of(Outcome::Succeed));
        drop(exec);

        let exec = Executor::new(pipe(&s), config());
        let recovery = exec.recovery().unwrap();
        assert_eq!(recovery.runs, 6);
        assert!(recovery.snapshot_runs > 0, "snapshot_every=4 wrote one");
        assert_eq!(
            exec.provenance().outcome_of(&inst(&s, 1, 5)),
            Some(Outcome::Succeed)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seed_provenance_merges_into_recovered_history() {
        let dir = persist_dir("merge");
        let s = space();
        let config = || ExecutorConfig {
            workers: 1,
            persist: Some(PersistConfig::new(&dir)),
            ..Default::default()
        };
        // First process: two executions.
        let exec = Executor::new(pipe(&s), config());
        exec.evaluate(&inst(&s, 1, 1)).unwrap();
        exec.evaluate(&inst(&s, 3, 1)).unwrap();
        drop(exec);
        // Second process seeds a TSV-style store: one overlapping run, one
        // novel. The novel one must be appended durably.
        let mut seed = ProvenanceStore::new(s.clone());
        seed.record(inst(&s, 1, 1), EvalResult::of(Outcome::Succeed));
        seed.record(inst(&s, 5, 5), EvalResult::of(Outcome::Succeed));
        let exec = Executor::with_provenance(pipe(&s), config(), seed);
        assert_eq!(exec.provenance().len(), 3);
        drop(exec);
        // Third process sees the union.
        let exec = Executor::new(pipe(&s), config());
        assert_eq!(exec.recovery().unwrap().runs, 3);
        assert_eq!(
            exec.provenance().outcome_of(&inst(&s, 5, 5)),
            Some(Outcome::Succeed)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn session_reservations_gate_admission() {
        let s = space();
        let exec = Executor::new(
            pipe(&s),
            ExecutorConfig {
                workers: 1,
                budget: Some(10),
                ..Default::default()
            },
        );
        assert!(exec.try_reserve_session(6));
        assert_eq!(exec.session_reserved(), 6);
        assert!(!exec.try_reserve_session(5), "6 + 5 > 10");
        assert!(exec.try_reserve_session(4));
        assert!(!exec.try_reserve_session(1), "fully reserved");
        exec.release_session(4);
        // Executions count against the admission gate too.
        exec.evaluate(&inst(&s, 1, 1)).unwrap();
        exec.evaluate(&inst(&s, 2, 1)).unwrap();
        assert!(!exec.try_reserve_session(3), "6 reserved + 2 executed + 3 > 10");
        assert!(exec.try_reserve_session(2));
        exec.release_session(6);
        exec.release_session(2);
        // Over-release clamps instead of reopening the gate.
        exec.release_session(100);
        assert_eq!(exec.session_reserved(), 0);
        // Reservations do not consume the *execution* budget.
        assert_eq!(exec.remaining_budget(), Some(8));
    }

    #[test]
    fn unbounded_budget_admits_every_session() {
        let s = space();
        let exec = Executor::new(pipe(&s), ExecutorConfig::default());
        assert!(exec.try_reserve_session(usize::MAX));
        assert_eq!(exec.session_reserved(), 0, "unbounded: nothing to track");
    }

    #[test]
    fn shutdown_snapshots_and_releases_lock() {
        let dir = persist_dir("shutdown");
        let s = space();
        let config = || ExecutorConfig {
            workers: 2,
            persist: Some(PersistConfig::new(&dir)),
            ..Default::default()
        };
        let exec = Executor::new(pipe(&s), config());
        for x in 1..=5 {
            exec.evaluate(&inst(&s, x, 1)).unwrap();
        }
        assert!(exec.shutdown().unwrap(), "first shutdown closes the store");
        assert!(!exec.shutdown().unwrap(), "idempotent");
        assert!(
            !dir.join("lock").exists(),
            "shutdown released the directory lock while the executor still lives"
        );
        // The directory warm-starts cleanly — from the final snapshot, with
        // no WAL tail left to replay — even though `exec` is still alive.
        let warm = Executor::new(pipe(&s), config());
        let recovery = warm.recovery().unwrap();
        assert_eq!(recovery.runs, 5);
        assert_eq!(recovery.snapshot_runs, 5, "shutdown wrote a final snapshot");
        assert_eq!(recovery.replayed_frames, 0);
        assert_eq!(recovery.truncated_bytes, 0);
        drop(warm);
        drop(exec);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_without_persistence_is_a_noop() {
        let s = space();
        let exec = Executor::new(pipe(&s), ExecutorConfig::default());
        exec.evaluate(&inst(&s, 1, 1)).unwrap();
        assert!(!exec.shutdown().unwrap());
    }

    #[test]
    fn stats_since_baseline_is_the_session_delta() {
        let s = space();
        let exec = Executor::new(pipe(&s), ExecutorConfig::default());
        exec.evaluate(&inst(&s, 1, 1)).unwrap();
        exec.evaluate(&inst(&s, 1, 1)).unwrap();
        let baseline = exec.stats();
        exec.evaluate(&inst(&s, 2, 1)).unwrap();
        exec.evaluate(&inst(&s, 1, 1)).unwrap();
        let delta = exec.stats().since(&baseline);
        assert_eq!(delta.new_executions, 1);
        assert_eq!(delta.cache_hits, 1);
        assert_eq!(ExecStats::default().since(&exec.stats()), ExecStats::default());
    }

    #[test]
    fn provenance_snapshot_reflects_runs() {
        let s = space();
        let exec = Executor::new(pipe(&s), ExecutorConfig::default());
        exec.evaluate(&inst(&s, 3, 1)).unwrap();
        exec.evaluate(&inst(&s, 1, 1)).unwrap();
        let prov = exec.provenance();
        assert_eq!(prov.len(), 2);
        assert_eq!(prov.failing().count(), 1);
        assert_eq!(exec.runs().len(), 2);
        exec.with_provenance_ref(|p| assert_eq!(p.len(), 2));
    }
}
