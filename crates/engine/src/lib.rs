//! # bugdoc-engine
//!
//! The execution layer of the BugDoc reproduction: the black-box
//! [`Pipeline`] abstraction, a caching/budgeted/parallel [`Executor`]
//! (the paper's "dispatching component ... spawns multiple pipeline
//! instances in parallel", §5), a virtual clock for the scalability study
//! (§5.2, Figure 6), historical-replay pipelines for the DBSherlock setting
//! (§5.3), and a failure-injection wrapper for robustness tests.

#![warn(missing_docs)]

mod command;
mod executor;
mod pipeline;

pub use command::{CommandEval, CommandPipeline};
pub use executor::{ExecError, ExecStats, Executor, ExecutorConfig, MemoryBudget, CACHE_SHARDS};
pub use pipeline::{FaultInjector, FnPipeline, HistoricalPipeline, Pipeline, PipelineError, SimTime};
// Durable-provenance vocabulary, re-exported so executor users configure
// persistence without naming `bugdoc-store` directly.
pub use bugdoc_store::{PersistConfig, PersistError, Recovery};
