//! The black-box pipeline abstraction.
//!
//! BugDoc "does not assume any knowledge of the internal code of the
//! computational processes: it was designed to debug black-box pipelines
//! where we can observe only the inputs and outputs" (paper §2). The only
//! interface a pipeline exposes is: its parameter space, and a way to execute
//! an instance and evaluate the result.

use bugdoc_core::{EvalResult, Instance, ParamSpace};
use std::fmt;
use std::sync::Arc;

/// Simulated execution cost of one pipeline instance, in seconds.
///
/// The paper's real pipelines take 20 minutes (Data Polygamy) to 10 hours
/// (GAN training) per instance; the engine's virtual clock accumulates these
/// costs under the configured worker count so the scalability experiments
/// (paper §5.2, Figure 6) measure schedule makespan rather than the
/// milliseconds our simulators actually take.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Zero cost.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Cost in seconds.
    pub fn from_secs(s: f64) -> Self {
        SimTime(s)
    }

    /// Cost in minutes.
    pub fn from_mins(m: f64) -> Self {
        SimTime(m * 60.0)
    }

    /// Cost in hours.
    pub fn from_hours(h: f64) -> Self {
        SimTime(h * 3600.0)
    }

    /// Seconds as `f64`.
    pub fn secs(self) -> f64 {
        self.0
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}s", self.0)
    }
}

/// Why a pipeline could not produce an evaluation for an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The instance cannot be executed in this setting — e.g. the DBSherlock
    /// scenario replays historical logs only, so instances absent from the
    /// logs are unavailable (paper §5.3: "an early stop when the pipeline
    /// instance to be tested was not present").
    Unavailable,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Unavailable => write!(f, "instance unavailable for execution"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// A black-box computational pipeline: parameters in, evaluation out.
///
/// Implementations must be deterministic per instance (paper §3, Def. 2 —
/// the provenance store enforces this) and thread-safe: the executor runs
/// instances from multiple workers concurrently (paper §4.3).
pub trait Pipeline: Send + Sync {
    /// The pipeline's parameter space (shared, immutable).
    fn space(&self) -> &Arc<ParamSpace>;

    /// Executes one instance and evaluates the result.
    fn execute(&self, instance: &Instance) -> Result<EvalResult, PipelineError>;

    /// The simulated execution cost of an instance. Defaults to one second;
    /// realistic pipelines override this (e.g. 20 min for Data Polygamy).
    fn cost(&self, _instance: &Instance) -> SimTime {
        SimTime::from_secs(1.0)
    }

    /// For pipelines that can only execute a *known finite set* of instances
    /// (historical replay, paper §5.3), the executable set; `None` for
    /// ordinary pipelines. Algorithms use this to direct their probes at
    /// instances that can actually be answered instead of sampling the full
    /// Cartesian product (which would early-stop on every request).
    fn available_instances(&self) -> Option<Vec<Instance>> {
        None
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &str {
        "pipeline"
    }
}

/// A pipeline defined by a closure — the usual way to wrap an evaluation
/// procedure around an existing computation in tests and examples.
pub struct FnPipeline<F> {
    space: Arc<ParamSpace>,
    f: F,
    cost: SimTime,
    name: String,
}

impl<F> FnPipeline<F>
where
    F: Fn(&Instance) -> EvalResult + Send + Sync,
{
    /// Wraps a closure as a pipeline with unit cost.
    pub fn new(space: Arc<ParamSpace>, f: F) -> Self {
        FnPipeline {
            space,
            f,
            cost: SimTime::from_secs(1.0),
            name: "fn-pipeline".to_string(),
        }
    }

    /// Sets the simulated per-instance cost.
    pub fn with_cost(mut self, cost: SimTime) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the report name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl<F> Pipeline for FnPipeline<F>
where
    F: Fn(&Instance) -> EvalResult + Send + Sync,
{
    fn space(&self) -> &Arc<ParamSpace> {
        &self.space
    }

    fn execute(&self, instance: &Instance) -> Result<EvalResult, PipelineError> {
        Ok((self.f)(instance))
    }

    fn cost(&self, _instance: &Instance) -> SimTime {
        self.cost
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A pipeline backed entirely by historical logs: instances present in the
/// log evaluate for free; anything else is [`PipelineError::Unavailable`].
///
/// This reproduces the DBSherlock setting (paper §5.3), where "it is not
/// possible to derive and run additional instances".
pub struct HistoricalPipeline {
    space: Arc<ParamSpace>,
    log: std::collections::HashMap<Instance, EvalResult>,
    name: String,
}

impl HistoricalPipeline {
    /// Builds a replay pipeline from `(instance, evaluation)` records.
    pub fn new(
        space: Arc<ParamSpace>,
        records: impl IntoIterator<Item = (Instance, EvalResult)>,
    ) -> Self {
        HistoricalPipeline {
            space,
            log: records.into_iter().collect(),
            name: "historical-replay".to_string(),
        }
    }

    /// Sets the report name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Number of instances available in the log.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// True if the log is empty.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// True if an instance can be replayed.
    pub fn contains(&self, instance: &Instance) -> bool {
        self.log.contains_key(instance)
    }
}

impl Pipeline for HistoricalPipeline {
    fn space(&self) -> &Arc<ParamSpace> {
        &self.space
    }

    fn execute(&self, instance: &Instance) -> Result<EvalResult, PipelineError> {
        self.log
            .get(instance)
            .copied()
            .ok_or(PipelineError::Unavailable)
    }

    fn cost(&self, _instance: &Instance) -> SimTime {
        // "Since we were dealing with historical data, the instance execution
        // time here is negligible" (paper §5.3).
        SimTime::ZERO
    }

    fn available_instances(&self) -> Option<Vec<Instance>> {
        // Deterministic order: HashMap iteration order varies across runs.
        let mut keys: Vec<Instance> = self.log.keys().cloned().collect();
        keys.sort_by(|a, b| a.values().cmp(b.values()));
        Some(keys)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Failure-injection wrapper: makes a deterministic subset of instances
/// unavailable, for testing algorithm robustness to execution gaps.
///
/// The subset is chosen by hashing the instance, so injection is
/// deterministic and independent of execution order.
pub struct FaultInjector<P> {
    inner: P,
    /// Instances whose hash falls below this fraction are unavailable.
    unavailable_fraction: f64,
}

impl<P: Pipeline> FaultInjector<P> {
    /// Wraps `inner`, making roughly `fraction` of instances unavailable.
    pub fn new(inner: P, fraction: f64) -> Self {
        FaultInjector {
            inner,
            unavailable_fraction: fraction.clamp(0.0, 1.0),
        }
    }

    fn is_injected(&self, instance: &Instance) -> bool {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        instance.hash(&mut h);
        // Map the hash to [0,1) and compare against the fraction.
        let unit = (h.finish() >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.unavailable_fraction
    }
}

impl<P: Pipeline> Pipeline for FaultInjector<P> {
    fn space(&self) -> &Arc<ParamSpace> {
        self.inner.space()
    }

    fn execute(&self, instance: &Instance) -> Result<EvalResult, PipelineError> {
        if self.is_injected(instance) {
            Err(PipelineError::Unavailable)
        } else {
            self.inner.execute(instance)
        }
    }

    fn cost(&self, instance: &Instance) -> SimTime {
        self.inner.cost(instance)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::{Outcome, ParamSpace, Value};

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder().ordinal("x", [1, 2, 3]).build()
    }

    fn inst(s: &ParamSpace, x: i64) -> Instance {
        Instance::from_pairs(s, [("x", Value::from(x))])
    }

    #[test]
    fn fn_pipeline_executes() {
        let s = space();
        let x = s.by_name("x").unwrap();
        let p = FnPipeline::new(s.clone(), move |i: &Instance| {
            EvalResult::of(Outcome::from_check(i.get(x) != &Value::from(3)))
        })
        .with_cost(SimTime::from_mins(20.0))
        .with_name("crashy");
        assert!(p.execute(&inst(&s, 1)).unwrap().outcome.is_succeed());
        assert!(p.execute(&inst(&s, 3)).unwrap().outcome.is_fail());
        assert_eq!(p.cost(&inst(&s, 1)).secs(), 1200.0);
        assert_eq!(p.name(), "crashy");
    }

    #[test]
    fn historical_pipeline_replays_and_stops_early() {
        let s = space();
        let p = HistoricalPipeline::new(
            s.clone(),
            [(inst(&s, 1), EvalResult::of(Outcome::Succeed))],
        );
        assert_eq!(p.len(), 1);
        assert!(p.contains(&inst(&s, 1)));
        assert!(p.execute(&inst(&s, 1)).is_ok());
        assert_eq!(p.execute(&inst(&s, 2)), Err(PipelineError::Unavailable));
        assert_eq!(p.cost(&inst(&s, 1)), SimTime::ZERO);
    }

    #[test]
    fn fault_injector_is_deterministic() {
        let s = space();
        let p = FaultInjector::new(
            FnPipeline::new(s.clone(), |_| EvalResult::of(Outcome::Succeed)),
            0.5,
        );
        for x in 1..=3 {
            let a = p.execute(&inst(&s, x)).is_err();
            let b = p.execute(&inst(&s, x)).is_err();
            assert_eq!(a, b, "injection must be deterministic per instance");
        }
    }

    #[test]
    fn fault_injector_extremes() {
        let s = space();
        let all = FaultInjector::new(
            FnPipeline::new(s.clone(), |_| EvalResult::of(Outcome::Succeed)),
            1.0,
        );
        let none = FaultInjector::new(
            FnPipeline::new(s.clone(), |_| EvalResult::of(Outcome::Succeed)),
            0.0,
        );
        for x in 1..=3 {
            assert!(all.execute(&inst(&s, x)).is_err());
            assert!(none.execute(&inst(&s, x)).is_ok());
        }
    }

    #[test]
    fn sim_time_arithmetic() {
        let mut t = SimTime::from_secs(30.0);
        t += SimTime::from_mins(1.0);
        assert_eq!(t.secs(), 90.0);
        assert_eq!((t + SimTime::from_hours(1.0)).secs(), 3690.0);
        assert_eq!(SimTime::from_secs(1.5).to_string(), "1.5s");
    }
}
