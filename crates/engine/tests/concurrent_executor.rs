//! Concurrency stress tests for the executor: accounting invariants, budget
//! enforcement, and outcome determinism must hold when `evaluate` and
//! `evaluate_batch` are driven from many threads at once.
//!
//! The invariants (see the executor's module docs):
//! * `new_executions == provenance.len() - seeded` — every recorded run is
//!   counted exactly once, even when two workers race on the same instance;
//! * `new_executions ≤ budget` — reservations never overrun;
//! * `cache_hits + new_executions + budget_refusals + unavailable == calls` —
//!   every request is classified exactly once;
//! * outcomes are deterministic per instance across all threads.

use bugdoc_core::{EvalResult, Instance, Outcome, ParamSpace, ProvenanceStore, Value};
use bugdoc_engine::{ExecError, Executor, ExecutorConfig, FnPipeline, Pipeline};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

fn space() -> Arc<ParamSpace> {
    ParamSpace::builder()
        .ordinal("a", (0..8).collect::<Vec<_>>())
        .ordinal("b", (0..8).collect::<Vec<_>>())
        .build()
}

fn pipeline(s: &Arc<ParamSpace>) -> Arc<dyn Pipeline> {
    let a = s.by_name("a").unwrap();
    Arc::new(FnPipeline::new(s.clone(), move |i: &Instance| {
        EvalResult::of(Outcome::from_check(i.get(a) != &Value::from(3)))
    }))
}

fn expected_outcome(s: &ParamSpace, inst: &Instance) -> Outcome {
    let a = s.by_name("a").unwrap();
    Outcome::from_check(inst.get(a) != &Value::from(3))
}

/// A deterministic pseudo-random instance pool with plenty of duplicates.
fn instance_pool(s: &ParamSpace, n: usize) -> Vec<Instance> {
    (0..n)
        .map(|k| {
            let mix = (k as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 32;
            Instance::from_pairs(
                s,
                [
                    ("a", Value::from((mix % 8) as i64)),
                    ("b", Value::from((mix / 8 % 8) as i64)),
                ],
            )
        })
        .collect()
}

#[test]
fn concurrent_evaluate_holds_invariants_under_budget() {
    for budget in [0usize, 3, 17, 1000] {
        let s = space();
        let exec = Executor::new(
            pipeline(&s),
            ExecutorConfig {
                workers: 4,
                budget: Some(budget),
                ..Default::default()
            },
        );
        let pool = instance_pool(&s, 400);
        let calls = AtomicUsize::new(0);
        let refusals = AtomicUsize::new(0);
        let observed: Mutex<HashMap<Instance, Outcome>> = Mutex::new(HashMap::new());

        std::thread::scope(|scope| {
            for t in 0..8 {
                let exec = &exec;
                let pool = &pool;
                let s = &s;
                let calls = &calls;
                let refusals = &refusals;
                let observed = &observed;
                scope.spawn(move || {
                    for k in 0..pool.len() / 2 {
                        let inst = &pool[(t * 37 + k * 3) % pool.len()];
                        calls.fetch_add(1, Ordering::SeqCst);
                        match exec.evaluate(inst) {
                            Ok(outcome) => {
                                assert_eq!(outcome, expected_outcome(s, inst));
                                let mut seen = observed.lock().unwrap();
                                if let Some(prev) = seen.insert(inst.clone(), outcome) {
                                    assert_eq!(prev, outcome, "non-deterministic outcome");
                                }
                            }
                            Err(ExecError::BudgetExhausted) => {
                                refusals.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(ExecError::Unavailable) => unreachable!(),
                        }
                    }
                });
            }
        });

        let stats = exec.stats();
        let prov = exec.provenance();
        assert!(
            stats.new_executions <= budget,
            "budget {budget} overrun: {}",
            stats.new_executions
        );
        assert_eq!(
            stats.new_executions,
            prov.len(),
            "every recorded run counted exactly once (budget {budget})"
        );
        assert_eq!(stats.budget_refusals, refusals.load(Ordering::SeqCst));
        assert_eq!(
            stats.cache_hits + stats.new_executions + stats.budget_refusals,
            calls.load(Ordering::SeqCst),
            "every call classified exactly once (budget {budget})"
        );
        // Everything answered agrees with the recorded provenance.
        for (inst, outcome) in observed.into_inner().unwrap() {
            assert_eq!(prov.outcome_of(&inst), Some(outcome));
        }
    }
}

#[test]
fn concurrent_batches_hold_invariants() {
    let s = space();
    let budget = 40usize;
    let exec = Executor::new(
        pipeline(&s),
        ExecutorConfig {
            workers: 3,
            budget: Some(budget),
            ..Default::default()
        },
    );
    let pool = instance_pool(&s, 300);
    let calls = AtomicUsize::new(0);
    let refusals = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for t in 0..5 {
            let exec = &exec;
            let pool = &pool;
            let s = &s;
            let calls = &calls;
            let refusals = &refusals;
            scope.spawn(move || {
                for round in 0..6 {
                    let start = (t * 53 + round * 17) % (pool.len() - 24);
                    let batch = &pool[start..start + 24];
                    calls.fetch_add(batch.len(), Ordering::SeqCst);
                    let results = exec.evaluate_batch(batch);
                    assert_eq!(results.len(), batch.len());
                    for (inst, res) in batch.iter().zip(&results) {
                        match res {
                            Ok(outcome) => assert_eq!(*outcome, expected_outcome(s, inst)),
                            Err(ExecError::BudgetExhausted) => {
                                refusals.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(ExecError::Unavailable) => unreachable!(),
                        }
                    }
                }
            });
        }
    });

    let stats = exec.stats();
    let prov = exec.provenance();
    assert!(stats.new_executions <= budget);
    assert_eq!(stats.new_executions, prov.len());
    assert_eq!(stats.budget_refusals, refusals.load(Ordering::SeqCst));
    assert_eq!(
        stats.cache_hits + stats.new_executions + stats.budget_refusals,
        calls.load(Ordering::SeqCst)
    );
}

/// Unbudgeted concurrent execution converges to exactly the sequential
/// provenance: same instance set, same outcomes.
#[test]
fn concurrent_and_sequential_provenance_agree() {
    let s = space();
    let pool = instance_pool(&s, 200);

    let seq = Executor::new(pipeline(&s), ExecutorConfig::default());
    for inst in &pool {
        seq.evaluate(inst).unwrap();
    }
    let seq_prov = seq.provenance();

    let par = Executor::new(pipeline(&s), ExecutorConfig::default());
    std::thread::scope(|scope| {
        for chunk in pool.chunks(25) {
            let par = &par;
            scope.spawn(move || {
                for inst in chunk {
                    par.evaluate(inst).unwrap();
                }
            });
        }
    });
    let par_prov = par.provenance();

    assert_eq!(seq_prov.len(), par_prov.len());
    for run in seq_prov.runs() {
        assert_eq!(
            par_prov.outcome_of(&run.instance),
            Some(run.outcome()),
            "disagreement on {}",
            run.instance.display(&s)
        );
    }
    assert_eq!(par.stats().new_executions, par_prov.len());
}

/// Seeded provenance is visible to every thread from the start and stays
/// free: zero budget, all answered.
#[test]
fn seeded_history_served_concurrently_with_zero_budget() {
    let s = space();
    let pool = instance_pool(&s, 100);
    let mut prov = ProvenanceStore::new(s.clone());
    for inst in &pool {
        prov.record(inst.clone(), EvalResult::of(expected_outcome(&s, inst)));
    }
    let seeded = prov.len();
    let exec = Executor::with_provenance(
        pipeline(&s),
        ExecutorConfig {
            workers: 4,
            budget: Some(0),
            ..Default::default()
        },
        prov,
    );
    std::thread::scope(|scope| {
        for t in 0..6 {
            let exec = &exec;
            let pool = &pool;
            let s = &s;
            scope.spawn(move || {
                for k in 0..200 {
                    let inst = &pool[(t + k * 7) % pool.len()];
                    assert_eq!(exec.evaluate(inst), Ok(expected_outcome(s, inst)));
                }
            });
        }
    });
    let stats = exec.stats();
    assert_eq!(stats.new_executions, 0);
    assert_eq!(stats.budget_refusals, 0);
    assert_eq!(stats.cache_hits, 6 * 200);
    assert_eq!(exec.provenance().len(), seeded);
}
