//! Eviction stress tests: many threads hammering a read cache sized well
//! below the working set.
//!
//! The memory-bounded executor's contract is that eviction is *invisible*
//! except in memory and latency: every evaluation still returns the
//! pipeline's deterministic outcome (never a stale or wrong one), and the
//! accounting invariant `new_executions == provenance.len() - seeded` holds
//! because a cache miss on a known instance re-derives from the provenance
//! log instead of re-executing.

use bugdoc_core::{EvalResult, Instance, Outcome, ParamSpace, ProvenanceStore, Value};
use bugdoc_engine::{Executor, ExecutorConfig, FnPipeline, MemoryBudget, Pipeline};
use std::sync::Arc;

const THREADS: usize = 6;
const ROUNDS: usize = 40;

fn space() -> Arc<ParamSpace> {
    ParamSpace::builder()
        .ordinal("x", (0..20).collect::<Vec<_>>())
        .ordinal("y", (0..10).collect::<Vec<_>>())
        .build()
}

/// Ground truth: failing iff x mod 7 == 3.
fn expected(space: &ParamSpace, inst: &Instance) -> Outcome {
    let x = space.by_name("x").unwrap();
    match inst.get(x) {
        Value::Int(v) => Outcome::from_check(v % 7 != 3),
        _ => unreachable!("x is an integer ordinal"),
    }
}

fn pipeline(s: &Arc<ParamSpace>) -> Arc<dyn Pipeline> {
    let space = s.clone();
    Arc::new(FnPipeline::new(s.clone(), move |i: &Instance| {
        EvalResult::of(expected(&space, i))
    }))
}

/// The working set: all 200 instances of the space.
fn working_set(s: &Arc<ParamSpace>) -> Vec<Instance> {
    s.instances().collect()
}

#[test]
fn hammered_quarter_sized_cache_never_serves_stale_or_reexecutes() {
    let s = space();
    let all = working_set(&s);
    let exec = Executor::new(
        pipeline(&s),
        ExecutorConfig {
            workers: 4,
            budget: None,
            memory: MemoryBudget::Entries(all.len() / 4), // 25% of the working set
            ..Default::default()
        },
    );

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let exec = &exec;
            let s = &s;
            let all = &all;
            scope.spawn(move || {
                // Each thread sweeps the working set in its own stride order
                // so shards see interleaved, conflicting access patterns.
                for round in 0..ROUNDS {
                    for k in 0..all.len() {
                        let inst = &all[(k * (2 * t + 3) + round * 17) % all.len()];
                        let outcome = exec.evaluate(inst).unwrap();
                        assert_eq!(
                            outcome,
                            expected(s, inst),
                            "stale/wrong outcome for {} (thread {t}, round {round})",
                            inst.display(s)
                        );
                    }
                }
            });
        }
    });

    let stats = exec.stats();
    let prov = exec.provenance();
    // Every distinct instance executed exactly once, eviction notwithstanding.
    assert_eq!(prov.len(), all.len());
    assert_eq!(
        stats.new_executions,
        prov.len(),
        "eviction must never be double-counted as a new execution"
    );
    let total_evals = THREADS * ROUNDS * all.len();
    assert_eq!(stats.cache_hits, total_evals - stats.new_executions);
    // The cache is a quarter of the working set: it must actually evict, and
    // misses on known instances must have been re-derived from the log.
    assert!(stats.evictions > 0, "no evictions at 25% capacity");
    assert!(stats.log_rederivations > 0, "no log re-derivations recorded");
    assert!(
        exec.cache_entries() <= all.len() / 4 + bugdoc_engine::CACHE_SHARDS,
        "cache exceeded its budget: {} entries",
        exec.cache_entries()
    );
    // And the provenance itself is exact: per-instance lookups all agree.
    for inst in &all {
        assert_eq!(prov.outcome_of(inst), Some(expected(&s, inst)));
    }
}

#[test]
fn seeded_provenance_counts_stay_exact_under_eviction() {
    let s = space();
    let all = working_set(&s);
    let seeded = all.len() / 2;
    let mut prov = ProvenanceStore::new(s.clone());
    for inst in all.iter().take(seeded) {
        prov.record(inst.clone(), EvalResult::of(expected(&s, inst)));
    }
    let exec = Executor::with_provenance(
        pipeline(&s),
        ExecutorConfig {
            workers: 4,
            budget: None,
            memory: MemoryBudget::Entries(all.len() / 4),
            ..Default::default()
        },
        prov,
    );

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let exec = &exec;
            let all = &all;
            scope.spawn(move || {
                for round in 0..ROUNDS / 2 {
                    for k in 0..all.len() {
                        let inst = &all[(k * (2 * t + 3) + round * 11) % all.len()];
                        exec.evaluate(inst).unwrap();
                    }
                }
            });
        }
    });

    let stats = exec.stats();
    let total = exec.provenance().len();
    assert_eq!(total, all.len());
    assert_eq!(
        stats.new_executions,
        total - seeded,
        "new_executions == provenance.len() - seeded must hold under eviction"
    );
    assert!(stats.evictions > 0);
}

#[test]
fn byte_budget_under_contention_is_also_exact() {
    let s = space();
    let all = working_set(&s);
    let exec = Executor::new(
        pipeline(&s),
        ExecutorConfig {
            workers: 4,
            budget: None,
            // ~72 bytes/entry × 200 entries ≈ 14 KiB unbounded; 2 KiB forces
            // heavy eviction.
            memory: MemoryBudget::Bytes(2 * 1024),
            ..Default::default()
        },
    );
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let exec = &exec;
            let s = &s;
            let all = &all;
            scope.spawn(move || {
                for round in 0..ROUNDS / 4 {
                    for k in 0..all.len() {
                        let inst = &all[(k * (t + 2) + round * 13) % all.len()];
                        assert_eq!(exec.evaluate(inst).unwrap(), expected(s, inst));
                    }
                }
            });
        }
    });
    let stats = exec.stats();
    assert_eq!(stats.new_executions, all.len());
    assert!(stats.evictions > 0);
}
