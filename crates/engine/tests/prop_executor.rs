//! Property tests for the execution engine: budget accounting, cache
//! coherence, batch/sequential agreement under arbitrary interleavings, and
//! virtual-clock bounds.

use bugdoc_core::{EvalResult, Instance, Outcome, ParamSpace, Value};
use bugdoc_engine::{ExecError, Executor, ExecutorConfig, FnPipeline, Pipeline, SimTime};
use proptest::prelude::*;
use std::sync::Arc;

fn space() -> Arc<ParamSpace> {
    ParamSpace::builder()
        .ordinal("a", [0, 1, 2, 3])
        .ordinal("b", [0, 1, 2, 3])
        .build()
}

fn inst(s: &ParamSpace, a: i64, b: i64) -> Instance {
    Instance::from_pairs(s, [("a", Value::from(a)), ("b", Value::from(b))])
}

fn pipeline(s: &Arc<ParamSpace>) -> Arc<dyn Pipeline> {
    let a = s.by_name("a").unwrap();
    Arc::new(
        FnPipeline::new(s.clone(), move |i: &Instance| {
            EvalResult::of(Outcome::from_check(i.get(a) != &Value::from(3)))
        })
        .with_cost(SimTime::from_secs(10.0)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Budget invariant: new_executions never exceeds the budget, cache hits
    /// are free, and every refusal is counted.
    #[test]
    fn budget_accounting(
        requests in proptest::collection::vec((0i64..4, 0i64..4), 1..32),
        budget in 0usize..10,
    ) {
        let s = space();
        let exec = Executor::new(
            pipeline(&s),
            ExecutorConfig { workers: 3, budget: Some(budget), ..Default::default() },
        );
        let mut distinct = std::collections::HashSet::new();
        let mut refused = 0usize;
        for (a, b) in requests {
            let i = inst(&s, a, b);
            match exec.evaluate(&i) {
                Ok(_) => {
                    distinct.insert(i);
                }
                Err(ExecError::BudgetExhausted) => refused += 1,
                Err(ExecError::Unavailable) => unreachable!(),
            }
        }
        let stats = exec.stats();
        prop_assert!(stats.new_executions <= budget);
        prop_assert_eq!(stats.new_executions, distinct.len().min(budget));
        prop_assert_eq!(stats.budget_refusals, refused);
        prop_assert_eq!(exec.provenance().len(), stats.new_executions);
    }

    /// Cache coherence: re-evaluating any executed instance returns the same
    /// outcome and performs no new execution.
    #[test]
    fn cache_coherent(requests in proptest::collection::vec((0i64..4, 0i64..4), 1..16)) {
        let s = space();
        let exec = Executor::new(pipeline(&s), ExecutorConfig::default());
        let mut first: std::collections::HashMap<Instance, Outcome> =
            std::collections::HashMap::new();
        for (a, b) in &requests {
            let i = inst(&s, *a, *b);
            let o = exec.evaluate(&i).unwrap();
            if let Some(prev) = first.insert(i, o) {
                prop_assert_eq!(prev, o);
            }
        }
        let execs_before = exec.stats().new_executions;
        for (i, o) in &first {
            prop_assert_eq!(exec.evaluate(i).unwrap(), *o);
        }
        prop_assert_eq!(exec.stats().new_executions, execs_before);
    }

    /// Batches of arbitrary composition (duplicates, cache hits, new work)
    /// agree positionally with sequential evaluation.
    #[test]
    fn batch_agrees_with_sequential(
        warmup in proptest::collection::vec((0i64..4, 0i64..4), 0..8),
        batch in proptest::collection::vec((0i64..4, 0i64..4), 1..24),
    ) {
        let s = space();
        let exec_batch = Executor::new(pipeline(&s), ExecutorConfig { workers: 4, budget: None, ..Default::default() });
        let exec_seq = Executor::new(pipeline(&s), ExecutorConfig { workers: 1, budget: None, ..Default::default() });
        for (a, b) in &warmup {
            exec_batch.evaluate(&inst(&s, *a, *b)).unwrap();
            exec_seq.evaluate(&inst(&s, *a, *b)).unwrap();
        }
        let items: Vec<Instance> = batch.iter().map(|(a, b)| inst(&s, *a, *b)).collect();
        let batch_out = exec_batch.evaluate_batch(&items);
        let seq_out: Vec<_> = items.iter().map(|i| exec_seq.evaluate(i)).collect();
        prop_assert_eq!(batch_out, seq_out);
        prop_assert_eq!(
            exec_batch.stats().new_executions,
            exec_seq.stats().new_executions
        );
    }

    /// Virtual-clock bounds: total time with w workers is between
    /// (total work / w) and total work; more workers never slow it down.
    #[test]
    fn virtual_clock_bounds(
        batch in proptest::collection::vec((0i64..4, 0i64..4), 1..16),
        workers in 1usize..8,
    ) {
        let s = space();
        let items: Vec<Instance> = batch.iter().map(|(a, b)| inst(&s, *a, *b)).collect();
        let distinct: std::collections::HashSet<&Instance> = items.iter().collect();
        let work = distinct.len() as f64 * 10.0;

        let exec = Executor::new(pipeline(&s), ExecutorConfig { workers, budget: None, ..Default::default() });
        exec.evaluate_batch(&items);
        let t = exec.stats().sim_time.secs();
        prop_assert!(t <= work + 1e-9);
        prop_assert!(t >= work / workers as f64 - 1e-9);
        // With at least one job, at least one job's cost elapses.
        prop_assert!(t >= 10.0 - 1e-9);
    }
}
