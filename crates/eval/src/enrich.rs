//! Explanation enrichment with observed variables (paper §6, future work).
//!
//! "Another potential direction is the inclusion of observed variables (or
//! predicates), properties that cannot be manipulated. While these cannot be
//! used for deriving new instances, they can help enrich the explanations."
//!
//! Observed variables are measurements a run *produces* rather than
//! parameters a debugger can set: peak memory, rows ingested, a warning
//! flag. This module takes the observations recorded alongside executed
//! instances and, for each asserted root cause, reports the observed
//! variables that are (a) constant across the failing runs the cause covers
//! and (b) rare among succeeding runs — e.g. "whenever
//! `permutations > 800 ∧ method = mc_permutation` fires, `oom_killed` was
//! observed `true`", which tells the human debugger *what the failure looks
//! like from inside*, not just which knobs trigger it.

use bugdoc_core::{Conjunction, Instance, Outcome, ParamSpace, ProvenanceStore, Value};
use std::collections::HashMap;
use std::fmt;

/// Observations recorded per executed instance: a fixed set of named
/// variables, one value vector per instance.
#[derive(Debug, Clone, Default)]
pub struct ObservationTable {
    names: Vec<String>,
    rows: HashMap<Instance, Vec<Value>>,
}

impl ObservationTable {
    /// Creates a table with the given observed-variable names.
    pub fn new(names: impl IntoIterator<Item = impl Into<String>>) -> Self {
        ObservationTable {
            names: names.into_iter().map(Into::into).collect(),
            rows: HashMap::new(),
        }
    }

    /// The observed-variable names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Records the observations of one executed instance (one value per
    /// variable, in name order).
    pub fn record(&mut self, instance: Instance, values: Vec<Value>) {
        assert_eq!(
            values.len(),
            self.names.len(),
            "one observation per variable"
        );
        self.rows.insert(instance, values);
    }

    /// The observations of an instance, if recorded.
    pub fn get(&self, instance: &Instance) -> Option<&[Value]> {
        self.rows.get(instance).map(|v| v.as_slice())
    }

    /// Number of instances with observations.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// One observed-variable correlate of a root cause.
#[derive(Debug, Clone, PartialEq)]
pub struct Correlate {
    /// The observed variable's name.
    pub variable: String,
    /// Its (constant) value across the failing runs the cause covers.
    pub value: Value,
    /// Fraction of *succeeding* runs showing the same value (low = the
    /// observation is genuinely failure-specific).
    pub background_rate: f64,
    /// Failing runs supporting the correlate.
    pub support: usize,
}

impl fmt::Display for Correlate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} = {} (in {} failing runs; background rate {:.0}%)",
            self.variable,
            self.value,
            self.support,
            self.background_rate * 100.0
        )
    }
}

/// An asserted cause plus its observed-variable correlates.
#[derive(Debug, Clone)]
pub struct EnrichedExplanation {
    /// The asserted root cause.
    pub cause: Conjunction,
    /// Correlated observations, strongest (lowest background rate) first.
    pub correlates: Vec<Correlate>,
}

impl EnrichedExplanation {
    /// Renders cause and correlates with parameter names.
    pub fn render(&self, space: &ParamSpace) -> String {
        let mut out = format!("{}", self.cause.display(space));
        for c in &self.correlates {
            out.push_str(&format!("\n    observed: {c}"));
        }
        out
    }
}

/// Enrichment configuration.
#[derive(Debug, Clone)]
pub struct EnrichConfig {
    /// Maximum background rate for a correlate to be reported.
    pub max_background_rate: f64,
    /// Minimum failing runs supporting a correlate.
    pub min_support: usize,
}

impl Default for EnrichConfig {
    fn default() -> Self {
        EnrichConfig {
            max_background_rate: 0.2,
            min_support: 2,
        }
    }
}

/// Enriches each asserted cause with the observed variables that are
/// constant over the failing runs it covers and rare among succeeding runs.
pub fn enrich_explanations(
    prov: &ProvenanceStore,
    observations: &ObservationTable,
    causes: &[Conjunction],
    config: &EnrichConfig,
) -> Vec<EnrichedExplanation> {
    // Pre-split runs with observations by outcome.
    let mut failing: Vec<(&Instance, &[Value])> = Vec::new();
    let mut succeeding: Vec<&[Value]> = Vec::new();
    for run in prov.runs() {
        if let Some(obs) = observations.get(&run.instance) {
            match run.outcome() {
                Outcome::Fail => failing.push((&run.instance, obs)),
                Outcome::Succeed => succeeding.push(obs),
            }
        }
    }

    causes
        .iter()
        .map(|cause| {
            let covered: Vec<&[Value]> = failing
                .iter()
                .filter(|(inst, _)| cause.satisfied_by(inst))
                .map(|(_, obs)| *obs)
                .collect();
            let mut correlates: Vec<Correlate> = Vec::new();
            if covered.len() >= config.min_support {
                for (vi, name) in observations.names().iter().enumerate() {
                    let first = &covered[0][vi];
                    if !covered.iter().all(|obs| &obs[vi] == first) {
                        continue; // not constant across the cause's failures
                    }
                    let background = if succeeding.is_empty() {
                        0.0
                    } else {
                        succeeding.iter().filter(|obs| &obs[vi] == first).count() as f64
                            / succeeding.len() as f64
                    };
                    if background <= config.max_background_rate {
                        correlates.push(Correlate {
                            variable: name.clone(),
                            value: first.clone(),
                            background_rate: background,
                            support: covered.len(),
                        });
                    }
                }
            }
            correlates.sort_by(|a, b| {
                a.background_rate
                    .partial_cmp(&b.background_rate)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            EnrichedExplanation {
                cause: cause.clone(),
                correlates,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::{EvalResult, ParamSpace, Predicate};
    use std::sync::Arc;

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .ordinal("perms", [100, 400, 1600])
            .categorical("method", ["mc", "bonferroni"])
            .build()
    }

    fn inst(s: &ParamSpace, perms: i64, method: &str) -> Instance {
        Instance::from_pairs(s, [("perms", perms.into()), ("method", method.into())])
    }

    /// The Data-Polygamy-flavoured setup: the OOM cause correlates with the
    /// `oom_killed` observation, never with `warnings`.
    fn setup(s: &Arc<ParamSpace>) -> (ProvenanceStore, ObservationTable, Conjunction) {
        let mut prov = ProvenanceStore::new(s.clone());
        let mut obs = ObservationTable::new(["oom_killed", "warnings"]);
        let record = |prov: &mut ProvenanceStore,
                      obs: &mut ObservationTable,
                      i: Instance,
                      fail: bool,
                      oom: bool,
                      warn: i64| {
            prov.record(i.clone(), EvalResult::of(Outcome::from_check(!fail)));
            obs.record(i, vec![Value::from(oom), Value::from(warn)]);
        };
        // Failing runs of the cause: always oom_killed, varying warnings.
        record(&mut prov, &mut obs, inst(s, 1600, "mc"), true, true, 3);
        let i2 = inst(s, 1600, "mc").with(s.by_name("perms").unwrap(), 1600.into());
        let _ = i2; // same instance; use a different satisfying one below
        // (the cause is perms=1600 ∧ method=mc; only one satisfying instance
        // exists in this tiny space, so add a second cause-region run via a
        // wider cause)
        let cause = Conjunction::new(vec![Predicate::eq(s.by_name("perms").unwrap(), 1600)]);
        record(&mut prov, &mut obs, inst(s, 1600, "bonferroni"), true, true, 7);
        // Succeeding runs: never oom_killed, warnings vary.
        record(&mut prov, &mut obs, inst(s, 100, "mc"), false, false, 3);
        record(&mut prov, &mut obs, inst(s, 400, "mc"), false, false, 0);
        record(&mut prov, &mut obs, inst(s, 400, "bonferroni"), false, false, 7);
        (prov, obs, cause)
    }

    #[test]
    fn constant_rare_observation_is_reported() {
        let s = space();
        let (prov, obs, cause) = setup(&s);
        let enriched =
            enrich_explanations(&prov, &obs, &[cause], &EnrichConfig::default());
        assert_eq!(enriched.len(), 1);
        let correlates = &enriched[0].correlates;
        assert_eq!(correlates.len(), 1, "only oom_killed correlates");
        assert_eq!(correlates[0].variable, "oom_killed");
        assert_eq!(correlates[0].value, Value::from(true));
        assert_eq!(correlates[0].support, 2);
        assert_eq!(correlates[0].background_rate, 0.0);
    }

    #[test]
    fn varying_observation_is_not_reported() {
        let s = space();
        let (prov, obs, cause) = setup(&s);
        let enriched =
            enrich_explanations(&prov, &obs, &[cause], &EnrichConfig::default());
        // `warnings` differs between the two failing runs (3 vs 7): dropped.
        assert!(enriched[0]
            .correlates
            .iter()
            .all(|c| c.variable != "warnings"));
    }

    #[test]
    fn common_background_value_is_not_reported() {
        let s = space();
        let mut prov = ProvenanceStore::new(s.clone());
        let mut obs = ObservationTable::new(["phase"]);
        // Every run, failing or not, observes phase = "load": useless.
        for (perms, method, fail) in [
            (1600, "mc", true),
            (1600, "bonferroni", true),
            (100, "mc", false),
            (400, "mc", false),
        ] {
            let i = inst(&s, perms, method);
            prov.record(i.clone(), EvalResult::of(Outcome::from_check(!fail)));
            obs.record(i, vec![Value::from("load")]);
        }
        let cause = Conjunction::new(vec![Predicate::eq(s.by_name("perms").unwrap(), 1600)]);
        let enriched =
            enrich_explanations(&prov, &obs, &[cause], &EnrichConfig::default());
        assert!(enriched[0].correlates.is_empty());
    }

    #[test]
    fn min_support_threshold() {
        let s = space();
        let mut prov = ProvenanceStore::new(s.clone());
        let mut obs = ObservationTable::new(["oom"]);
        let i = inst(&s, 1600, "mc");
        prov.record(i.clone(), EvalResult::of(Outcome::Fail));
        obs.record(i, vec![Value::from(true)]);
        let cause = Conjunction::new(vec![Predicate::eq(s.by_name("perms").unwrap(), 1600)]);
        // One failing run < min_support 2: no correlates.
        let enriched =
            enrich_explanations(&prov, &obs, &[cause], &EnrichConfig::default());
        assert!(enriched[0].correlates.is_empty());
    }

    #[test]
    fn render_includes_observations() {
        let s = space();
        let (prov, obs, cause) = setup(&s);
        let enriched =
            enrich_explanations(&prov, &obs, &[cause], &EnrichConfig::default());
        let text = enriched[0].render(&s);
        assert!(text.contains("perms = 1600"), "{text}");
        assert!(text.contains("observed: oom_killed = true"), "{text}");
    }

    #[test]
    fn runs_without_observations_are_skipped() {
        let s = space();
        let (mut prov, obs, cause) = setup(&s);
        // An extra failing run with no observations must not poison the
        // constancy check.
        prov.record(inst(&s, 1600, "mc").with(s.by_name("method").unwrap(), "mc".into()),
            EvalResult::of(Outcome::Fail));
        let enriched =
            enrich_explanations(&prov, &obs, &[cause], &EnrichConfig::default());
        assert_eq!(enriched[0].correlates.len(), 1);
    }

    #[test]
    #[should_panic(expected = "one observation per variable")]
    fn arity_mismatch_panics() {
        let s = space();
        let mut obs = ObservationTable::new(["a", "b"]);
        obs.record(inst(&s, 100, "mc"), vec![Value::from(1)]);
    }
}
