//! Holdout classification accuracy (paper §5.3, DBSherlock).
//!
//! "We create a 25% holdout to assess the accuracy of BugDoc's minimal root
//! causes as a classifier to predict when a pipeline instance will fail.
//! Precisely, if the pipeline instance is a superset of a minimal root
//! cause, we predict failure. This method is accurate 98% of the time."

use bugdoc_core::{Conjunction, EvalResult, Instance};

/// Confusion-matrix style summary of the holdout evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HoldoutReport {
    /// Failing instances predicted to fail.
    pub true_positives: usize,
    /// Succeeding instances predicted to succeed.
    pub true_negatives: usize,
    /// Succeeding instances predicted to fail.
    pub false_positives: usize,
    /// Failing instances predicted to succeed.
    pub false_negatives: usize,
}

impl HoldoutReport {
    /// Total instances scored.
    pub fn total(&self) -> usize {
        self.true_positives + self.true_negatives + self.false_positives + self.false_negatives
    }

    /// Fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.true_positives + self.true_negatives) as f64 / self.total() as f64
        }
    }
}

/// Scores the rule "predict fail iff the instance satisfies some asserted
/// cause" against labeled holdout data.
pub fn classify_holdout(
    causes: &[Conjunction],
    holdout: &[(Instance, EvalResult)],
) -> HoldoutReport {
    let mut report = HoldoutReport::default();
    for (inst, eval) in holdout {
        let predicted_fail = causes.iter().any(|c| c.satisfied_by(inst));
        let actually_fail = eval.outcome.is_fail();
        match (predicted_fail, actually_fail) {
            (true, true) => report.true_positives += 1,
            (false, false) => report.true_negatives += 1,
            (true, false) => report.false_positives += 1,
            (false, true) => report.false_negatives += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::{Outcome, ParamSpace, Predicate};

    #[test]
    fn perfect_causes_give_perfect_accuracy() {
        let space = ParamSpace::builder()
            .ordinal("a", [1, 2, 3])
            .ordinal("b", [1, 2, 3])
            .build();
        let a = space.by_name("a").unwrap();
        let cause = Conjunction::new(vec![Predicate::eq(a, 3)]);
        let holdout: Vec<(Instance, EvalResult)> = space
            .instances()
            .map(|inst| {
                let fail = cause.satisfied_by(&inst);
                (inst, EvalResult::of(Outcome::from_check(!fail)))
            })
            .collect();
        let report = classify_holdout(&[cause], &holdout);
        assert_eq!(report.accuracy(), 1.0);
        assert_eq!(report.false_positives + report.false_negatives, 0);
        assert_eq!(report.total(), 9);
    }

    #[test]
    fn missing_cause_costs_false_negatives() {
        let space = ParamSpace::builder().ordinal("a", [1, 2, 3]).build();
        let a = space.by_name("a").unwrap();
        let real = Conjunction::new(vec![Predicate::eq(a, 3)]);
        let holdout: Vec<(Instance, EvalResult)> = space
            .instances()
            .map(|inst| {
                let fail = real.satisfied_by(&inst);
                (inst, EvalResult::of(Outcome::from_check(!fail)))
            })
            .collect();
        // No causes asserted: all failures are missed.
        let report = classify_holdout(&[], &holdout);
        assert_eq!(report.false_negatives, 1);
        assert_eq!(report.true_negatives, 2);
        assert!((report.accuracy() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn overbroad_cause_costs_false_positives() {
        let space = ParamSpace::builder().ordinal("a", [1, 2, 3]).build();
        let a = space.by_name("a").unwrap();
        let real = Conjunction::new(vec![Predicate::eq(a, 3)]);
        let broad = Conjunction::new(vec![Predicate::new(a, bugdoc_core::Comparator::Gt, 1)]);
        let holdout: Vec<(Instance, EvalResult)> = space
            .instances()
            .map(|inst| {
                let fail = real.satisfied_by(&inst);
                (inst, EvalResult::of(Outcome::from_check(!fail)))
            })
            .collect();
        let report = classify_holdout(&[broad], &holdout);
        assert_eq!(report.false_positives, 1); // a = 2 predicted to fail
        assert_eq!(report.true_positives, 1);
    }

    #[test]
    fn empty_holdout() {
        assert_eq!(classify_holdout(&[], &[]).accuracy(), 0.0);
    }
}
