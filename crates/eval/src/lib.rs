//! # bugdoc-eval
//!
//! The evaluation harness of the BugDoc reproduction (paper §5): the exact
//! FindOne/FindAll precision–recall–F formulas, the budget-matched synthetic
//! comparison against Data X-Ray / Explanation Tables / SMAC (Figures 2–4),
//! the scalability sweeps (Figures 5–6), the holdout classifier accuracy
//! (DBSherlock, §5.3), and plain-text table rendering for the figure
//! binaries in `bugdoc-bench`.

#![warn(missing_docs)]

pub mod enrich;
pub mod experiment;
pub mod holdout;
pub mod metrics;
pub mod report;
pub mod scalability;

pub use enrich::{
    enrich_explanations, Correlate, EnrichConfig, EnrichedExplanation, ObservationTable,
};
pub use experiment::{
    run_scenario, BudgetGroup, ExperimentConfig, Goal, GroupResults, Method, MethodAggregate,
    ScenarioResults,
};
pub use holdout::{classify_holdout, HoldoutReport};
pub use metrics::{
    conciseness, find_all_metrics, find_one_metrics, score_assertions, Conciseness, Metrics,
    PipelineScore,
};
pub use report::{fmt1, fmt3, TextTable};
pub use scalability::{ddt_speedup, instances_vs_params, InstanceCount, SpeedupPoint};
