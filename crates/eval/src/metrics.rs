//! Precision, recall, and F-measure exactly as the paper defines them
//! (§5, "Evaluation Criteria") for the two goals:
//!
//! * **FindOne** — find at least one minimal definitive root cause per
//!   pipeline. Precision = `Σ [A∩R ≠ ∅] / (Σ [A∩R ≠ ∅] + Σ |A − R|)`;
//!   recall = `Σ [A∩R ≠ ∅] / |UCP|`.
//! * **FindAll** — find all minimal definitive root causes.
//!   Precision = `Σ |A∩R| / Σ |A|`; recall = `Σ |A∩R| / Σ |R|`.
//!
//! Asserted causes are matched against the ground truth *semantically*
//! (canonical product-form equality), so `n > 4` and `n = 5` over `{1..5}`
//! count as the same cause.

use bugdoc_core::{CanonicalCause, Conjunction, ParamSpace};
use bugdoc_synth::Truth;

/// Per-pipeline tallies from which both FindOne and FindAll metrics
/// aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineScore {
    /// `|R(CP)|` — actual minimal definitive root causes.
    pub n_actual: usize,
    /// `|A(CP)|` — asserted causes (semantically deduplicated).
    pub n_asserted: usize,
    /// `|A(CP) ∩ R(CP)|` — asserted causes that are actual.
    pub n_correct: usize,
}

impl PipelineScore {
    /// `|A − R|`: asserted causes that are not actual minimal causes.
    pub fn false_positives(&self) -> usize {
        self.n_asserted - self.n_correct
    }

    /// FindOne's indicator `A(CP) ∩ R(CP) ≠ ∅`.
    pub fn found_one(&self) -> bool {
        self.n_correct > 0
    }
}

/// Scores one pipeline's assertions against its ground truth.
pub fn score_assertions(
    space: &ParamSpace,
    truth: &Truth,
    asserted: &[Conjunction],
) -> PipelineScore {
    // Semantic dedup of the assertions.
    let mut canon: Vec<CanonicalCause> = Vec::new();
    for cause in asserted {
        let c = cause.canonicalize(space);
        if c.is_unsatisfiable() {
            continue; // vacuous assertions explain nothing
        }
        if !canon.contains(&c) {
            canon.push(c);
        }
    }
    let n_correct = canon
        .iter()
        .filter(|c| truth.minimal_causes().contains(c))
        .count();
    PipelineScore {
        n_actual: truth.len(),
        n_asserted: canon.len(),
        n_correct,
    }
}

/// Precision / recall / F-measure triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Precision in [0, 1] (1.0 when nothing was asserted and nothing found).
    pub precision: f64,
    /// Recall in [0, 1].
    pub recall: f64,
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub f_measure: f64,
}

impl Metrics {
    fn from_pr(precision: f64, recall: f64) -> Metrics {
        let f_measure = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        Metrics {
            precision,
            recall,
            f_measure,
        }
    }
}

/// Aggregates FindOne metrics over a set of pipelines `UCP`.
pub fn find_one_metrics(scores: &[PipelineScore]) -> Metrics {
    let found: usize = scores.iter().filter(|s| s.found_one()).count();
    let false_pos: usize = scores.iter().map(|s| s.false_positives()).sum();
    let precision = if found + false_pos > 0 {
        found as f64 / (found + false_pos) as f64
    } else {
        0.0
    };
    let recall = if scores.is_empty() {
        0.0
    } else {
        found as f64 / scores.len() as f64
    };
    Metrics::from_pr(precision, recall)
}

/// Aggregates FindAll metrics over a set of pipelines `UCP`.
pub fn find_all_metrics(scores: &[PipelineScore]) -> Metrics {
    let correct: usize = scores.iter().map(|s| s.n_correct).sum();
    let asserted: usize = scores.iter().map(|s| s.n_asserted).sum();
    let actual: usize = scores.iter().map(|s| s.n_actual).sum();
    let precision = if asserted > 0 {
        correct as f64 / asserted as f64
    } else {
        0.0
    };
    let recall = if actual > 0 {
        correct as f64 / actual as f64
    } else {
        0.0
    };
    Metrics::from_pr(precision, recall)
}

/// Conciseness measures for Figure 4.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Conciseness {
    /// (a) Average number of parameters per asserted root cause.
    pub params_per_cause: f64,
    /// (b) Average `log10(|A| / |R|)` over pipelines that asserted anything.
    pub log_asserted_per_actual: f64,
}

/// Computes Figure-4 conciseness over per-pipeline assertion sets.
/// `per_pipeline` pairs each pipeline's asserted causes with its `|R|`.
pub fn conciseness(
    space: &ParamSpace,
    per_pipeline: &[(Vec<Conjunction>, usize)],
) -> Conciseness {
    let mut param_counts: Vec<usize> = Vec::new();
    let mut ratios: Vec<f64> = Vec::new();
    for (asserted, n_actual) in per_pipeline {
        for cause in asserted {
            // Count distinct *parameters*, not raw predicates (a range
            // `> lo ∧ ≤ hi` constrains one parameter).
            let canon = cause.canonicalize(space);
            param_counts.push(canon.masks().len());
        }
        if !asserted.is_empty() && *n_actual > 0 {
            ratios.push((asserted.len() as f64 / *n_actual as f64).log10());
        }
    }
    Conciseness {
        params_per_cause: mean(&param_counts.iter().map(|&c| c as f64).collect::<Vec<_>>()),
        log_asserted_per_actual: mean(&ratios),
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::{Comparator, Dnf, Predicate};
    use std::sync::Arc;

    fn setup() -> (Arc<ParamSpace>, Truth) {
        let space = ParamSpace::builder()
            .ordinal("n", [1, 2, 3, 4, 5])
            .categorical("color", ["red", "green", "blue"])
            .build();
        let n = space.by_name("n").unwrap();
        let color = space.by_name("color").unwrap();
        let truth = Truth::new(
            &space,
            Dnf::new(vec![
                Conjunction::new(vec![Predicate::eq(n, 5)]),
                Conjunction::new(vec![Predicate::eq(color, "red")]),
            ]),
        );
        (space, truth)
    }

    #[test]
    fn semantic_matching_counts_rewrites() {
        let (space, truth) = setup();
        let n = space.by_name("n").unwrap();
        // n > 4 ≡ n = 5 over {1..5}.
        let asserted = vec![Conjunction::new(vec![Predicate::new(n, Comparator::Gt, 4)])];
        let score = score_assertions(&space, &truth, &asserted);
        assert_eq!(score.n_correct, 1);
        assert_eq!(score.n_asserted, 1);
        assert_eq!(score.n_actual, 2);
        assert!(score.found_one());
    }

    #[test]
    fn duplicates_and_unsat_are_dropped() {
        let (space, truth) = setup();
        let n = space.by_name("n").unwrap();
        let asserted = vec![
            Conjunction::new(vec![Predicate::eq(n, 5)]),
            Conjunction::new(vec![Predicate::new(n, Comparator::Gt, 4)]), // duplicate
            Conjunction::new(vec![
                Predicate::new(n, Comparator::Le, 1),
                Predicate::new(n, Comparator::Gt, 2), // unsatisfiable
            ]),
        ];
        let score = score_assertions(&space, &truth, &asserted);
        assert_eq!(score.n_asserted, 1);
        assert_eq!(score.n_correct, 1);
    }

    #[test]
    fn find_one_formulas() {
        // Three pipelines: found-with-1-fp, found-clean, missed-with-2-fp.
        let scores = [
            PipelineScore { n_actual: 1, n_asserted: 2, n_correct: 1 },
            PipelineScore { n_actual: 2, n_asserted: 1, n_correct: 1 },
            PipelineScore { n_actual: 1, n_asserted: 2, n_correct: 0 },
        ];
        let m = find_one_metrics(&scores);
        // found = 2, false positives = 1 + 0 + 2 = 3.
        assert!((m.precision - 2.0 / 5.0).abs() < 1e-12);
        assert!((m.recall - 2.0 / 3.0).abs() < 1e-12);
        let expect_f = 2.0 * m.precision * m.recall / (m.precision + m.recall);
        assert!((m.f_measure - expect_f).abs() < 1e-12);
    }

    #[test]
    fn find_all_formulas() {
        let scores = [
            PipelineScore { n_actual: 2, n_asserted: 2, n_correct: 2 },
            PipelineScore { n_actual: 3, n_asserted: 4, n_correct: 1 },
        ];
        let m = find_all_metrics(&scores);
        assert!((m.precision - 3.0 / 6.0).abs() < 1e-12);
        assert!((m.recall - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_aggregates() {
        assert_eq!(find_one_metrics(&[]).recall, 0.0);
        let nothing = [PipelineScore::default()];
        assert_eq!(find_one_metrics(&nothing).precision, 0.0);
        assert_eq!(find_all_metrics(&nothing).f_measure, 0.0);
    }

    #[test]
    fn conciseness_counts_parameters_not_predicates() {
        let (space, _) = setup();
        let n = space.by_name("n").unwrap();
        let color = space.by_name("color").unwrap();
        // A range on one parameter = 1 parameter; plus a color pin = 2.
        let range = Conjunction::new(vec![
            Predicate::new(n, Comparator::Gt, 1),
            Predicate::new(n, Comparator::Le, 3),
        ]);
        let two = Conjunction::new(vec![Predicate::eq(n, 5), Predicate::eq(color, "red")]);
        let c = conciseness(&space, &[(vec![range, two], 1)]);
        assert!((c.params_per_cause - 1.5).abs() < 1e-12);
        // 2 asserted / 1 actual -> log10(2).
        assert!((c.log_asserted_per_actual - 2.0f64.log10()).abs() < 1e-12);
    }

    #[test]
    fn conciseness_skips_empty_assertions() {
        let (space, _) = setup();
        let c = conciseness(&space, &[(vec![], 2)]);
        assert_eq!(c.params_per_cause, 0.0);
        assert_eq!(c.log_asserted_per_actual, 0.0);
    }
}
