//! Plain-text table rendering shared by the figure/table binaries: aligned
//! columns, no dependencies, suitable for `EXPERIMENTS.md` transcription.

/// A simple column-aligned text table.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let n = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..n {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        let mut out = render_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (n - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio-like metric to three decimals.
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a mean count to one decimal.
pub fn fmt1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["method", "precision", "recall"]);
        t.row(vec!["BugDoc".into(), "1.000".into(), "0.950".into()]);
        t.row(vec!["DataXRay+SMAC".into(), "0.310".into(), "0.870".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("method"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "precision" starts at the same offset in all rows.
        let col = lines[0].find("precision").unwrap();
        assert_eq!(&lines[2][col..col + 5], "1.000");
        assert_eq!(&lines[3][col..col + 5], "0.310");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        TextTable::new(&["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt3(0.5), "0.500");
        assert_eq!(fmt1(12.34), "12.3");
    }
}
