//! The scalability studies (paper §5.2, Figures 5 and 6).
//!
//! * **Figure 5** — instances executed per algorithm as the parameter count
//!   grows: Shortcut and Stacked Shortcut are linear by construction; DDT
//!   "has no simple relationship with root causes and could be exponential".
//! * **Figure 6** — speedup of DDT FindAll as execution workers are added.
//!   The engine's virtual clock measures the makespan of the verification
//!   batches at a fixed per-instance cost, which is exactly the quantity a
//!   wall clock would measure on slow real pipelines.

use bugdoc_algorithms::{
    debugging_decision_trees, shortcut, stacked_shortcut, DdtConfig, DdtMode, ShortcutConfig,
    StackedConfig,
};
use bugdoc_engine::{Executor, ExecutorConfig, Pipeline, SimTime};
use bugdoc_synth::{CauseScenario, SynthConfig, SyntheticPipeline};
use std::sync::Arc;

/// One Figure-5 data point: mean instances executed at a parameter count.
#[derive(Debug, Clone, Copy)]
pub struct InstanceCount {
    /// Number of pipeline parameters.
    pub n_params: usize,
    /// Mean new executions by Shortcut.
    pub shortcut: f64,
    /// Mean new executions by Stacked Shortcut (k = 4).
    pub stacked: f64,
    /// Mean new executions by Debugging Decision Trees (FindAll).
    pub ddt: f64,
}

/// Runs the Figure-5 sweep: `repeats` pipelines per parameter count.
pub fn instances_vs_params(
    param_counts: &[usize],
    repeats: usize,
    seed: u64,
) -> Vec<InstanceCount> {
    param_counts
        .iter()
        .map(|&n_params| {
            let mut sums = [0usize; 3];
            for r in 0..repeats {
                let pipe_seed = seed
                    .wrapping_add((n_params * 1000 + r) as u64)
                    .wrapping_mul(0x9e3779b97f4a7c15);
                let config = SynthConfig {
                    n_params: (n_params, n_params),
                    n_values: (5, 10),
                    scenario: CauseScenario::SingleConjunction,
                    ..SynthConfig::default()
                };
                let pipeline = Arc::new(SyntheticPipeline::generate(&config, pipe_seed));
                let seeds = pipeline.seed_history(2, 6, pipe_seed ^ 0xfeed);

                for (idx, algo) in ["shortcut", "stacked", "ddt"].iter().enumerate() {
                    let mut prov =
                        bugdoc_core::ProvenanceStore::new(pipeline.space().clone());
                    for (inst, eval) in &seeds {
                        prov.record(inst.clone(), *eval);
                    }
                    let exec = Executor::with_provenance(
                        pipeline.clone() as Arc<dyn Pipeline>,
                        ExecutorConfig {
                            workers: 5,
                            budget: None,
                            ..Default::default()
                        },
                        prov,
                    );
                    match *algo {
                        "shortcut" => {
                            let cp_f =
                                exec.with_provenance_ref(|p| p.first_failing().cloned()).unwrap();
                            let cp_g = exec.with_provenance_ref(|p| {
                                p.disjoint_successes(&cp_f)
                                    .next()
                                    .cloned()
                                    .or_else(|| p.most_different_success(&cp_f).cloned())
                            });
                            if let Some(cp_g) = cp_g {
                                let _ = shortcut(&exec, &cp_f, &cp_g, &ShortcutConfig::default());
                            }
                        }
                        "stacked" => {
                            let _ = stacked_shortcut(
                                &exec,
                                &StackedConfig {
                                    seed: pipe_seed,
                                    ..StackedConfig::default()
                                },
                            );
                        }
                        _ => {
                            let _ = debugging_decision_trees(
                                &exec,
                                &DdtConfig {
                                    mode: DdtMode::FindAll,
                                    seed: pipe_seed,
                                    ..DdtConfig::default()
                                },
                            );
                        }
                    }
                    sums[idx] += exec.stats().new_executions;
                }
            }
            InstanceCount {
                n_params,
                shortcut: sums[0] as f64 / repeats as f64,
                stacked: sums[1] as f64 / repeats as f64,
                ddt: sums[2] as f64 / repeats as f64,
            }
        })
        .collect()
}

/// One Figure-6 data point: DDT FindAll under a worker count.
#[derive(Debug, Clone, Copy)]
pub struct SpeedupPoint {
    /// Execution workers (cores).
    pub workers: usize,
    /// Mean virtual makespan (seconds) of the run.
    pub sim_time_secs: f64,
    /// Mean instances executed.
    pub instances: f64,
    /// Mean instances processed per core.
    pub instances_per_core: f64,
    /// Speedup relative to the 1-worker run.
    pub speedup: f64,
}

/// Runs the Figure-6 sweep: DDT FindAll on the same pipelines at each worker
/// count, with a fixed 20-minute per-instance cost (the Data Polygamy rate).
pub fn ddt_speedup(worker_counts: &[usize], repeats: usize, seed: u64) -> Vec<SpeedupPoint> {
    let mut points: Vec<SpeedupPoint> = Vec::new();
    let mut base_time: Option<f64> = None;
    for &workers in worker_counts {
        let mut time_sum = 0.0;
        let mut inst_sum = 0usize;
        for r in 0..repeats {
            let pipe_seed = seed
                .wrapping_add(r as u64)
                .wrapping_mul(0x9e3779b97f4a7c15);
            let config = SynthConfig {
                n_params: (6, 6),
                n_values: (5, 8),
                scenario: CauseScenario::DisjunctionOfConjunctions,
                instance_cost: SimTime::from_mins(20.0),
                ..SynthConfig::default()
            };
            let pipeline = Arc::new(SyntheticPipeline::generate(&config, pipe_seed));
            let seeds = pipeline.seed_history(2, 6, pipe_seed ^ 0xfeed);
            let mut prov = bugdoc_core::ProvenanceStore::new(pipeline.space().clone());
            for (inst, eval) in &seeds {
                prov.record(inst.clone(), *eval);
            }
            let exec = Executor::with_provenance(
                pipeline.clone() as Arc<dyn Pipeline>,
                ExecutorConfig {
                    workers,
                    budget: None,
                    ..Default::default()
                },
                prov,
            );
            let _ = debugging_decision_trees(
                &exec,
                &DdtConfig {
                    mode: DdtMode::FindAll,
                    verification_samples: 16,
                    seed: pipe_seed,
                    ..DdtConfig::default()
                },
            );
            let stats = exec.stats();
            time_sum += stats.sim_time.secs();
            inst_sum += stats.new_executions;
        }
        let mean_time = time_sum / repeats as f64;
        let mean_inst = inst_sum as f64 / repeats as f64;
        let base = *base_time.get_or_insert(mean_time);
        points.push(SpeedupPoint {
            workers,
            sim_time_secs: mean_time,
            instances: mean_inst,
            instances_per_core: mean_inst / workers as f64,
            speedup: if mean_time > 0.0 { base / mean_time } else { 1.0 },
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shortcut_family_is_linear_in_params() {
        let points = instances_vs_params(&[3, 6, 9], 3, 7);
        assert_eq!(points.len(), 3);
        // Shortcut executes ≤ |P| instances per run (walk) and Stacked ≤
        // k·|P| + probes; both grow with |P| but stay near-linear.
        for p in &points {
            assert!(
                p.shortcut <= p.n_params as f64 + 1.0,
                "shortcut used {} at {} params",
                p.shortcut,
                p.n_params
            );
            assert!(p.stacked >= p.shortcut * 0.9, "stacking runs more walks");
        }
        // Monotone-ish growth for shortcut between the extremes.
        assert!(points[2].shortcut >= points[0].shortcut * 0.9);
    }

    #[test]
    fn ddt_uses_more_instances_than_shortcut() {
        let points = instances_vs_params(&[5], 3, 11);
        assert!(points[0].ddt >= points[0].shortcut);
    }

    #[test]
    fn speedup_grows_with_workers() {
        let points = ddt_speedup(&[1, 4], 2, 3);
        assert_eq!(points.len(), 2);
        assert!((points[0].speedup - 1.0).abs() < 1e-9);
        assert!(
            points[1].speedup > 1.2,
            "4 workers gave speedup {}",
            points[1].speedup
        );
        assert!(points[1].instances_per_core < points[0].instances_per_core);
    }
}
