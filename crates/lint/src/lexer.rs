//! A minimal Rust lexer: good enough to separate *code* from comments and
//! literal contents, and to track brace nesting — which is all the rule
//! engine needs. Not a parser; it never builds a syntax tree.
//!
//! For every source line the scan produces:
//!
//! * `code` — the line with comments removed and the *interiors* of string /
//!   raw-string / char / byte literals blanked to spaces (delimiters kept, so
//!   columns are stable and token boundaries survive). Rules pattern-match
//!   against this text only, so a forbidden token inside a string or comment
//!   never fires.
//! * `comment` — the concatenated text of any comments on the line (line,
//!   block, and doc comments alike). Allow-annotations and justification
//!   comments are parsed out of this.
//! * `depth_start` / `depth_end` — brace nesting depth at the start and end
//!   of the line, counted over code only. This is what makes block scanning
//!   (guard lifetimes, `#[cfg(test)]` modules, block-scoped allows)
//!   nesting-aware.
//! * `is_test` — the line sits inside a `#[cfg(test)] mod … { … }` block.

/// One scanned source line.
#[derive(Debug)]
pub struct Line {
    /// Masked code: comments stripped, literal interiors blanked.
    pub code: String,
    /// Concatenated comment text on this line (empty if none).
    pub comment: String,
    /// Brace depth at the start of the line.
    pub depth_start: u32,
    /// Brace depth at the end of the line.
    pub depth_end: u32,
    /// Inside a `#[cfg(test)]` module block.
    pub is_test: bool,
}

/// A whole scanned file.
#[derive(Debug)]
pub struct Scan {
    /// Per-line scan results, in order (line numbers are index + 1).
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    /// Block comment with nesting depth (Rust block comments nest).
    Block(u32),
    Str,
    RawStr {
        hashes: u32,
    },
    Char,
}

/// Lexes `source` into per-line masked code + comments + nesting depths.
pub fn lex(source: &str) -> Scan {
    let mut lines = Vec::new();
    let mut state = State::Code;
    let mut depth: u32 = 0;
    for raw in source.lines() {
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::with_capacity(chars.len());
        let mut comment = String::new();
        let depth_start = depth;
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        comment.push_str(&raw[char_byte_offset(raw, i)..]);
                        break;
                    }
                    '/' if next == Some('*') => {
                        state = State::Block(1);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    '"' => {
                        // Possibly the body of r"…" / b"…" handled below; a
                        // bare quote starts a plain string.
                        state = State::Str;
                        code.push('"');
                    }
                    'r' | 'b' if is_raw_or_byte_literal_start(&chars, i) => {
                        let (kind, consumed) = literal_prefix(&chars, i);
                        for _ in 0..consumed {
                            code.push(chars[i]);
                            i += 1;
                        }
                        state = kind;
                        // The opening quote itself.
                        code.push(chars[i]);
                    }
                    '\'' => {
                        if char_literal_starts(&chars, i) {
                            state = State::Char;
                            code.push('\'');
                        } else {
                            // A lifetime: keep the tick and the label as code.
                            code.push('\'');
                        }
                    }
                    '{' => {
                        depth += 1;
                        code.push('{');
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        code.push('}');
                    }
                    _ => code.push(c),
                },
                State::Block(d) => {
                    if c == '*' && next == Some('/') {
                        state = if d > 1 { State::Block(d - 1) } else { State::Code };
                        comment.push(' ');
                        i += 2;
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        state = State::Block(d + 1);
                        i += 2;
                        continue;
                    }
                    comment.push(c);
                }
                State::Str => match c {
                    '\\' => {
                        code.push(' ');
                        if next.is_some() {
                            code.push(' ');
                            i += 1;
                        }
                    }
                    '"' => {
                        state = State::Code;
                        code.push('"');
                    }
                    _ => code.push(' '),
                },
                State::RawStr { hashes } => {
                    if c == '"' && closes_raw(&chars, i, hashes) {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push('#');
                            i += 1;
                        }
                        state = State::Code;
                    } else {
                        code.push(' ');
                    }
                }
                State::Char => match c {
                    '\\' => {
                        code.push(' ');
                        if next.is_some() {
                            code.push(' ');
                            i += 1;
                        }
                    }
                    '\'' => {
                        state = State::Code;
                        code.push('\'');
                    }
                    _ => code.push(' '),
                },
            }
            i += 1;
        }
        // A plain string or char literal cannot span lines unless escaped;
        // an unterminated char literal at EOL was a lifetime misread — recover.
        if state == State::Char {
            state = State::Code;
        }
        lines.push(Line {
            code,
            comment,
            depth_start,
            depth_end: depth,
            is_test: false,
        });
    }
    let mut scan = Scan { lines };
    mark_test_blocks(&mut scan);
    scan
}

/// Byte offset of the `i`-th char in `s` (lines are short; linear is fine).
fn char_byte_offset(s: &str, i: usize) -> usize {
    s.char_indices().nth(i).map(|(b, _)| b).unwrap_or(s.len())
}

/// Does `chars[i..]` start a raw string (`r"` / `r#`) or byte literal
/// (`b"` / `b'` / `br`)? Requires the previous char to not be part of an
/// identifier (so `var` ending in `r` is not misread).
fn is_raw_or_byte_literal_start(chars: &[char], i: usize) -> bool {
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        match chars.get(j) {
            Some('\'') | Some('"') => return true,
            Some('r') => j += 1,
            _ => return false,
        }
    } else if chars[j] == 'r' {
        j += 1;
    } else {
        return false;
    }
    // After `r` / `br`: hashes then a quote, or a quote directly.
    while let Some('#') = chars.get(j) {
        j += 1;
    }
    matches!(chars.get(j), Some('"'))
}

/// Classifies the literal starting at `i` (see
/// [`is_raw_or_byte_literal_start`]) and returns its state plus how many
/// prefix chars (`r`, `b`, hashes) precede the opening quote.
fn literal_prefix(chars: &[char], i: usize) -> (State, usize) {
    let mut j = i;
    let mut raw = false;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) == Some(&'r') {
            raw = true;
            j += 1;
        }
    } else {
        raw = true;
        j += 1;
    }
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    match chars.get(j) {
        Some('\'') => (State::Char, j - i),
        _ if raw => (State::RawStr { hashes }, j - i),
        _ => (State::Str, j - i),
    }
}

/// Does the `"` at `i` terminate a raw string with `hashes` trailing `#`s?
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguishes a char literal `'x'` / `'\n'` from a lifetime `'a`.
fn char_literal_starts(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Marks every line inside a `#[cfg(test)] mod … { … }` block as test code.
/// The attribute applies to the next code line; if that line opens a `mod`
/// block, the block is test from the `mod` line to the line where depth
/// returns to the `mod` line's starting depth.
fn mark_test_blocks(scan: &mut Scan) {
    let mut pending_attr = false;
    let mut i = 0;
    while i < scan.lines.len() {
        let code = scan.lines[i].code.clone();
        let has_code = !code.trim().is_empty();
        if code.contains("#[cfg(test)]") {
            pending_attr = true;
            // Same-line `#[cfg(test)] mod t { … }` is handled below.
            if !code.contains("mod ") {
                i += 1;
                continue;
            }
        }
        if pending_attr && has_code {
            if code.contains("mod ") {
                let base = scan.lines[i].depth_start;
                let mut j = i;
                loop {
                    scan.lines[j].is_test = true;
                    if scan.lines[j].depth_end <= base && scan.lines[j].code.contains('}') {
                        break;
                    }
                    j += 1;
                    if j >= scan.lines.len() {
                        break;
                    }
                }
                i = j + 1;
                pending_attr = false;
                continue;
            }
            // `#[cfg(test)]` on a non-mod item: only that item's line (and
            // its block, if it opens one) is test code.
            if !code.contains("#[") {
                let base = scan.lines[i].depth_start;
                let opens = scan.lines[i].depth_end > base;
                let mut j = i;
                loop {
                    scan.lines[j].is_test = true;
                    if !opens || (scan.lines[j].depth_end <= base && j > i) {
                        break;
                    }
                    j += 1;
                    if j >= scan.lines.len() {
                        break;
                    }
                }
                i = j + 1;
                pending_attr = false;
                continue;
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_stripped_and_captured() {
        let s = lex("let x = 1; // trailing note\n/* block */ let y = 2;");
        assert!(s.lines[0].code.contains("let x = 1;"));
        assert!(!s.lines[0].code.contains("trailing"));
        assert!(s.lines[0].comment.contains("trailing note"));
        assert!(s.lines[1].code.contains("let y = 2;"));
        assert!(s.lines[1].comment.contains("block"));
    }

    #[test]
    fn string_interiors_are_blanked() {
        let s = lex("let s = \"panic! { } .unwrap()\"; s.len();");
        assert!(!s.lines[0].code.contains("panic!"));
        assert!(!s.lines[0].code.contains(".unwrap()"));
        assert!(s.lines[0].code.contains("s.len();"));
        assert_eq!(s.lines[0].depth_end, 0, "braces in strings don't count");
    }

    #[test]
    fn raw_strings_and_escapes() {
        let s = lex("let r = r#\"has \"quotes\" and { braces }\"#; let t = 1;");
        assert!(s.lines[0].code.contains("let t = 1;"));
        assert_eq!(s.lines[0].depth_end, 0);
        let s = lex("let q = \"esc \\\" quote\"; done();");
        assert!(s.lines[0].code.contains("done();"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let s = lex("fn f<'a>(x: &'a str) -> char { '{' }");
        // The brace char literal must not affect depth.
        assert_eq!(s.lines[0].depth_end, 0);
        let s = lex("let c = '\\n'; let open = '{';");
        assert_eq!(s.lines[0].depth_end, 0);
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let s = lex("/* outer /* inner */ still */ code();\n/* a\nb */ after();");
        assert!(s.lines[0].code.contains("code();"));
        assert!(s.lines[1].code.trim().is_empty());
        assert!(s.lines[2].code.contains("after();"));
    }

    #[test]
    fn depth_tracks_braces() {
        let s = lex("fn f() {\n    if x {\n    }\n}\n");
        assert_eq!(s.lines[0].depth_start, 0);
        assert_eq!(s.lines[0].depth_end, 1);
        assert_eq!(s.lines[1].depth_end, 2);
        assert_eq!(s.lines[3].depth_end, 0);
    }

    #[test]
    fn cfg_test_mod_blocks_are_marked() {
        let src = "fn hot() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn cold() {}\n";
        let s = lex(src);
        assert!(!s.lines[0].is_test);
        assert!(s.lines[2].is_test);
        assert!(s.lines[3].is_test);
        assert!(s.lines[4].is_test);
        assert!(!s.lines[5].is_test);
    }
}
