//! `bugdoc-lint` — the workspace invariant checker.
//!
//! PRs 1–7 accumulated load-bearing contracts that existed only as prose in
//! ROADMAP.md: the kernel autovectorization contract, the sharded-lock
//! discipline, panic-freedom on the hot paths, the atomic-ordering audit,
//! and the WAL codec's checked-cast rule. This crate machine-enforces them
//! on every build: a zero-dependency lexer (comments, strings, raw strings,
//! char literals, nesting-aware block scanning) feeds a rule engine that
//! walks every workspace `.rs` file. Findings fail the build (the binary
//! exits non-zero, and `tests/workspace_clean.rs` runs the same scan under
//! `cargo test`).
//!
//! Rules are cataloged in [`rules::RULES`] and documented contract-by-
//! contract in `docs/INVARIANTS.md`. Each has a stable ID and an escape
//! hatch — an `allow(<rule>, reason = "...")` comment annotation prefixed
//! with the lint marker — that *requires* a reviewable reason (a
//! reason-less allow is itself a finding, L001).

pub mod lexer;
pub mod rules;

pub use rules::{lint_source, known_rule, Finding, RuleInfo, RULES};

use std::path::{Path, PathBuf};

/// A whole-workspace lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, ordered by path then line.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Directories never descended into: build output, VCS internals, and the
/// lint's own rule fixtures (which contain deliberate violations).
fn skip_dir(name: &str) -> bool {
    name == "target" || name.starts_with('.') || name == "fixtures"
}

/// Collects every workspace `.rs` file under `root`, sorted for
/// deterministic reports.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !skip_dir(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints every `.rs` file under `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    for path in workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&path)?;
        report.findings.extend(lint_source(&rel, &source));
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

/// Renders the report as JSON (hand-rolled: the crate is std-only).
pub fn to_json(report: &Report) -> String {
    let mut s = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            escape_json(f.rule),
            escape_json(&f.path),
            f.line,
            escape_json(&f.message)
        ));
    }
    if !report.findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str(&format!(
        "],\n  \"files_scanned\": {},\n  \"finding_count\": {}\n}}\n",
        report.files_scanned,
        report.findings.len()
    ));
    s
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when invoked through
/// cargo (run or test), falling back to the current directory.
pub fn default_root() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map(|d| {
            let p = PathBuf::from(d);
            p.parent()
                .and_then(Path::parent)
                .map(Path::to_path_buf)
                .unwrap_or(p)
        })
        .unwrap_or_else(|| PathBuf::from("."))
}
