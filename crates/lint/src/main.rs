//! `bugdoc-lint` binary: lints the workspace (or explicit paths) and exits
//! non-zero on findings. `--list-rules` catalogs the enforced contracts,
//! `--json` emits a machine-readable report.

use bugdoc_lint::{default_root, lint_source, lint_workspace, to_json, Report, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: bugdoc-lint [--list-rules] [--json] [path ...]\n\
    \n\
    With no paths, lints every .rs file under the workspace root.\n\
    Exits 0 when clean, 1 on findings, 2 on usage or I/O errors.";

fn main() -> ExitCode {
    let mut json = false;
    let mut list = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--list-rules" => list = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("bugdoc-lint: unknown flag {flag}\n{USAGE}");
                return ExitCode::from(2);
            }
            p => paths.push(PathBuf::from(p)),
        }
    }
    if list {
        for rule in RULES {
            println!("{}  {:24} {}", rule.id, rule.name, compact(rule.summary));
        }
        return ExitCode::SUCCESS;
    }

    let report = if paths.is_empty() {
        let root = default_root();
        match lint_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bugdoc-lint: failed to scan {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        let mut report = Report::default();
        for path in &paths {
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("bugdoc-lint: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let rel = path.to_string_lossy().replace('\\', "/");
            report.findings.extend(lint_source(&rel, &source));
            report.files_scanned += 1;
        }
        report
    };

    if json {
        print!("{}", to_json(&report));
    } else {
        for f in &report.findings {
            println!("{} {}:{}: {}", f.rule, f.path, f.line, f.message);
        }
        println!(
            "bugdoc-lint: {} finding{} in {} file{} scanned",
            report.findings.len(),
            if report.findings.len() == 1 { "" } else { "s" },
            report.files_scanned,
            if report.files_scanned == 1 { "" } else { "s" },
        );
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One-line summaries for the rule listing (the registry wraps them for
/// rustdoc; the terminal wants them flat).
fn compact(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}
