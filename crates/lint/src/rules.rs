//! The rule registry and the per-file rule engine.
//!
//! Every rule has a stable ID, fires on masked code only (see
//! [`crate::lexer`]), and can be silenced per site with
//!
//! ```text
//! // lint: allow(W003, reason = "why this site is exempt")
//! // lint: allow(W003, scope = "block", reason = "covers the whole block")
//! ```
//!
//! A line-scoped allow covers the code line it is attached to (the same
//! line for a trailing comment, the next code line otherwise) plus the two
//! following lines, so multi-line statements need one annotation, not three.
//! A block-scoped allow covers the attached line's entire brace block —
//! attach it to a `fn` signature to exempt the whole function. An allow
//! without a non-empty `reason` is itself a finding (L001): the escape
//! hatch must leave a reviewable trail.

use crate::lexer::{lex, Scan};

/// One rule violation (or a malformed allow-annotation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule ID (`W001`–`W008`, `L001`).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

/// A rule's registry entry, shown by `--list-rules`.
pub struct RuleInfo {
    /// Stable ID.
    pub id: &'static str,
    /// Short name.
    pub name: &'static str,
    /// One-line contract statement.
    pub summary: &'static str,
}

/// Every rule the engine knows, in ID order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "W001",
        name: "kernel-containment",
        summary: "word-granularity bit loops (u64 iteration + &/|/count_ones) live in \
                  crates/core/src/kernels.rs or crates/store/src/crc32.rs only — compose \
                  the kernels, don't re-open word loops",
    },
    RuleInfo {
        id: "W002",
        name: "lock-hold-discipline",
        summary: "a .read()/.write() guard binding must not live across .execute(), \
                  fsync/sync_all/sync_data, or File::/OpenOptions calls in its block \
                  (the executor-stall shape PR 1's sharding removed)",
    },
    RuleInfo {
        id: "W003",
        name: "hot-path-panic-freedom",
        summary: "no unwrap/expect/panic!/unreachable!/todo! or non-literal slice \
                  indexing in the declared hot modules (kernels, provenance, executor \
                  evaluate, WAL frame encode/decode); kernels.rs is exempt from the \
                  index facet — its autovectorization contract licenses \
                  chunk-granularity indexing",
    },
    RuleInfo {
        id: "W004",
        name: "atomic-ordering-audit",
        summary: "every Ordering::Relaxed site carries a justification comment \
                  (mentioning \"relaxed\", same line or up to 3 lines above) or an \
                  allow-annotation",
    },
    RuleInfo {
        id: "W005",
        name: "checked-wal-casts",
        summary: "no `as u32` / `as u64` casts in crates/store/src/{frame,wal,crc32}.rs \
                  — use try_into/try_from (or annotate a provably-widening cast)",
    },
    RuleInfo {
        id: "W006",
        name: "print-containment",
        summary: "no println!/print!/eprintln!/eprint!/dbg! or process::exit outside \
                  crates/cli, bin targets, examples, and tests",
    },
    RuleInfo {
        id: "W007",
        name: "nonblocking-serve-handlers",
        summary: "no blocking file/subprocess calls (File::/OpenOptions, \
                  fsync/sync_all/sync_data, .execute(), std::fs::, process::Command) \
                  in crates/serve non-test code — session handlers route work to the \
                  shared executor; sockets, files, and signals belong to the CLI",
    },
    RuleInfo {
        id: "W008",
        name: "wait-free-telemetry",
        summary: "telemetry record paths (crates/telemetry non-test code outside \
                  registry.rs) never lock, allocate, or block — a recorder is a bounded \
                  sequence of atomic ops; and the fixed atomic-bucket-array idiom \
                  ([AtomicU64; N]) stays in crates/telemetry — instrument through its \
                  handles, don't re-open metric storage",
    },
    RuleInfo {
        id: "L001",
        name: "malformed-allow",
        summary: "a `// lint: allow(...)` annotation must name a known rule and carry \
                  a non-empty reason",
    },
];

/// True if `id` is a known rule ID.
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Hot modules for W003 (panic facet): panics here abort diagnosis mid-run
/// or tear durability guarantees.
const HOT_MODULES: &[&str] = &[
    "crates/core/src/kernels.rs",
    "crates/core/src/provenance.rs",
    "crates/engine/src/executor.rs",
    "crates/store/src/frame.rs",
    "crates/store/src/wal.rs",
];

/// Hot modules for W003's index facet. `kernels.rs` is deliberately absent:
/// its autovectorization contract *requires* chunk-granularity indexing
/// (see the module docs there), and W001 keeps word loops from leaking out
/// of it.
const INDEX_HOT_MODULES: &[&str] = &[
    "crates/core/src/provenance.rs",
    "crates/engine/src/executor.rs",
    "crates/store/src/frame.rs",
    "crates/store/src/wal.rs",
];

/// Files allowed to contain word-granularity bit loops (W001).
const KERNEL_HOMES: &[&str] = &["crates/core/src/kernels.rs", "crates/store/src/crc32.rs"];

/// Files under W005's checked-cast contract: the WAL codec, where a
/// truncating cast silently corrupts a frame instead of erroring.
const WAL_CODEC: &[&str] = &[
    "crates/store/src/frame.rs",
    "crates/store/src/wal.rs",
    "crates/store/src/crc32.rs",
];

/// An allow-annotation's coverage.
#[derive(Debug)]
struct Allow {
    rule: String,
    /// Covered lines, 0-based inclusive range.
    from: usize,
    to: usize,
}

/// Lints one file's source text. `rel_path` is the workspace-relative path
/// with `/` separators — several rules are scoped by path.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let scan = lex(source);
    let (allows, mut findings) = collect_allows(rel_path, &scan);
    rule_w001(rel_path, &scan, &mut findings);
    rule_w002(rel_path, &scan, &mut findings);
    rule_w003(rel_path, &scan, &mut findings);
    rule_w004(rel_path, &scan, &mut findings);
    rule_w005(rel_path, &scan, &mut findings);
    rule_w006(rel_path, &scan, &mut findings);
    rule_w007(rel_path, &scan, &mut findings);
    rule_w008(rel_path, &scan, &mut findings);
    findings.retain(|f| {
        f.rule == "L001"
            || !allows
                .iter()
                .any(|a| a.rule == f.rule && (a.from..=a.to).contains(&(f.line - 1)))
    });
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Parses every allow annotation (a `lint:`-prefixed comment). Malformed ones
/// (unknown rule, missing/empty reason) become L001 findings; well-formed
/// ones become [`Allow`] coverage ranges.
fn collect_allows(rel_path: &str, scan: &Scan) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    // Annotations on comment-only lines queue up for the next code line.
    let mut pending: Vec<(usize, String)> = Vec::new(); // (annotation line, rule)
    for (i, line) in scan.lines.iter().enumerate() {
        let mut here: Vec<String> = Vec::new();
        let mut rest = line.comment.as_str();
        while let Some(at) = rest.find("lint:") {
            rest = &rest[at + 5..];
            let trimmed = rest.trim_start();
            let Some(open) = trimmed.strip_prefix("allow(") else {
                if trimmed.starts_with("allow") {
                    findings.push(finding(
                        "L001",
                        rel_path,
                        i,
                        "malformed allow annotation: expected `allow(<rule>, reason = \"...\")`",
                    ));
                }
                continue;
            };
            // The closing paren, skipping any inside the quoted reason.
            let Some(close) = close_paren(open) else {
                findings.push(finding("L001", rel_path, i, "unterminated allow annotation"));
                continue;
            };
            let body = &open[..close];
            rest = &open[close + 1..];
            match parse_allow_body(body) {
                Ok(rule) => here.push(rule),
                Err(msg) => findings.push(finding("L001", rel_path, i, msg)),
            }
        }
        let has_code = !line.code.trim().is_empty();
        if has_code {
            for rule in here {
                allows.push(coverage(scan, i, rule));
            }
            for (_, rule) in pending.drain(..) {
                allows.push(coverage(scan, i, rule));
            }
        } else {
            for rule in here {
                pending.push((i, rule));
            }
        }
    }
    // Annotations at EOF with no following code line: cover nothing, but
    // they were still validated above.
    (allows, findings)
}

/// The byte offset of the `(`-matching `)` in `s` (which starts just past
/// the opening paren), skipping parens inside a quoted reason string.
fn close_paren(s: &str) -> Option<usize> {
    let mut in_quote = false;
    for (at, c) in s.char_indices() {
        match c {
            '"' => in_quote = !in_quote,
            ')' if !in_quote => return Some(at),
            _ => {}
        }
    }
    None
}

/// The coverage range of an allow attached to code line `i`: block-scoped
/// annotations cover `i`'s whole brace block (the block opened on `i` or
/// within the next nine lines, so a `fn` signature wrapped across several
/// parameter lines still reaches its own `{` — attach to a `fn` signature
/// to cover the function), line-scoped ones cover `i..=i+2`.
fn coverage(scan: &Scan, i: usize, rule: String) -> Allow {
    if let Some(stripped) = rule.strip_prefix("block:") {
        let base = scan.lines[i].depth_start;
        // Find the opener: the first of lines i..=i+9 that ends deeper than
        // the attachment point (a `fn f(…) {` signature, possibly wrapped).
        let opener = (i..scan.lines.len().min(i + 10)).find(|&k| scan.lines[k].depth_end > base);
        if let Some(k) = opener {
            let mut j = k;
            while j + 1 < scan.lines.len() && scan.lines[j].depth_end > base {
                j += 1;
            }
            return Allow { rule: stripped.to_string(), from: i, to: j };
        }
        // No block opened: degrade to line scope.
        return Allow { rule: stripped.to_string(), from: i, to: i + 2 };
    }
    Allow { rule, from: i, to: i + 2 }
}

/// Parses `W003, reason = "..."` (optionally with `scope = "block"`).
/// Returns the rule ID, prefixed with `block:` for block scope.
fn parse_allow_body(body: &str) -> Result<String, String> {
    let mut parts = body.splitn(2, ',');
    let rule = parts.next().unwrap_or("").trim().to_string();
    if !known_rule(&rule) {
        return Err(format!("allow names unknown rule {rule:?}"));
    }
    let tail = parts.next().unwrap_or("").trim();
    let scope_block = tail.contains("scope = \"block\"") || tail.contains("scope=\"block\"");
    let reason_ok = ["reason = \"", "reason=\""].iter().any(|k| {
        tail.find(k)
            .map(|at| {
                let v = &tail[at + k.len()..];
                v.find('"').map(|q| !v[..q].trim().is_empty()).unwrap_or(false)
            })
            .unwrap_or(false)
    });
    if !reason_ok {
        return Err(format!(
            "allow({rule}) must carry a non-empty reason = \"...\""
        ));
    }
    Ok(if scope_block { format!("block:{rule}") } else { rule })
}

fn finding(rule: &'static str, path: &str, line0: usize, msg: impl Into<String>) -> Finding {
    Finding {
        rule,
        path: path.to_string(),
        line: line0 + 1,
        message: msg.into(),
    }
}

/// Is the path test-ish (integration tests, examples, benches, fixtures)?
/// Rules that exempt test code skip these wholesale.
fn test_path(rel: &str) -> bool {
    rel.split('/')
        .any(|c| matches!(c, "tests" | "examples" | "benches" | "fixtures"))
}

/// Paths allowed to print / exit: the CLI crate, bin targets, and test-ish
/// code.
fn print_allowed_path(rel: &str) -> bool {
    rel.starts_with("crates/cli/")
        || rel.ends_with("/main.rs")
        || rel == "main.rs"
        || rel.split('/').any(|c| c == "bin")
        || test_path(rel)
}

/// W001 — word loops stay in the kernel homes. Fires when a 3-line window
/// of non-test code combines an iteration construct, a word-combining op
/// (`count_ones(` / `&=` / `|=`), and a word-ish operand signal.
fn rule_w001(rel: &str, scan: &Scan, out: &mut Vec<Finding>) {
    if KERNEL_HOMES.contains(&rel) || test_path(rel) {
        return;
    }
    const ITER: &[&str] = &[
        "for ", "while ", ".iter(", ".iter_mut(", ".map(", ".zip(", ".fold(", ".chunks",
        ".windows(",
    ];
    const BITOP: &[&str] = &["count_ones(", "&=", "|="];
    const WORDISH: &[&str] = &["u64", "word", "bit"];
    let lines = &scan.lines;
    for i in 0..lines.len() {
        if lines[i].is_test {
            continue;
        }
        let Some(op) = BITOP.iter().find(|t| lines[i].code.contains(*t)) else {
            continue;
        };
        let lo = i.saturating_sub(2);
        let window: Vec<&str> = (lo..=i)
            .filter(|&j| !lines[j].is_test)
            .map(|j| lines[j].code.as_str())
            .collect();
        let has = |toks: &[&str]| toks.iter().any(|t| window.iter().any(|w| w.contains(t)));
        if has(ITER) && has(WORDISH) {
            out.push(finding(
                "W001",
                rel,
                i,
                format!(
                    "word-granularity bit loop ({op:?} under iteration) outside the kernel \
                     homes — compose crates/core/src/kernels.rs instead"
                ),
            ));
        }
    }
}

/// W002 — no blocking calls while a lock guard is live. Finds `let g =
/// ….read();` / `….write();` bindings and scans the guard's block (up to a
/// `drop(g)`) for execute/fsync/file-open tokens.
fn rule_w002(rel: &str, scan: &Scan, out: &mut Vec<Finding>) {
    if test_path(rel) {
        return;
    }
    const FORBIDDEN: &[&str] = &[
        ".execute(",
        "fsync",
        "sync_all",
        "sync_data",
        "File::",
        "OpenOptions",
    ];
    let lines = &scan.lines;
    for i in 0..lines.len() {
        let code = &lines[i].code;
        if lines[i].is_test || !code.contains("let ") {
            continue;
        }
        let guard_kind = if code.contains(".read()") {
            ".read()"
        } else if code.contains(".write()") {
            ".write()"
        } else {
            continue;
        };
        let name = binding_name(code);
        let base = lines[i].depth_start;
        // The guard lives from its binding line until the enclosing block
        // closes (first line whose end depth drops below the binding's
        // start depth) or an explicit drop(guard).
        let mut j = i;
        loop {
            let line = &lines[j];
            // The binding line itself can contain a forbidden call
            // (`let g = x.write(); g.execute(…);` squeezed on one line).
            if let Some(tok) = FORBIDDEN.iter().find(|t| line.code.contains(*t)) {
                out.push(finding(
                    "W002",
                    rel,
                    j,
                    format!(
                        "{tok} while the {guard_kind} guard from line {} is live — \
                         narrow the guard scope or drop() it first",
                        i + 1
                    ),
                ));
            }
            if let Some(n) = &name {
                if j > i && line.code.contains(&format!("drop({n})")) {
                    break;
                }
            }
            if j > i && line.depth_end < base {
                break;
            }
            j += 1;
            if j >= lines.len() {
                break;
            }
        }
    }
}

fn binding_name(code: &str) -> Option<String> {
    let after = code.split("let ").nth(1)?;
    let after = after.trim_start().trim_start_matches("mut ").trim_start();
    let name: String = after
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() { None } else { Some(name) }
}

/// W003 — panic-freedom in the declared hot modules.
fn rule_w003(rel: &str, scan: &Scan, out: &mut Vec<Finding>) {
    let panics_apply = HOT_MODULES.contains(&rel);
    let index_applies = INDEX_HOT_MODULES.contains(&rel);
    if !panics_apply && !index_applies {
        return;
    }
    const PANIC: &[&str] = &[
        ".unwrap()",
        ".expect(",
        "panic!",
        "unreachable!",
        "todo!",
        "unimplemented!",
    ];
    for (i, line) in scan.lines.iter().enumerate() {
        if line.is_test || line.code.contains("debug_assert") {
            continue;
        }
        if panics_apply {
            if let Some(tok) = PANIC.iter().find(|t| line.code.contains(*t)) {
                out.push(finding(
                    "W003",
                    rel,
                    i,
                    format!("{tok} in hot module — return an error or justify with an allow"),
                ));
            }
        }
        if index_applies {
            if let Some(expr) = non_literal_index(&line.code) {
                out.push(finding(
                    "W003",
                    rel,
                    i,
                    format!(
                        "possibly-panicking slice index `[{expr}]` in hot module — use \
                         get()/iterators or justify with an allow"
                    ),
                ));
            }
        }
    }
}

/// Finds the first non-literal index expression `recv[…]` on a masked code
/// line. Pure integer-literal indices (`c[0]`) are exempt: they are the
/// kernel accumulator idiom and either always or never panic. Keyword
/// receivers (`mut [u64]`, `in […]`) and macro/attribute brackets are not
/// indexing.
fn non_literal_index(code: &str) -> Option<String> {
    const KEYWORDS: &[&str] = &[
        "mut", "ref", "in", "as", "return", "match", "if", "else", "move", "dyn", "impl",
        "where", "box",
    ];
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] != '[' {
            i += 1;
            continue;
        }
        // The receiver: last non-space char before the bracket.
        let mut p = i;
        while p > 0 && chars[p - 1] == ' ' {
            p -= 1;
        }
        let prev = if p > 0 { chars[p - 1] } else { ' ' };
        let is_recv = prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']';
        if !is_recv {
            i += 1;
            continue;
        }
        // Identifier ending at prev — skip keywords posing as receivers.
        let mut s = p;
        while s > 0 && (chars[s - 1].is_alphanumeric() || chars[s - 1] == '_') {
            s -= 1;
        }
        let ident: String = chars[s..p].iter().collect();
        if KEYWORDS.contains(&ident.as_str()) {
            i += 1;
            continue;
        }
        // A lifetime (`&'a [u8]`) is a slice type, not an indexing receiver.
        if s > 0 && chars[s - 1] == '\'' {
            i += 1;
            continue;
        }
        // Matching close bracket (nesting-aware).
        let mut depth = 1;
        let mut j = i + 1;
        while j < chars.len() && depth > 0 {
            match chars[j] {
                '[' => depth += 1,
                ']' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let inner: String = chars[i + 1..j.saturating_sub(1)].iter().collect();
        let trimmed = inner.trim();
        let literal = !trimmed.is_empty()
            && trimmed.chars().all(|c| c.is_ascii_digit() || c == '_');
        if !literal {
            return Some(trimmed.to_string());
        }
        i = j;
    }
    None
}

/// W004 — every `Ordering::Relaxed` carries a nearby justification comment
/// mentioning "relaxed" (same line or up to 3 lines above).
fn rule_w004(rel: &str, scan: &Scan, out: &mut Vec<Finding>) {
    if test_path(rel) {
        return;
    }
    for (i, line) in scan.lines.iter().enumerate() {
        if line.is_test || !line.code.contains("Ordering::Relaxed") {
            continue;
        }
        let lo = i.saturating_sub(3);
        let justified = (lo..=i)
            .any(|j| scan.lines[j].comment.to_ascii_lowercase().contains("relaxed"));
        if !justified {
            out.push(finding(
                "W004",
                rel,
                i,
                "Ordering::Relaxed without a justification comment (mention \"relaxed\" \
                 within 3 lines above, or allow-annotate)",
            ));
        }
    }
}

/// W005 — no `as u32` / `as u64` in the WAL codec files.
fn rule_w005(rel: &str, scan: &Scan, out: &mut Vec<Finding>) {
    if !WAL_CODEC.contains(&rel) {
        return;
    }
    for (i, line) in scan.lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        for cast in ["as u32", "as u64"] {
            if let Some(at) = line.code.find(cast) {
                // Token boundaries: ` as u32` not `has u32x`.
                let before_ok = at == 0
                    || !line.code[..at]
                        .chars()
                        .next_back()
                        .map(|c| c.is_alphanumeric() || c == '_')
                        .unwrap_or(false);
                let after = &line.code[at + cast.len()..];
                let after_ok = after
                    .chars()
                    .next()
                    .map(|c| !c.is_alphanumeric() && c != '_')
                    .unwrap_or(true);
                if before_ok && after_ok {
                    out.push(finding(
                        "W005",
                        rel,
                        i,
                        format!(
                            "truncatable `{cast}` in the WAL codec — use try_into/try_from \
                             so an oversized value errors instead of corrupting a frame"
                        ),
                    ));
                }
            }
        }
    }
}

/// W007 — session handlers in `crates/serve` never block on files or
/// subprocesses. A handler thread that opens/fsyncs a file or shells out
/// stalls every session multiplexed on the daemon; durable I/O belongs to
/// the executor (whose own threads the factory configured), and sockets,
/// files, and signal handling belong to the CLI front end. Scoped by
/// directory, not a file list, so new serve modules are covered by default.
fn rule_w007(rel: &str, scan: &Scan, out: &mut Vec<Finding>) {
    if !rel.starts_with("crates/serve/") || test_path(rel) {
        return;
    }
    const FORBIDDEN: &[&str] = &[
        ".execute(",
        "fsync",
        "sync_all",
        "sync_data",
        "File::",
        "OpenOptions",
        "std::fs::",
        "process::Command",
        "Command::new(",
    ];
    for (i, line) in scan.lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        if let Some(tok) = FORBIDDEN.iter().find(|t| line.code.contains(*t)) {
            out.push(finding(
                "W007",
                rel,
                i,
                format!(
                    "{tok} on a serve session-handler path — handlers must not block \
                     on files or subprocesses; route the work through the shared \
                     executor or the injected factory (sockets, files, and signals \
                     belong to the CLI)"
                ),
            ));
        }
    }
}

/// W008 — telemetry record paths stay wait-free. Two facets. Inside
/// `crates/telemetry` (every non-test module except `registry.rs`, whose
/// registration/render side runs once per site and once per scrape, never
/// per sample): no locking, allocation, or blocking calls — a recorder
/// must be a bounded sequence of atomic ops, or a stalled recorder stalls
/// the very path it was meant to observe. Outside `crates/telemetry`: the
/// fixed atomic-bucket-array storage idiom (`[AtomicU64; N]`) is not
/// re-opened — instrument through the telemetry handles so every metric
/// shows up in one registry and one exposition.
fn rule_w008(rel: &str, scan: &Scan, out: &mut Vec<Finding>) {
    if test_path(rel) {
        return;
    }
    let record_path = rel.starts_with("crates/telemetry/src/")
        && rel != "crates/telemetry/src/registry.rs";
    if record_path {
        const FORBIDDEN: &[&str] = &[
            ".lock()",
            "Mutex",
            "RwLock",
            "Condvar",
            "Box::new(",
            "Vec::new(",
            "vec!",
            "format!",
            ".to_string(",
            "String::",
            "File::",
            "OpenOptions",
            "std::fs::",
            "process::Command",
            "thread::sleep",
        ];
        for (i, line) in scan.lines.iter().enumerate() {
            if line.is_test {
                continue;
            }
            if let Some(tok) = FORBIDDEN.iter().find(|t| line.code.contains(*t)) {
                out.push(finding(
                    "W008",
                    rel,
                    i,
                    format!(
                        "{tok} on a telemetry record path — recorders are wait-free \
                         (bounded atomic ops only); locking, allocation, and blocking \
                         belong to registry.rs's registration/render side"
                    ),
                ));
            }
        }
    } else if !rel.starts_with("crates/telemetry/") {
        for (i, line) in scan.lines.iter().enumerate() {
            if line.is_test {
                continue;
            }
            if line.code.contains("[AtomicU64;") {
                out.push(finding(
                    "W008",
                    rel,
                    i,
                    "fixed atomic-bucket-array metric storage outside crates/telemetry \
                     — register a telemetry Counter/Gauge/Histogram instead so the \
                     metric reaches the shared exposition",
                ));
            }
        }
    }
}

/// W006 — printing and process exits stay in the CLI, bins, and tests.
fn rule_w006(rel: &str, scan: &Scan, out: &mut Vec<Finding>) {
    if print_allowed_path(rel) {
        return;
    }
    // Longest-first: `eprintln!` contains `println!` as a substring, so the
    // more specific token must win the per-line match.
    const TOKENS: &[&str] = &[
        "eprintln!",
        "println!",
        "eprint!",
        "print!",
        "dbg!",
        "process::exit",
    ];
    for (i, line) in scan.lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        if let Some(tok) = TOKENS.iter().find(|t| line.code.contains(*t)) {
            out.push(finding(
                "W006",
                rel,
                i,
                format!("{tok} outside crates/cli and bin targets — return data, don't print"),
            ));
        }
    }
}
