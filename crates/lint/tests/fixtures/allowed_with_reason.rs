// A well-formed allow: the same W003 shape as l001_no_reason.rs, silenced
// with a reviewable reason. Linting this under a hot-module path must
// produce zero findings.
pub fn head(words: &[u64], at: usize) -> u64 {
    // lint: allow(W003, reason = "caller contract: at is always a word index the bitset handed out")
    words[at]
}
