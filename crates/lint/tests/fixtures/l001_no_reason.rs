// Deliberate L001 violation: an allow annotation with no reason — the
// escape hatch must leave a reviewable trail.
pub fn head(words: &[u64], at: usize) -> u64 {
    // lint: allow(W003)
    words[at]
}
