// The compliant twin of w001_fire.rs: the same operation composed from the
// fused kernels, with no word loop opened outside the kernel homes.
use crate::kernels;

pub fn and_popcount_composed(words: &mut Vec<u64>, other: &[u64]) -> usize {
    kernels::and_into(words, other);
    kernels::popcount(words)
}
