// Deliberate W001 violation: a word-granularity u64 bit loop outside the
// kernel homes. Real code must compose crates/core/src/kernels.rs instead.
pub fn and_popcount_by_hand(words: &mut [u64], other: &[u64]) -> u32 {
    let mut n = 0;
    for (w, o) in words.iter_mut().zip(other) {
        *w &= *o;
        n += w.count_ones();
    }
    n
}
