// The compliant twin of w002_fire.rs: the guard is dropped before the
// blocking pipeline call, so no lock is held across the execution.
impl NoStall {
    pub fn evaluate_then_record(&self, instance: &Instance) -> Outcome {
        let guard = self.provenance.write();
        let seen = guard.len();
        drop(guard);
        let eval = self.pipeline.execute(instance);
        self.record(seen, eval)
    }
}
