// Deliberate W002 violation: a pipeline execution while a provenance write
// guard is live — the executor-stall shape the sharded cache removed.
impl Stall {
    pub fn evaluate_under_lock(&self, instance: &Instance) -> Outcome {
        let guard = self.provenance.write();
        let eval = self.pipeline.execute(instance);
        guard.note(eval)
    }
}
