// The compliant twin of w003_fire.rs: fallible access via get(), with the
// miss surfaced to the caller instead of panicking the hot path.
pub fn first_outcome(runs: &[Run], idx: usize) -> Option<Outcome> {
    runs.get(idx).map(|run| run.outcome)
}
