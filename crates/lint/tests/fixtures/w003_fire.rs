// Deliberate W003 violations for a hot module: an unwrap and a non-literal
// slice index, both of which can abort a diagnosis mid-run.
pub fn first_outcome(runs: &[Run], idx: usize) -> Outcome {
    let run = runs.first().unwrap();
    let _ = run;
    runs[idx].outcome
}
