// The compliant twin of w004_fire.rs: the ordering choice is justified in
// place, where the next reader will look for it.
pub fn bump(counter: &AtomicU64) {
    // Relaxed: telemetry-only counter, never read for control flow.
    counter.fetch_add(1, Ordering::Relaxed);
}
