// Deliberate W004 violation: a loosest-ordering atomic update with no
// justification comment anywhere near it.
pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}
