// The compliant twin of w005_fire.rs: the narrowing is checked and an
// oversize payload becomes an explicit error.
pub fn frame_len(payload: &[u8]) -> Result<u32, PersistError> {
    u32::try_from(payload.len()).map_err(|_| PersistError::FrameOverflow {
        field: "frame payload",
        len: payload.len(),
    })
}
