// Deliberate W005 violation: a truncating `as u32` cast in the WAL codec,
// which would silently corrupt an oversize frame instead of erroring.
pub fn frame_len(payload: &[u8]) -> u32 {
    payload.len() as u32
}
