// The compliant twin of w006_fire.rs: library code returns data and lets
// the CLI decide how to present it.
pub fn report(findings: usize) -> String {
    format!("found {findings} findings")
}
