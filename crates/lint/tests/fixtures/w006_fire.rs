// Deliberate W006 violation: printing from library code outside the CLI
// crate and bin targets.
pub fn report(findings: usize) {
    println!("found {findings} findings");
}
