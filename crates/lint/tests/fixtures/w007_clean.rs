// The compliant twin of w007_fire.rs: the handler routes the request to the
// shared executor — whose worker threads the factory configured — and renders
// the reply from in-memory state; no handler-side file or process I/O.
impl Handler {
    pub fn handle_diagnose(&self, req: &Request) -> Reply {
        let shared = self.sessions.executor_of(req.session)?;
        let diagnosis = diagnose(&shared.exec, &self.config)?;
        Reply::report(diagnosis.render_causes(&shared.exec.space()))
    }
}
