// Deliberate W007 violation: a session handler spooling the request to disk,
// fsyncing it, and running the pipeline inline — every session multiplexed on
// the daemon stalls behind this one handler thread.
impl Handler {
    pub fn handle_diagnose(&self, req: &Request) -> Reply {
        let spool = File::create(self.dir.join("spool.bin")).unwrap();
        spool.sync_all().unwrap();
        let outcome = self.pipeline.execute(&req.instance);
        Reply::of(outcome)
    }
}
