// The compliant twin of w008_fire.rs: recording is a bounded sequence of
// atomic adds on pre-registered fixed storage — no lock, no allocation,
// nothing that can park a recorder or stall the path being observed.
impl Histogram {
    pub fn record(&self, value: u64) {
        let bucket = Self::bucket_of(value) & (BUCKETS - 1);
        // relaxed: independent monotone counters; the snapshot reader
        // tolerates a torn cross-field view and retries.
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed); // relaxed: as above
        self.sum.fetch_add(value, Ordering::Relaxed); // relaxed: as above
    }
}
