// Deliberate W008 violations: a "wait-free" histogram whose record path
// takes a mutex and allocates a label string per sample — every recorder
// serializes on the lock and the hot path churns the allocator — plus (for
// the outside-telemetry facet) a private atomic-bucket array re-implementing
// the storage the telemetry crate already owns.
impl Histogram {
    pub fn record(&self, value: u64) {
        let mut entries = self.registry.lock().unwrap();
        let label = format!("bucket_{}", value.leading_zeros());
        entries.push((label, value));
    }
}

pub struct ShadowHistogram {
    buckets: [AtomicU64; 64],
}
