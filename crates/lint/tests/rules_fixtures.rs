//! One firing and one clean fixture per rule, linted under pretend
//! workspace-relative paths (the rules are path-scoped; the fixture files
//! themselves live under `tests/fixtures/`, which the workspace walk and
//! `test_path` both skip — these tests are the only thing that reads them).

use bugdoc_lint::{lint_source, Finding};

/// A hot-module path for W003 (panic + index facets) and W004.
const HOT: &str = "crates/engine/src/executor.rs";
/// A WAL-codec path for W005.
const CODEC: &str = "crates/store/src/wal.rs";
/// A plain library path: subject to W001/W002/W006, none of the scoped sets.
const LIB: &str = "crates/core/src/search.rs";
/// A serve-crate session-handler path for W007.
const SERVE: &str = "crates/serve/src/session.rs";
/// A telemetry record-path module for W008.
const TELEMETRY: &str = "crates/telemetry/src/metrics.rs";

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn w001_fires_on_word_loop_outside_kernels() {
    let findings = lint_source(LIB, include_str!("fixtures/w001_fire.rs"));
    assert!(rules_of(&findings).contains(&"W001"), "{findings:?}");
}

#[test]
fn w001_clean_when_composed_from_kernels() {
    let findings = lint_source(LIB, include_str!("fixtures/w001_clean.rs"));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn w001_word_loops_are_licensed_in_kernel_homes() {
    let findings = lint_source(
        "crates/core/src/kernels.rs",
        include_str!("fixtures/w001_fire.rs"),
    );
    assert!(!rules_of(&findings).contains(&"W001"), "{findings:?}");
}

#[test]
fn w002_fires_on_execute_under_live_guard() {
    let findings = lint_source(LIB, include_str!("fixtures/w002_fire.rs"));
    assert!(rules_of(&findings).contains(&"W002"), "{findings:?}");
}

#[test]
fn w002_clean_when_guard_dropped_first() {
    let findings = lint_source(LIB, include_str!("fixtures/w002_clean.rs"));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn w003_fires_on_unwrap_and_index_in_hot_module() {
    let findings = lint_source(HOT, include_str!("fixtures/w003_fire.rs"));
    let rules = rules_of(&findings);
    assert!(
        rules.iter().filter(|r| **r == "W003").count() >= 2,
        "expected both the unwrap and the index to fire: {findings:?}"
    );
}

#[test]
fn w003_clean_with_fallible_access() {
    let findings = lint_source(HOT, include_str!("fixtures/w003_clean.rs"));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn w003_does_not_apply_outside_hot_modules() {
    let findings = lint_source(LIB, include_str!("fixtures/w003_fire.rs"));
    assert!(!rules_of(&findings).contains(&"W003"), "{findings:?}");
}

#[test]
fn w004_fires_on_unjustified_relaxed() {
    let findings = lint_source(HOT, include_str!("fixtures/w004_fire.rs"));
    assert!(rules_of(&findings).contains(&"W004"), "{findings:?}");
}

#[test]
fn w004_clean_with_justification_comment() {
    let findings = lint_source(HOT, include_str!("fixtures/w004_clean.rs"));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn w005_fires_on_as_cast_in_wal_codec() {
    let findings = lint_source(CODEC, include_str!("fixtures/w005_fire.rs"));
    assert!(rules_of(&findings).contains(&"W005"), "{findings:?}");
}

#[test]
fn w005_clean_with_checked_cast() {
    let findings = lint_source(CODEC, include_str!("fixtures/w005_clean.rs"));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn w005_does_not_apply_outside_the_codec() {
    let findings = lint_source(LIB, include_str!("fixtures/w005_fire.rs"));
    assert!(!rules_of(&findings).contains(&"W005"), "{findings:?}");
}

#[test]
fn w006_fires_on_println_in_library_code() {
    let findings = lint_source(LIB, include_str!("fixtures/w006_fire.rs"));
    assert!(rules_of(&findings).contains(&"W006"), "{findings:?}");
}

#[test]
fn w006_clean_when_returning_data() {
    let findings = lint_source(LIB, include_str!("fixtures/w006_clean.rs"));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn w006_printing_is_licensed_in_the_cli() {
    let findings = lint_source(
        "crates/cli/src/report.rs",
        include_str!("fixtures/w006_fire.rs"),
    );
    assert!(!rules_of(&findings).contains(&"W006"), "{findings:?}");
}

#[test]
fn w007_fires_on_blocking_io_in_serve_handlers() {
    let findings = lint_source(SERVE, include_str!("fixtures/w007_fire.rs"));
    let rules = rules_of(&findings);
    assert!(
        rules.iter().filter(|r| **r == "W007").count() >= 3,
        "expected the file open, the fsync, and the execute to fire: {findings:?}"
    );
}

#[test]
fn w007_clean_when_delegating_to_the_executor() {
    let findings = lint_source(SERVE, include_str!("fixtures/w007_clean.rs"));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn w007_does_not_apply_outside_the_serve_crate() {
    let findings = lint_source(LIB, include_str!("fixtures/w007_fire.rs"));
    assert!(!rules_of(&findings).contains(&"W007"), "{findings:?}");
}

#[test]
fn w008_fires_on_locking_and_allocating_record_path() {
    let findings = lint_source(TELEMETRY, include_str!("fixtures/w008_fire.rs"));
    let rules = rules_of(&findings);
    assert!(
        rules.iter().filter(|r| **r == "W008").count() >= 2,
        "expected both the lock and the format! to fire: {findings:?}"
    );
}

#[test]
fn w008_clean_when_recording_is_atomic_ops_only() {
    let findings = lint_source(TELEMETRY, include_str!("fixtures/w008_clean.rs"));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn w008_registry_side_may_lock_and_allocate() {
    let findings = lint_source(
        "crates/telemetry/src/registry.rs",
        include_str!("fixtures/w008_fire.rs"),
    );
    assert!(!rules_of(&findings).contains(&"W008"), "{findings:?}");
}

#[test]
fn w008_atomic_bucket_arrays_fire_outside_telemetry() {
    let findings = lint_source(LIB, include_str!("fixtures/w008_fire.rs"));
    let w008: Vec<_> = findings.iter().filter(|f| f.rule == "W008").collect();
    assert_eq!(
        w008.len(),
        1,
        "only the [AtomicU64; N] facet applies outside telemetry: {findings:?}"
    );
    assert!(w008[0].message.contains("atomic-bucket-array"), "{findings:?}");
}

#[test]
fn l001_fires_on_allow_without_reason() {
    let findings = lint_source(HOT, include_str!("fixtures/l001_no_reason.rs"));
    assert!(rules_of(&findings).contains(&"L001"), "{findings:?}");
}

#[test]
fn l001_fires_on_unknown_rule_in_allow() {
    let src = "// lint: allow(W999, reason = \"no such rule\")\npub fn f() {}\n";
    let findings = lint_source(LIB, src);
    assert!(rules_of(&findings).contains(&"L001"), "{findings:?}");
}

#[test]
fn allow_with_reason_silences_the_site() {
    let findings = lint_source(HOT, include_str!("fixtures/allowed_with_reason.rs"));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn registry_lists_at_least_seven_workspace_rules() {
    let w_rules = bugdoc_lint::RULES
        .iter()
        .filter(|r| r.id.starts_with('W'))
        .count();
    assert!(w_rules >= 7, "only {w_rules} W-rules registered");
    assert!(bugdoc_lint::known_rule("L001"));
}
