//! The whole workspace must lint clean: every violation of W001–W006 is
//! either fixed or carries an allow with a reviewable reason. This is the
//! same scan `cargo run -p bugdoc-lint` performs, run under `cargo test` so
//! the invariants gate the test suite too.

use bugdoc_lint::{default_root, lint_workspace};

#[test]
fn workspace_lints_clean() {
    let root = default_root();
    let report = lint_workspace(&root).expect("workspace scan must succeed");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — wrong root {}?",
        report.files_scanned,
        root.display()
    );
    assert!(
        report.findings.is_empty(),
        "workspace is not lint-clean:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("{} {}:{}: {}", f.rule, f.path, f.line, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
