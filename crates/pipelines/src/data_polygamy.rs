//! The Data Polygamy experiment pipeline (paper §5.3).
//!
//! The paper debugs a VisTrails pipeline reproducing a Data Polygamy
//! (Chirigati et al., SIGMOD 2016) experiment: statistical-significance
//! evaluation over 300+ heterogeneous spatio-temporal datasets, with "2
//! boolean, 3 categorical (3 to 10 possible values), and 7 numerical
//! parameters. Each instance takes 20 minutes to run". The debugging goal is
//! crash analysis: "given a set of pipeline instances, some of which crash
//! and some of which execute to completion, find at least one minimal set of
//! parameter-values ... which cause the execution to crash".
//!
//! Substitution (see `DESIGN.md` §5): the 20-minute VisTrails executions are
//! replaced by a deterministic crash simulator over the same parameter-space
//! shape, with three planted, parameter-disjoint crash conditions:
//!
//! 1. Monte-Carlo significance with too many permutations exhausts memory;
//! 2. hour resolution over long time ranges explodes the spatio-temporal
//!    index;
//! 3. a small memory budget cannot hold the largest dataset groups.

use bugdoc_core::{
    Comparator, Conjunction, Dnf, EvalResult, Instance, Outcome, ParamSpace, Predicate,
};
use bugdoc_engine::{Pipeline, PipelineError, SimTime};
use bugdoc_synth::Truth;
use std::sync::Arc;

/// The Data Polygamy crash-analysis pipeline simulator.
pub struct DataPolygamyPipeline {
    space: Arc<ParamSpace>,
    truth: Truth,
}

impl DataPolygamyPipeline {
    /// Builds the pipeline: 2 boolean + 3 categorical + 7 numerical
    /// parameters, exactly the shape the paper reports.
    pub fn new() -> Self {
        let space = ParamSpace::builder()
            // 2 boolean parameters.
            .boolean("use_alpha_filter")
            .boolean("use_custom_significance")
            // 3 categorical parameters (3 to 10 possible values).
            .categorical(
                "significance_method",
                ["mc_permutation", "bonferroni", "bh_fdr"],
            )
            .categorical("resolution", ["hour", "day", "week", "month"])
            .categorical(
                "dataset_group",
                [
                    "weather", "taxi", "crime", "events", "social", "traffic", "noise", "energy",
                ],
            )
            // 7 numerical parameters.
            .ordinal("p_value_threshold", [0.001, 0.005, 0.01, 0.05, 0.1])
            .ordinal("num_datasets", [50, 100, 150, 200, 250, 300])
            .ordinal("grid_size", [10, 25, 50, 100])
            .ordinal("time_range_days", [30, 90, 180, 365])
            .ordinal("feature_threshold", [0.1, 0.2, 0.3, 0.4, 0.5])
            .ordinal("permutations", [100, 200, 400, 800, 1600])
            .ordinal("memory_budget_gb", [4, 8, 16, 32])
            .build();

        let method = space.by_name("significance_method").unwrap();
        let perms = space.by_name("permutations").unwrap();
        let res = space.by_name("resolution").unwrap();
        let range = space.by_name("time_range_days").unwrap();
        let mem = space.by_name("memory_budget_gb").unwrap();
        let nds = space.by_name("num_datasets").unwrap();

        let truth = Truth::new(
            &space,
            Dnf::new(vec![
                // OOM in the Monte-Carlo permutation loop.
                Conjunction::new(vec![
                    Predicate::eq(method, "mc_permutation"),
                    Predicate::new(perms, Comparator::Gt, 800),
                ]),
                // Spatio-temporal index explosion.
                Conjunction::new(vec![
                    Predicate::eq(res, "hour"),
                    Predicate::new(range, Comparator::Gt, 180),
                ]),
                // Largest dataset groups do not fit a small memory budget.
                Conjunction::new(vec![
                    Predicate::new(mem, Comparator::Le, 4),
                    Predicate::new(nds, Comparator::Gt, 250),
                ]),
            ]),
        );
        DataPolygamyPipeline { space, truth }
    }

    /// The planted crash conditions (ground truth for scoring).
    pub fn truth(&self) -> &Truth {
        &self.truth
    }
}

impl Default for DataPolygamyPipeline {
    fn default() -> Self {
        DataPolygamyPipeline::new()
    }
}

impl Pipeline for DataPolygamyPipeline {
    fn space(&self) -> &Arc<ParamSpace> {
        &self.space
    }

    fn execute(&self, instance: &Instance) -> Result<EvalResult, PipelineError> {
        // Crash ⇒ fail; completion ⇒ succeed (no score for crash analysis).
        Ok(EvalResult::of(Outcome::from_check(
            !self.truth.fails(instance),
        )))
    }

    fn cost(&self, _instance: &Instance) -> SimTime {
        // "Each instance takes 20 minutes to run, making manual debugging
        // impractical."
        SimTime::from_mins(20.0)
    }

    fn name(&self) -> &str {
        "data-polygamy (crash analysis)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::Value;

    fn base_instance(p: &DataPolygamyPipeline) -> Instance {
        Instance::from_pairs(
            p.space(),
            [
                ("use_alpha_filter", false.into()),
                ("use_custom_significance", false.into()),
                ("significance_method", "bonferroni".into()),
                ("resolution", "day".into()),
                ("dataset_group", "taxi".into()),
                ("p_value_threshold", 0.05.into()),
                ("num_datasets", 100.into()),
                ("grid_size", 25.into()),
                ("time_range_days", 90.into()),
                ("feature_threshold", 0.3.into()),
                ("permutations", 400.into()),
                ("memory_budget_gb", 16.into()),
            ],
        )
    }

    #[test]
    fn space_shape_matches_paper() {
        let p = DataPolygamyPipeline::new();
        let s = p.space();
        assert_eq!(s.len(), 12, "2 boolean + 3 categorical + 7 numerical");
        // Categorical value counts within 3..=10.
        for name in ["significance_method", "resolution", "dataset_group"] {
            let n = s.domain(s.by_name(name).unwrap()).len();
            assert!((3..=10).contains(&n), "{name} has {n} values");
        }
    }

    #[test]
    fn base_configuration_completes() {
        let p = DataPolygamyPipeline::new();
        let inst = base_instance(&p);
        assert!(p.execute(&inst).unwrap().outcome.is_succeed());
    }

    #[test]
    fn planted_crashes_fire() {
        let p = DataPolygamyPipeline::new();
        let s = p.space();
        // OOM condition.
        let oom = base_instance(&p)
            .with(s.by_name("significance_method").unwrap(), "mc_permutation".into())
            .with(s.by_name("permutations").unwrap(), Value::from(1600));
        assert!(p.execute(&oom).unwrap().outcome.is_fail());
        // Index explosion.
        let idx = base_instance(&p)
            .with(s.by_name("resolution").unwrap(), "hour".into())
            .with(s.by_name("time_range_days").unwrap(), Value::from(365));
        assert!(p.execute(&idx).unwrap().outcome.is_fail());
        // Memory budget.
        let mem = base_instance(&p)
            .with(s.by_name("memory_budget_gb").unwrap(), Value::from(4))
            .with(s.by_name("num_datasets").unwrap(), Value::from(300));
        assert!(p.execute(&mem).unwrap().outcome.is_fail());
    }

    #[test]
    fn near_misses_complete() {
        let p = DataPolygamyPipeline::new();
        let s = p.space();
        // mc_permutation with few permutations is fine.
        let ok1 = base_instance(&p)
            .with(s.by_name("significance_method").unwrap(), "mc_permutation".into());
        assert!(p.execute(&ok1).unwrap().outcome.is_succeed());
        // hour resolution over a short range is fine.
        let ok2 = base_instance(&p).with(s.by_name("resolution").unwrap(), "hour".into());
        assert!(p.execute(&ok2).unwrap().outcome.is_succeed());
    }

    #[test]
    fn crash_fraction_is_modest() {
        let p = DataPolygamyPipeline::new();
        let frac = p.truth().failure_fraction(p.space());
        assert!(frac > 0.0 && frac < 0.3, "fraction {frac}");
    }

    #[test]
    fn three_ground_truth_causes() {
        let p = DataPolygamyPipeline::new();
        assert_eq!(p.truth().len(), 3);
        assert_eq!(p.cost(&base_instance(&p)).secs(), 1200.0);
    }
}
