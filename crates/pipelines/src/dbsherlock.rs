//! The DBSherlock / transactional-database performance scenario (paper §5.3).
//!
//! DBSherlock (Yoon et al., SIGMOD 2016) diagnoses OLTP performance problems
//! from workload logs; its authors ran TPC-C under "10 distinct classes of
//! performance anomalies" and collected logs "each labeled as normal or
//! anomalous". The BugDoc paper replays this data with two twists it calls
//! out explicitly: (i) *no new instances can be run* — the algorithms read
//! only recorded logs, with "an early stop when the pipeline instance to be
//! tested was not present"; (ii) the raw "202 numerical statistics" are
//! reduced by feature selection and bucketing "to 15 parameters with 8
//! possible values (buckets) each".
//!
//! Substitution (see `DESIGN.md` §5): a generator of labeled anomaly logs
//! over that reduced 15×8 space. Each anomaly class is a planted conjunction
//! over the bucketed statistics; class-`k` logs satisfy cause `k` and are
//! solver-constructed to avoid every other cause, so per-class labels are
//! crisp. The paper's 50/25/25 split (training provenance / execution budget
//! pool / holdout) is reproduced per class.

use bugdoc_core::{
    Comparator, Conjunction, Dnf, EvalResult, Instance, Outcome, ParamSpace, Predicate,
    ProvenanceStore, Value,
};
use bugdoc_engine::HistoricalPipeline;
use bugdoc_synth::{sample_instance, Truth};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Names for the 15 bucketed OLTP statistics (a plausible selection from the
/// 202 DBSherlock collects).
const STAT_NAMES: [&str; 15] = [
    "cpu_usage",
    "disk_read_mb",
    "disk_write_mb",
    "lock_waits",
    "deadlocks",
    "buffer_hit_ratio",
    "active_sessions",
    "log_flush_ms",
    "net_recv_mb",
    "net_send_mb",
    "checkpoint_pages",
    "tmp_tables",
    "threads_running",
    "innodb_waits",
    "query_latency_ms",
];

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct DbSherlockConfig {
    /// Bucketed statistics (paper: 15).
    pub n_stats: usize,
    /// Buckets per statistic (paper: 8).
    pub n_buckets: usize,
    /// Anomaly classes (paper: 10).
    pub n_classes: usize,
    /// Anomalous logs generated per class.
    pub logs_per_class: usize,
    /// Normal logs generated.
    pub normal_logs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DbSherlockConfig {
    fn default() -> Self {
        DbSherlockConfig {
            n_stats: 15,
            n_buckets: 8,
            n_classes: 10,
            logs_per_class: 40,
            normal_logs: 400,
            seed: 0,
        }
    }
}

/// One recorded workload log: the bucketed statistics plus its label.
#[derive(Debug, Clone)]
pub struct LogRecord {
    /// The bucketed statistics vector.
    pub instance: Instance,
    /// `Some(k)` if the log exhibits anomaly class `k`, `None` if normal.
    pub class: Option<usize>,
}

/// The generated labeled log dataset.
pub struct DbSherlockDataset {
    space: Arc<ParamSpace>,
    causes: Vec<Conjunction>,
    logs: Vec<LogRecord>,
}

impl DbSherlockDataset {
    /// Generates the dataset: plants one cause per anomaly class, then
    /// produces class logs (satisfying exactly their class's cause) and
    /// normal logs (satisfying none).
    pub fn generate(config: &DbSherlockConfig) -> Self {
        assert!(config.n_stats <= STAT_NAMES.len());
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut builder = ParamSpace::builder();
        for name in STAT_NAMES.iter().take(config.n_stats) {
            builder = builder.ordinal(*name, (0..config.n_buckets as i64).map(Value::from));
        }
        let space = builder.build();

        // Plant causes until all classes have mutually avoidable causes.
        let causes = plant_causes(&space, config, &mut rng);
        let canon: Vec<_> = causes.iter().map(|c| c.canonicalize(&space)).collect();

        let mut logs: Vec<LogRecord> = Vec::new();
        for (k, cause) in canon.iter().enumerate() {
            let avoid: Vec<_> = canon
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != k)
                .map(|(_, c)| c.clone())
                .collect();
            let mut made = 0;
            let mut guard = 0;
            while made < config.logs_per_class && guard < config.logs_per_class * 10 {
                guard += 1;
                if let Some(inst) = sample_instance(&space, Some(cause), &avoid, &mut rng) {
                    if !logs.iter().any(|l| l.instance == inst) {
                        logs.push(LogRecord {
                            instance: inst,
                            class: Some(k),
                        });
                        made += 1;
                    }
                } else {
                    break;
                }
            }
        }
        let mut made = 0;
        let mut guard = 0;
        while made < config.normal_logs && guard < config.normal_logs * 10 {
            guard += 1;
            if let Some(inst) = sample_instance(&space, None, &canon, &mut rng) {
                if !logs.iter().any(|l| l.instance == inst) {
                    logs.push(LogRecord {
                        instance: inst,
                        class: None,
                    });
                    made += 1;
                }
            } else {
                break;
            }
        }
        logs.shuffle(&mut rng);

        DbSherlockDataset {
            space,
            causes,
            logs,
        }
    }

    /// The bucketed-statistics space.
    pub fn space(&self) -> &Arc<ParamSpace> {
        &self.space
    }

    /// The planted cause of each anomaly class.
    pub fn causes(&self) -> &[Conjunction] {
        &self.causes
    }

    /// All logs, shuffled.
    pub fn logs(&self) -> &[LogRecord] {
        &self.logs
    }

    /// Number of anomaly classes.
    pub fn n_classes(&self) -> usize {
        self.causes.len()
    }

    /// The class-`k` debugging problem with the paper's 50/25/25 split:
    /// training provenance, budget pool (the only "new" instances available),
    /// and holdout.
    pub fn problem(&self, class: usize) -> AnomalyProblem {
        let truth = Truth::new(
            &self.space,
            Dnf::new(vec![self.causes[class].clone()]),
        );
        let labeled: Vec<(Instance, EvalResult)> = self
            .logs
            .iter()
            .map(|l| {
                // The evaluation for problem k: a log "fails" iff it exhibits
                // anomaly class k — which by construction coincides with
                // satisfying the class's planted cause.
                let fail = l.class == Some(class);
                (
                    l.instance.clone(),
                    EvalResult::of(Outcome::from_check(!fail)),
                )
            })
            .collect();
        let n = labeled.len();
        let train_end = n / 2;
        let budget_end = train_end + n / 4;
        AnomalyProblem {
            space: self.space.clone(),
            truth,
            train: labeled[..train_end].to_vec(),
            budget_pool: labeled[train_end..budget_end].to_vec(),
            holdout: labeled[budget_end..].to_vec(),
        }
    }
}

/// One anomaly class's debugging problem.
pub struct AnomalyProblem {
    /// The statistics space.
    pub space: Arc<ParamSpace>,
    /// Ground truth: the single planted cause of this class.
    pub truth: Truth,
    /// 50%: the initial provenance handed to the algorithms.
    pub train: Vec<(Instance, EvalResult)>,
    /// 25%: "the budget for pipeline instances that any sub-method of BugDoc
    /// requested" — requests outside this pool are unavailable.
    pub budget_pool: Vec<(Instance, EvalResult)>,
    /// 25%: held out "to assess the accuracy of BugDoc's minimal root causes
    /// as a classifier".
    pub holdout: Vec<(Instance, EvalResult)>,
}

impl AnomalyProblem {
    /// The replay pipeline: only training + budget-pool logs are executable;
    /// everything else early-stops as unavailable.
    pub fn historical_pipeline(&self) -> HistoricalPipeline {
        HistoricalPipeline::new(
            self.space.clone(),
            self.train
                .iter()
                .chain(self.budget_pool.iter())
                .map(|(i, e)| (i.clone(), *e)),
        )
        .with_name("dbsherlock-replay")
    }

    /// The initial provenance (the 50% training split).
    pub fn initial_provenance(&self) -> ProvenanceStore {
        let mut prov = ProvenanceStore::new(self.space.clone());
        for (inst, eval) in &self.train {
            prov.record(inst.clone(), *eval);
        }
        prov
    }
}

/// Plants `n_classes` causes over the statistics space, rejecting plants
/// until every class has logs that can avoid all other classes.
fn plant_causes(
    space: &Arc<ParamSpace>,
    config: &DbSherlockConfig,
    rng: &mut StdRng,
) -> Vec<Conjunction> {
    'retry: for _ in 0..200 {
        let mut causes: Vec<Conjunction> = Vec::new();
        for _ in 0..config.n_classes {
            // 1–2 statistics per anomaly signature.
            let n_preds = rng.gen_range(1..=2);
            let mut params: Vec<_> = space.ids().collect();
            params.shuffle(rng);
            let preds: Vec<Predicate> = params
                .into_iter()
                .take(n_preds)
                .map(|p| {
                    let domain = space.domain(p);
                    let v = domain.value(rng.gen_range(0..domain.len())).clone();
                    let cmp = Comparator::ALL[rng.gen_range(0..4usize)];
                    Predicate::new(p, cmp, v)
                })
                .collect();
            causes.push(Conjunction::new(preds));
        }
        let canon: Vec<_> = causes.iter().map(|c| c.canonicalize(space)).collect();
        // Validity: satisfiable, not tautological, pairwise semantically
        // incomparable, each class separable from the others, and normal
        // logs possible. A bounded failure fraction keeps anomalies rare-ish.
        for c in &canon {
            if c.is_unsatisfiable() || c.is_top() {
                continue 'retry;
            }
        }
        for (i, a) in canon.iter().enumerate() {
            for (j, b) in canon.iter().enumerate() {
                if i != j && a.implies(b) {
                    continue 'retry;
                }
            }
        }
        let mut probe = StdRng::seed_from_u64(rng.gen());
        if sample_instance(space, None, &canon, &mut probe).is_none() {
            continue 'retry;
        }
        for (k, c) in canon.iter().enumerate() {
            let avoid: Vec<_> = canon
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != k)
                .map(|(_, x)| x.clone())
                .collect();
            if sample_instance(space, Some(c), &avoid, &mut probe).is_none() {
                continue 'retry;
            }
        }
        return causes;
    }
    panic!("could not plant {} separable anomaly classes", config.n_classes);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DbSherlockConfig {
        DbSherlockConfig {
            n_classes: 4,
            logs_per_class: 10,
            normal_logs: 60,
            ..Default::default()
        }
    }

    #[test]
    fn space_shape_matches_paper() {
        let ds = DbSherlockDataset::generate(&DbSherlockConfig::default());
        assert_eq!(ds.space().len(), 15);
        for p in ds.space().ids() {
            assert_eq!(ds.space().domain(p).len(), 8);
        }
        assert_eq!(ds.n_classes(), 10);
    }

    #[test]
    fn labels_match_cause_satisfaction() {
        let ds = DbSherlockDataset::generate(&small());
        let canon: Vec<_> = ds
            .causes()
            .iter()
            .map(|c| c.canonicalize(ds.space()))
            .collect();
        for log in ds.logs() {
            match log.class {
                Some(k) => {
                    assert!(canon[k].satisfied_by(&log.instance, ds.space()));
                    for (j, c) in canon.iter().enumerate() {
                        if j != k {
                            assert!(
                                !c.satisfied_by(&log.instance, ds.space()),
                                "class-{k} log also exhibits class {j}"
                            );
                        }
                    }
                }
                None => {
                    for c in &canon {
                        assert!(!c.satisfied_by(&log.instance, ds.space()));
                    }
                }
            }
        }
    }

    #[test]
    fn split_proportions() {
        let ds = DbSherlockDataset::generate(&small());
        let problem = ds.problem(0);
        let n = ds.logs().len();
        assert_eq!(problem.train.len(), n / 2);
        assert_eq!(problem.budget_pool.len(), n / 4);
        assert_eq!(
            problem.train.len() + problem.budget_pool.len() + problem.holdout.len(),
            n
        );
    }

    #[test]
    fn historical_pipeline_early_stops_outside_pool() {
        let ds = DbSherlockDataset::generate(&small());
        let problem = ds.problem(1);
        let pipe = problem.historical_pipeline();
        // Everything in train and budget pool replays.
        assert!(pipe.contains(&problem.train[0].0));
        assert!(pipe.contains(&problem.budget_pool[0].0));
        // Holdout instances are NOT executable (they are unseen future logs);
        // they may coincide with pool instances only if duplicated — the
        // generator dedups, so they must be absent.
        assert!(!pipe.contains(&problem.holdout[0].0));
    }

    #[test]
    fn problem_truth_is_the_class_cause() {
        let ds = DbSherlockDataset::generate(&small());
        for k in 0..ds.n_classes() {
            let problem = ds.problem(k);
            assert_eq!(problem.truth.len(), 1);
            assert!(problem.truth.matches_minimal(ds.space(), &ds.causes()[k]));
        }
    }

    #[test]
    fn per_problem_labels_are_consistent_with_truth() {
        let ds = DbSherlockDataset::generate(&small());
        let problem = ds.problem(2);
        for (inst, eval) in problem
            .train
            .iter()
            .chain(problem.budget_pool.iter())
            .chain(problem.holdout.iter())
        {
            assert_eq!(eval.outcome.is_fail(), problem.truth.fails(inst));
        }
    }

    #[test]
    fn reproducible_per_seed() {
        let a = DbSherlockDataset::generate(&small());
        let b = DbSherlockDataset::generate(&small());
        assert_eq!(a.logs().len(), b.logs().len());
        assert_eq!(a.logs()[0].instance, b.logs()[0].instance);
    }

    #[test]
    fn each_class_has_logs() {
        let ds = DbSherlockDataset::generate(&small());
        for k in 0..ds.n_classes() {
            let count = ds.logs().iter().filter(|l| l.class == Some(k)).count();
            assert!(count > 0, "class {k} has no logs");
        }
    }
}
